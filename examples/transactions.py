#!/usr/bin/env python3
"""Distributed transactions with FLockTX (paper §8.5).

Builds a 3-server / 4-client cluster with a partitioned, 3-way
replicated key-value store, then runs bank-transfer-style transactions
through the full OCC + 2PC + replication pipeline over FLock: execution
RPCs lock and read, validation uses one-sided ``fl_read`` of version
words, logging replicates to backups, commit installs at the primaries.

Run:  python examples/transactions.py
"""

from repro.apps.txn import (
    Coordinator,
    FlockTxTransport,
    Transaction,
    TxnOutcome,
)
from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.harness.txnbench import TxnBenchConfig, build_txn_servers
from repro.net import build_cluster
from repro.sim import Simulator, Streams


def main():
    sim = Simulator()
    n_servers, n_clients = 3, 4
    servers_hw, clients_hw, fabric = build_cluster(
        sim, ClusterConfig(n_clients=n_clients, n_servers=n_servers))

    # Partitioned store: each server is primary for one partition and a
    # backup replica for the other two.
    bench_cfg = TxnBenchConfig(n_servers=n_servers,
                               subscribers_per_server=2_000)
    txn_servers = build_txn_servers(bench_cfg, servers_hw)

    flock_cfg = FlockConfig(qps_per_handle=4)
    flock_servers = []
    version_rkeys = {}
    for s in range(n_servers):
        node = FlockNode(sim, servers_hw[s], fabric, flock_cfg)
        txn_servers[s].bind(node.fl_reg_handler)
        flock_servers.append(node)
        version_rkeys[s] = txn_servers[s].primary.region.rkey

    streams = Streams(seed=42)
    coordinators = []

    def client_main(client_index):
        node = FlockNode(sim, clients_hw[client_index], fabric, flock_cfg,
                         seed=client_index)
        handles = {s: node.fl_connect(flock_servers[s], n_qps=4)
                   for s in range(n_servers)}
        transport = FlockTxTransport(node, handles, version_rkeys,
                                     thread_id=0)
        coordinator = Coordinator(transport, n_servers,
                                  coordinator_id=client_index)
        coordinators.append(coordinator)
        rng = streams.stream("client-%d" % client_index)

        def coroutine():
            for _ in range(100):
                # Transfer: read one account, update two others.
                src = rng.randrange(bench_cfg.n_keys())
                dst_a = rng.randrange(bench_cfg.n_keys())
                dst_b = rng.randrange(bench_cfg.n_keys())
                if len({src, dst_a, dst_b}) < 3:
                    continue
                txn = Transaction(reads=[src],
                                  writes=[(dst_a, rng.random()),
                                          (dst_b, rng.random())])
                yield from coordinator.run(txn)

        for _ in range(5):  # 5 concurrent coroutines hide latency
            sim.spawn(coroutine())

    for c in range(n_clients):
        client_main(c)

    sim.run(until=100_000_000)  # 100 ms virtual

    committed = sum(c.committed for c in coordinators)
    aborted = sum(c.aborted for c in coordinators)
    print("committed: %d   aborted: %d   (abort rate %.2f%%)"
          % (committed, aborted, 100.0 * aborted / max(1, committed + aborted)))
    for s, txn_server in enumerate(txn_servers):
        print("server %d: execs=%d commits=%d replica-logs=%d"
              % (s, txn_server.execs, txn_server.commits, txn_server.logs))
    # Replication check: every committed write is on all three copies.
    sample_key = next(iter(txn_servers[0].primary.entries))
    versions = [txn_servers[sid].replicas[0].get(sample_key).version
                for sid in range(3)]
    print("key %r version on primary+replicas: %s" % (sample_key, versions))


if __name__ == "__main__":
    main()
