#!/usr/bin/env python3
"""One-sided memory and atomic operations through FLock (paper §6).

FLock exposes the full RDMA verb suite — not just RPC.  This example
attaches a memory region to a connection handle and runs:

* ``fl_write``/``fl_read`` — zero-CPU remote reads and writes;
* ``fl_fetch_and_add`` — a distributed counter shared by many threads;
* ``fl_cmp_and_swap`` — a remote spinlock built on compare-and-swap;

all going through the same combining queues as RPC (followers delegate
posting to the leader; one doorbell per batch).

Run:  python examples/memory_ops.py
"""

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator


def main():
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=1))
    cfg = FlockConfig(qps_per_handle=2)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, None, 100.0))
    client = FlockNode(sim, clients[0], fabric, cfg, seed=1)
    handle = client.fl_connect(server, n_qps=2)

    region = client.fl_attach_mreg(handle, 1 << 20)
    counter_addr = region.addr
    lock_addr = region.addr + 64
    protected_addr = region.addr + 128

    # 1. Distributed counter: 16 threads each add 10.
    def counter_thread(thread_id):
        for _ in range(10):
            yield from client.fl_fetch_and_add(handle, thread_id,
                                               counter_addr, region.rkey, 1)

    for tid in range(16):
        sim.spawn(counter_thread(tid))
    sim.run(until=20_000_000)
    print("distributed counter after 16 threads x 10 adds: %d"
          % region.words[counter_addr])

    # 2. Remote spinlock via compare-and-swap protecting a remote word.
    acquired_log = []

    def locking_thread(thread_id):
        for _ in range(5):
            # Spin on CAS(0 -> thread_id+1).
            while True:
                wc = yield from client.fl_cmp_and_swap(
                    handle, thread_id, lock_addr, region.rkey, 0,
                    thread_id + 1)
                if wc.payload == 0:
                    break
            acquired_log.append(thread_id)
            # Critical section: unprotected read-modify-write is safe
            # only because we hold the lock.
            wc = yield from client.fl_read(handle, thread_id,
                                           protected_addr, region.rkey, 8)
            value = wc.payload or 0
            region.words[protected_addr] = value + 1
            # Release: CAS(thread_id+1 -> 0).
            yield from client.fl_cmp_and_swap(handle, thread_id, lock_addr,
                                              region.rkey, thread_id + 1, 0)

    for tid in range(4):
        sim.spawn(locking_thread(tid))
    sim.run(until=120_000_000)
    print("remote-spinlock-protected counter: %d (expected 20)"
          % region.words[protected_addr])
    print("lock acquisitions: %d, final lock word: %d (0 = free)"
          % (len(acquired_log), region.words.get(lock_addr, 0)))

    # 3. Throughput effect of batch posting: leader cycles vs ops.
    total_cycles = sum(ch.tcq.leader_cycles for ch in handle.channels)
    total_msgs = sum(ch.tcq.requests_sent for ch in handle.channels)
    print("ops posted: %d via %d leader doorbell batches"
          % (total_msgs, total_cycles))


if __name__ == "__main__":
    main()
