#!/usr/bin/env python3
"""Quickstart: an echo RPC service over FLock.

Builds a 2-node simulated RDMA cluster, registers an RPC handler on the
server, connects a client through a FLock connection handle, and runs a
few application threads issuing RPCs.  Demonstrates the core Table-2
API: ``fl_reg_handler``, ``fl_connect``, ``fl_send_rpc``/``fl_recv_res``.

Run:  python examples/quickstart.py
"""

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator

ECHO = 1


def main():
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=1))
    cfg = FlockConfig(qps_per_handle=4)

    server = FlockNode(sim, servers[0], fabric, cfg)
    client = FlockNode(sim, clients[0], fabric, cfg, seed=1)

    # Server side: handler(request) -> (response size, payload, CPU ns).
    def echo_handler(request):
        return 64, ("echo", request.payload), 100.0

    server.fl_reg_handler(ECHO, echo_handler)

    # Client side: one connection handle multiplexes 4 RC QPs.
    handle = client.fl_connect(server, n_qps=4)

    completions = []

    def app_thread(thread_id, n_requests):
        for i in range(n_requests):
            started = sim.now
            # fl_send_rpc returns the event fl_recv_res waits on; the
            # fused helper fl_call does both.
            response = yield from client.fl_call(handle, thread_id, ECHO,
                                                 64, payload=(thread_id, i))
            completions.append((thread_id, i, response.payload,
                                sim.now - started))

    for tid in range(8):
        sim.spawn(app_thread(tid, 25))
    sim.run(until=20_000_000)  # 20 ms of virtual time

    print("completed %d RPCs in %.2f ms of virtual time"
          % (len(completions), sim.now / 1e6))
    latencies = sorted(lat for *_x, lat in completions)
    print("median latency: %.2f us, p99: %.2f us"
          % (latencies[len(latencies) // 2] / 1e3,
             latencies[int(len(latencies) * 0.99) - 1] / 1e3))
    print("mean coalescing degree: %.2f (8 threads share 4 QPs)"
          % handle.mean_coalescing_degree())
    sample = completions[0]
    print("sample completion: thread %d request %d -> %r" % sample[:3])


if __name__ == "__main__":
    main()
