#!/usr/bin/env python3
"""Multi-tenant FLock: two applications share one server (paper §9).

The paper sketches multi-application support via a Snap-like central
resource manager.  Here an "oltp" tenant (weight 3) and a "batch"
tenant (weight 1) hammer the same server; the TenantManager splits the
MAX_AQP budget 3:1 by water-filled weighted fair share, and the usual
per-sender QP scheduling runs inside each tenant's budget.

Run:  python examples/multi_tenant.py
"""

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode, TenantManager
from repro.net import build_cluster
from repro.sim import Simulator


def main():
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=4))
    cfg = FlockConfig(qps_per_handle=8, max_aqp=16,
                      sched_interval_ns=300_000.0,
                      thread_sched_interval_ns=300_000.0)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, None, 100.0))

    tenancy = TenantManager()
    tenancy.register_tenant("oltp", weight=3.0)
    tenancy.register_tenant("batch", weight=1.0)
    server.server.tenancy = tenancy

    ops = {"oltp": 0, "batch": 0}
    handles = {}
    for idx, node in enumerate(clients):
        tenant = "oltp" if idx < 2 else "batch"
        client = FlockNode(sim, node, fabric, cfg, seed=idx)
        handle = client.fl_connect(server, n_qps=8)
        tenancy.assign_client(handle.client_id, tenant)
        handles[handle.client_id] = (tenant, handle)

        def worker(client=client, handle=handle, tenant=tenant, tid=0):
            while True:
                yield from client.fl_call(handle, tid, 1, 64)
                ops[tenant] += 1

        for tid in range(8):
            sim.spawn(worker(tid=tid))

    def report():
        for _ in range(5):
            yield sim.timeout(1_000_000)
            per_tenant = {"oltp": 0, "batch": 0}
            for client_id, (tenant, _h) in handles.items():
                per_tenant[tenant] += len(
                    server.server.clients[client_id].active_set)
            print("t=%.0fms  active QPs: %s   budgets: %s   ops: %s"
                  % (sim.now / 1e6, per_tenant,
                     tenancy.last_budgets, dict(ops)))

    sim.spawn(report())
    sim.run(until=5_200_000)

    print()
    print("weight 3:1 => QP budgets %s; batch compensates for fewer QPs "
          "with heavier coalescing, so neither tenant is starved"
          % tenancy.last_budgets)


if __name__ == "__main__":
    main()
