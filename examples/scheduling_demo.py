#!/usr/bin/env python3
"""Symbiotic send-recv scheduling in action (paper §5).

Four clients share a server whose QP scheduler keeps at most MAX_AQP=8
QPs active.  Client 0 is busy (16 threads), the rest are light (2
threads).  Watch the receiver-side QP scheduler shift active QPs toward
the busy sender while dormant senders keep exactly one QP, and the
sender-side thread scheduler remap threads onto the surviving QPs.

Run:  python examples/scheduling_demo.py
"""

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator


def main():
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=4))
    cfg = FlockConfig(qps_per_handle=8, max_aqp=8,
                      sched_interval_ns=500_000.0,
                      thread_sched_interval_ns=500_000.0)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, None, 100.0))

    nodes = [FlockNode(sim, node, fabric, cfg, seed=i)
             for i, node in enumerate(clients)]
    handles = [n.fl_connect(server, n_qps=8) for n in nodes]
    done = [0, 0, 0, 0]

    def worker(c_idx, thread_id):
        while True:
            yield from nodes[c_idx].fl_call(handles[c_idx], thread_id, 1, 64)
            done[c_idx] += 1

    # Client 0 is hot, clients 1-2 are light, client 3 never sends.
    for tid in range(16):
        sim.spawn(worker(0, tid))
    for c_idx in (1, 2):
        for tid in range(2):
            sim.spawn(worker(c_idx, tid))

    def report():
        for tick in range(1, 7):
            yield sim.timeout(1_000_000)
            active = {h.client_id: len(server.server.clients[h.client_id].active_set)
                      for h in handles}
            degrees = [round(h.mean_coalescing_degree(), 2) for h in handles]
            print("t=%dms  active QPs per client: %s  coalescing: %s  ops: %s"
                  % (tick, active, degrees, list(done)))

    sim.spawn(report())
    sim.run(until=6_200_000)

    print()
    print("redistributions run by the QP scheduler: %d"
          % server.server.redistributions)
    busy = server.server.clients[handles[0].client_id]
    idle = server.server.clients[handles[3].client_id]
    print("hot client keeps %d active QPs; the silent one keeps %d "
          "(dormant senders hold exactly one QP for future traffic)"
          % (len(busy.active_set), len(idle.active_set)))
    mapping = handles[0].thread_qp_map
    spread = {}
    for thread_id, qp in sorted(mapping.items()):
        spread.setdefault(qp, []).append(thread_id)
    print("hot client thread->QP packing (Algorithm 1):")
    for qp, threads in sorted(spread.items()):
        print("  QP %d <- threads %s" % (qp, threads))


if __name__ == "__main__":
    main()
