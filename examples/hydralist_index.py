#!/usr/bin/env python3
"""A remote ordered index: HydraList served over FLock RPC (paper §8.6).

One server hosts a HydraList index; clients issue 90% point lookups and
10% range scans.  Shows the asynchronous search layer at work and the
paper's observation that scans (variable service time) and gets mix on
the same connection handles.

Run:  python examples/hydralist_index.py
"""

from repro.apps.hydralist import HydraList
from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator, Streams

RPC_GET, RPC_SCAN, RPC_INSERT = 1, 2, 3
N_KEYS = 50_000


def main():
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=2))
    cfg = FlockConfig(qps_per_handle=4)

    index = HydraList(node_capacity=64)
    index.bulk_load((k, k * 10) for k in range(N_KEYS))
    print("loaded %d keys; pending structural updates: %d"
          % (index.size, index.pending_structural_updates))

    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(
        RPC_GET, lambda req: (8, index.get(req.payload), index.get_cost_ns()))
    server.fl_reg_handler(
        RPC_SCAN,
        lambda req: (8, len(index.scan(req.payload, 64)),
                     index.scan_cost_ns(64)))

    def insert_handler(request):
        key, value = request.payload
        index.insert(key, value)
        return 8, True, index.get_cost_ns()

    server.fl_reg_handler(RPC_INSERT, insert_handler)

    streams = Streams(seed=7)
    stats = {"gets": 0, "hits": 0, "scans": 0, "scanned": 0, "inserts": 0}

    def worker(client, handle, thread_id, rng):
        for _ in range(200):
            r = rng.random()
            key = rng.randrange(N_KEYS * 2)  # half the range misses
            if r < 0.85:
                resp = yield from client.fl_call(handle, thread_id, RPC_GET,
                                                 16, key)
                stats["gets"] += 1
                stats["hits"] += resp.payload is not None
            elif r < 0.95:
                resp = yield from client.fl_call(handle, thread_id, RPC_SCAN,
                                                 24, key)
                stats["scans"] += 1
                stats["scanned"] += resp.payload
            else:
                yield from client.fl_call(handle, thread_id, RPC_INSERT, 24,
                                          (key, key))
                stats["inserts"] += 1

    for c_idx, node in enumerate(clients):
        client = FlockNode(sim, node, fabric, cfg, seed=c_idx)
        handle = client.fl_connect(server, n_qps=4)
        for tid in range(8):
            rng = streams.stream("w-%d-%d" % (c_idx, tid))
            sim.spawn(worker(client, handle, tid, rng))

    sim.run(until=80_000_000)

    print("gets: %d (hit rate %.1f%%)   scans: %d (avg %d keys)   inserts: %d"
          % (stats["gets"], 100.0 * stats["hits"] / max(1, stats["gets"]),
             stats["scans"], stats["scanned"] // max(1, stats["scans"]),
             stats["inserts"]))
    print("index size now: %d; stale search-layer traversals served: %d"
          % (index.size, index.stale_traversals))
    index.merge_search_layer()
    print("after merging the search layer, pending updates: %d"
          % index.pending_structural_updates)


if __name__ == "__main__":
    main()
