#!/usr/bin/env python3
"""Hardware vs software reliability under packet loss (paper §1/§3).

FLock's case for RC: the NIC retransmits lost packets invisibly, so
applications never see loss — it surfaces purely as latency.  UD pushes
loss recovery into software: FaSST-style endpoints time out and count
the request as lost.  This demo injects 2% fabric loss and runs the same
workload through both.

Run:  python examples/failure_injection.py
"""

from repro.baselines import FasstEndpoint, FasstServer
from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator, summarize_latencies

N_REQUESTS = 300
LOSS = 0.02


def run_flock(loss):
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=1))
    fabric.loss_prob = loss
    cfg = FlockConfig(qps_per_handle=2)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, None, 100.0))
    client = FlockNode(sim, clients[0], fabric, cfg, seed=1)
    handle = client.fl_connect(server, n_qps=2)
    latencies = []

    def worker(tid):
        for _ in range(N_REQUESTS // 4):
            started = sim.now
            yield from client.fl_call(handle, tid, 1, 64)
            latencies.append(sim.now - started)

    for tid in range(4):
        sim.spawn(worker(tid))
    sim.run(until=400_000_000)
    return latencies


def run_fasst(loss):
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=1))
    fabric.loss_prob = loss
    server = FasstServer(sim, servers[0], fabric, n_workers=4)
    server.register_handler(1, lambda req: (64, None, 100.0))
    endpoint = FasstEndpoint(sim, clients[0], fabric, timeout_ns=100_000.0)
    latencies, lost = [], [0]

    def worker():
        for _ in range(N_REQUESTS // 4):
            started = sim.now
            response = yield from endpoint.call(server, server.qps[0], 1, 64)
            if response is None:
                lost[0] += 1
            else:
                latencies.append(sim.now - started)

    for _ in range(4):
        sim.spawn(worker())
    sim.run(until=400_000_000)
    return latencies, lost[0]


def main():
    print("injecting %.0f%% packet loss on the fabric\n" % (LOSS * 100))

    clean = summarize_latencies(run_flock(0.0))
    lossy = summarize_latencies(run_flock(LOSS))
    print("FLock (RC, hardware retransmission):")
    print("  0%% loss: %d/%d completed, median %.1f us, max %.1f us"
          % (clean["count"], N_REQUESTS, clean["median"] / 1e3,
             clean["max"] / 1e3))
    print("  2%% loss: %d/%d completed, median %.1f us, max %.1f us"
          % (lossy["count"], N_REQUESTS, lossy["median"] / 1e3,
             lossy["max"] / 1e3))
    print("  -> nothing lost; retransmission shows up only in the tail\n")

    latencies, lost = run_fasst(LOSS)
    done = summarize_latencies(latencies)
    print("FaSST (UD, loss handled by the application):")
    print("  2%% loss: %d/%d completed, %d lost to timeouts, median %.1f us"
          % (done["count"], N_REQUESTS, lost, done["median"] / 1e3))
    print("  -> the application must detect and recover %d requests" % lost)


if __name__ == "__main__":
    main()
