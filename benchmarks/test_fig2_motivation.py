"""Paper Fig. 2: the motivation experiments.

(a) 16-byte RDMA reads (RC) from 22 clients as the QP count grows:
    throughput peaks in the 176-704 QP window and collapses beyond it
    when the RNIC connection cache thrashes.
(b) UD-based RPC as the sender count grows: throughput saturates on
    server CPU (most cycles inside the network stack) far below the RC
    read peak.
"""

import pytest

from repro.harness import run_raw_reads, run_ud_rpc, scorecard_fig2a

from conftest import record_scorecard, record_table

QP_SWEEP = [22, 44, 88, 176, 352, 704, 1408, 2816]
SENDER_SWEEP = [22, 88, 352, 1408, 2816]


def sweep_reads():
    # 2 outstanding reads per QP: few QPs cannot saturate the RNIC, so
    # the curve rises, peaks, and collapses exactly as in the paper.
    return {qps: run_raw_reads(qps, n_clients=22, outstanding_per_qp=2)
            for qps in QP_SWEEP}


def sweep_ud():
    return {n: run_ud_rpc(n, n_clients=22) for n in SENDER_SWEEP}


def test_fig2a_rc_read_scaling(benchmark):
    results = benchmark.pedantic(sweep_reads, rounds=1, iterations=1)
    rows = [[qps, round(r.mops, 2), r.extras["qp_cache_miss"]]
            for qps, r in results.items()]
    record_table("Fig 2(a): RDMA read (RC) throughput vs #QPs",
                 ["#QPs", "Mops", "QP cache miss ratio"], rows)
    record_scorecard(scorecard_fig2a(results))

    mops = {qps: r.mops for qps, r in results.items()}
    best = max(mops.values())
    plateau = [qps for qps, m in mops.items() if m >= 0.95 * best]
    # Paper: performance peaks between 176 and 704 QPs — the plateau
    # must cover that window and end by 704.
    assert 176 in plateau and 704 in plateau
    assert max(plateau) <= 704
    # ...rising from the low-QP end...
    assert best > 1.3 * mops[22]
    # ...followed by a sharp drop as the QP count increases further.
    assert mops[2816] < 0.55 * best
    # The drop is driven by cache thrashing.
    assert results[2816].extras["qp_cache_miss"] > results[176].extras["qp_cache_miss"]


def test_fig2b_ud_rpc_scaling(benchmark):
    results = benchmark.pedantic(sweep_ud, rounds=1, iterations=1)
    rows = [[n, round(r.mops, 2), r.extras["server_cpu"],
             r.extras["server_net_frac"]]
            for n, r in results.items()]
    record_table("Fig 2(b): UD RPC throughput vs #senders",
                 ["#senders", "Mops", "server CPU", "net-stack frac"], rows)

    mops = {n: r.mops for n, r in results.items()}
    # Saturates rather than scaling with senders.
    assert mops[2816] < 1.25 * mops[352]
    # Server CPU is the bottleneck, mostly inside the network stack
    # (paper: >90% of cycles in the Mellanox userspace libraries).
    saturated = results[352]
    assert saturated.extras["server_cpu"] > 0.95
    assert saturated.extras["server_net_frac"] > 0.8
    # The UD ceiling sits well below the RC read peak (paper: ~2x gap).
    read_peak = run_raw_reads(176, n_clients=22).mops
    assert max(mops.values()) < read_peak
