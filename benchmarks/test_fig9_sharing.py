"""Paper Fig. 9: QP-sharing approaches under 8 outstanding requests.

Compares (1) FLock's combining-based sharing with receiver-side QP
scheduling, (2) no sharing (a dedicated QP per thread), and (3) FaRM-like
spinlock sharing with 2 or 4 threads per QP.  Claims: parity with
no-sharing at low thread counts, >=62%/133% wins at 32/48 threads, and
spinlock sharing performing like no-sharing (serialized posting gains
nothing from sharing).
"""

import pytest

from repro.harness import MicrobenchConfig, run_flock, run_rc, scorecard_fig9

from conftest import record_scorecard, record_table

THREADS = [1, 8, 16, 32, 48]


def config(threads):
    return MicrobenchConfig(n_clients=23, threads_per_client=threads,
                            outstanding=8)


def sweep():
    results = {}
    for threads in THREADS:
        cfg = config(threads)
        results[("flock", threads)] = run_flock(cfg)
        results[("nosharing", threads)] = run_rc(cfg, threads_per_qp=1)
        results[("farm2", threads)] = run_rc(cfg, threads_per_qp=2)
        results[("farm4", threads)] = run_rc(cfg, threads_per_qp=4)
    return results


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_fig9_table(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for threads in THREADS:
        rows.append([
            threads,
            round(results[("flock", threads)].mops, 2),
            round(results[("nosharing", threads)].mops, 2),
            round(results[("farm2", threads)].mops, 2),
            round(results[("farm4", threads)].mops, 2),
            round(results[("flock", threads)].p99_us, 1),
            round(results[("nosharing", threads)].p99_us, 1),
        ])
    record_table(
        "Fig 9: QP sharing approaches (64B RPC, 8 outstanding, 23 clients)",
        ["thr/client", "FLock Mops", "no-share Mops", "FaRM-2 Mops",
         "FaRM-4 Mops", "FLock p99 us", "no-share p99 us"],
        rows,
    )
    record_scorecard(scorecard_fig9(results))


def test_parity_at_low_threads(benchmark, results):
    """Paper: up to 8 threads FLock matches no sharing despite its extra
    scheduling machinery (no coalescing happens below MAX_AQP)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for threads in (1, 8):
        flock = results[("flock", threads)].mops
        nosharing = results[("nosharing", threads)].mops
        assert flock > 0.8 * nosharing


def test_flock_wins_at_high_threads(benchmark, results):
    """Paper: +62% at 32 threads, +133% at 48 (we assert >= +30%/+50%)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert results[("flock", 32)].mops > 1.30 * results[("nosharing", 32)].mops
    assert results[("flock", 48)].mops > 1.50 * results[("nosharing", 48)].mops


def test_flock_tail_lower_at_high_threads(benchmark, results):
    """Paper: 27%/49% lower 99p latency at 32/48 threads."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (results[("flock", 32)].p99_us
            < results[("nosharing", 32)].p99_us)
    assert (results[("flock", 48)].p99_us
            < results[("nosharing", 48)].p99_us)


def test_spinlock_sharing_is_no_better_than_dedicated(benchmark, results):
    """Paper: FaRM-like sharing performs similarly to no sharing —
    serialized posting cannot exploit sharing."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for threads in (32, 48):
        farm2 = results[("farm2", threads)].mops
        farm4 = results[("farm4", threads)].mops
        nosharing = results[("nosharing", threads)].mops
        assert farm2 < 1.25 * nosharing
        assert farm4 < 1.25 * nosharing
        # And both lose clearly to FLock's combining.
        assert results[("flock", threads)].mops > 1.3 * max(farm2, farm4)
