"""Extension benchmark (paper §9): multi-tenant QP allocation.

The paper sketches Snap-style multi-application support; our
:class:`repro.flock.TenantManager` implements it as hierarchical
weighted-fair splitting of the MAX_AQP budget.  This bench runs two
equally aggressive applications with 3:1 weights against one server and
checks that (a) active QPs follow the weights, (b) throughput follows
the QPs, and (c) the light tenant is never starved.
"""

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode, TenantManager
from repro.net import build_cluster
from repro.sim import Simulator

from conftest import record_table

N_CLIENTS_PER_TENANT = 4
THREADS = 16
MAX_AQP = 32


def run(weights):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=2 * N_CLIENTS_PER_TENANT))
    cfg = FlockConfig(qps_per_handle=THREADS, max_aqp=MAX_AQP,
                      sched_interval_ns=150_000.0,
                      thread_sched_interval_ns=150_000.0)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, None, 100.0))
    tenancy = TenantManager()
    tenancy.register_tenant("gold", weight=weights[0])
    tenancy.register_tenant("bronze", weight=weights[1])
    server.server.tenancy = tenancy

    ops = {"gold": 0, "bronze": 0}
    handles = {"gold": [], "bronze": []}
    for idx, node in enumerate(clients):
        tenant = "gold" if idx < N_CLIENTS_PER_TENANT else "bronze"
        client = FlockNode(sim, node, fabric, cfg, seed=idx)
        handle = client.fl_connect(server, n_qps=THREADS)
        tenancy.assign_client(handle.client_id, tenant)
        handles[tenant].append(handle)

        def worker(client=client, handle=handle, tenant=tenant, tid=0):
            while True:
                yield from client.fl_call(handle, tid, 1, 64)
                ops[tenant] += 1

        for tid in range(THREADS):
            sim.spawn(worker(tid=tid))
    sim.run(until=1_500_000)

    def active(tenant):
        return sum(len(server.server.clients[h.client_id].active_set)
                   for h in handles[tenant])

    return ops, {"gold": active("gold"), "bronze": active("bronze")}


def test_multitenancy_isolation(benchmark):
    ops, qps = benchmark.pedantic(lambda: run((3.0, 1.0)), rounds=1,
                                  iterations=1)
    record_table(
        "Extension (§9): two tenants, weights 3:1, MAX_AQP=%d" % MAX_AQP,
        ["tenant", "active QPs", "ops completed"],
        [["gold (w=3)", qps["gold"], ops["gold"]],
         ["bronze (w=1)", qps["bronze"], ops["bronze"]]],
    )
    # QP budget follows the weights (within the per-client-minimum slack).
    assert qps["gold"] >= 2 * qps["bronze"]
    assert qps["gold"] + qps["bronze"] <= MAX_AQP + 2 * N_CLIENTS_PER_TENANT
    # Isolation, not starvation: both tenants make solid progress (the
    # light tenant compensates for fewer QPs with heavier coalescing).
    assert ops["bronze"] > 0
    assert ops["gold"] > 0.8 * ops["bronze"]
