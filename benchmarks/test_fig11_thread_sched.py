"""Paper Fig. 11: sender-side thread scheduling under mixed payloads.

90% of threads send 64 B requests, 10% send large ones (512/768/1024 B).
Algorithm 1 sorts threads by median request size and packs them into
byte-quota groups, so large-payload threads land on their own QPs.

What reproduces, measured per size class below: the scheduler reliably
*separates* the classes, which removes the large requests from behind
small-thread combining queues (their median latency drops several-fold)
at throughput parity.  What does not reproduce: the paper's up-to-1.5x
*throughput* win — at a simulated 100 Gbps with byte-proportional costs
only, a 1 KB payload is nearly free on the wire, so mixing classes costs
our model little.  The deviation is recorded in EXPERIMENTS.md.
"""

import random

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator, summarize_latencies
from repro.harness import scorecard_fig11
from repro.workloads import BimodalSize

from conftest import record_scorecard, record_table

LARGE_SIZES = [512, 768, 1024]
THREADS = 32
N_CLIENTS = 23
WARMUP, MEASURE = 600_000.0, 500_000.0


def run_point(large_size, scheduling):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=N_CLIENTS, seed=1))
    fcfg = FlockConfig(sched_interval_ns=150_000.0,
                       thread_sched_interval_ns=150_000.0)
    server = FlockNode(sim, servers[0], fabric, fcfg)
    server.fl_reg_handler(1, lambda req: (64, None, 100.0))
    gen = BimodalSize(n_threads=THREADS, large_size=large_size)
    small_lat, large_lat = [], []
    jitter_rng = random.Random(99)
    handles = []

    def worker(fnode, handle, tid, rng):
        is_large = tid in gen.large_threads
        while True:
            yield sim.timeout(rng.random() * 300)
            started = sim.now
            yield from fnode.fl_call(handle, tid, 1, gen.next(tid))
            if WARMUP <= sim.now < WARMUP + MEASURE:
                (large_lat if is_large else small_lat).append(
                    sim.now - started)

    for c_idx, node in enumerate(clients):
        fnode = FlockNode(sim, node, fabric, fcfg, seed=c_idx)
        fnode.client.thread_scheduling_enabled = scheduling
        handle = fnode.fl_connect(server, n_qps=THREADS // 2)
        handles.append(handle)
        for tid in range(THREADS):
            for _ in range(8):
                rng = random.Random(jitter_rng.getrandbits(48))
                sim.spawn(worker(fnode, handle, tid, rng))
    sim.run(until=WARMUP + MEASURE)

    # How well separated are the size classes on the wire?
    mixed_qps = 0
    for handle in handles:
        by_qp = {}
        for tid, qp in handle.thread_qp_map.items():
            by_qp.setdefault(qp, set()).add(tid in gen.large_threads)
        mixed_qps += sum(1 for classes in by_qp.values()
                         if len(classes) == 2)
    mops = (len(small_lat) + len(large_lat)) / MEASURE * 1e3
    return {
        "mops": mops,
        "small": summarize_latencies(small_lat),
        "large": summarize_latencies(large_lat),
        "mixed_qps": mixed_qps,
    }


def sweep():
    return {(size, sched): run_point(size, sched)
            for size in LARGE_SIZES for sched in (False, True)}


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_fig11_table(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for size in LARGE_SIZES:
        off = results[(size, False)]
        on = results[(size, True)]
        rows.append([
            size,
            round(off["mops"], 1), round(on["mops"], 1),
            round(off["large"]["median"] / 1e3, 1),
            round(on["large"]["median"] / 1e3, 1),
            round(off["small"]["median"] / 1e3, 1),
            round(on["small"]["median"] / 1e3, 1),
            off["mixed_qps"], on["mixed_qps"],
        ])
    record_table(
        "Fig 11: thread scheduling (90% 64B + 10% large, per-class)",
        ["large B", "off Mops", "on Mops", "large med off us",
         "large med on us", "small med off us", "small med on us",
         "mixed QPs off", "mixed QPs on"],
        rows,
    )
    record_scorecard(scorecard_fig11(results))


def test_scheduler_separates_size_classes(benchmark, results):
    """Algorithm 1's observable action: almost no QP carries both a
    small-payload and a large-payload thread once scheduling runs."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for size in LARGE_SIZES:
        off = results[(size, False)]["mixed_qps"]
        on = results[(size, True)]["mixed_qps"]
        assert on < off / 2, size
        assert on <= N_CLIENTS, size  # at most ~1 boundary QP per client


def test_large_requests_escape_head_of_line(benchmark, results):
    """With dedicated QPs, large requests stop queueing behind the
    small threads' combining pipelines."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for size in LARGE_SIZES:
        off = results[(size, False)]["large"]["median"]
        on = results[(size, True)]["large"]["median"]
        assert on < 0.7 * off, size


def test_throughput_not_sacrificed(benchmark, results):
    """Scheduling costs at most a modest slice of throughput here (the
    paper gains up to 1.5x; see the module docstring for why the gain
    does not reproduce under this cost model)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for size in LARGE_SIZES:
        off = results[(size, False)]["mops"]
        on = results[(size, True)]["mops"]
        assert on > 0.85 * off, size
