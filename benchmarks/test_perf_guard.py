"""Perf guard: disabled observability must stay (nearly) free.

Two contracts protect the hot paths that task telemetry rides on:

1. **Virtual-time invariance** — enabling the full telemetry stack must
   not change simulation *results*.  Spans and metrics are pure
   observers; a traced run and an untraced run of the same seed produce
   identical ops/latency numbers.
2. **Wall-clock overhead** — the default (null-instrument) path adds
   under 5 % to the runtime of a small Fig. 6-style run relative to the
   same run before instrumentation; since "before" no longer exists, we
   bound the cost of the null instruments directly: the per-event cost
   of a NullCounter.inc() must be a small fraction of the simulator's
   per-event processing cost.
"""

import time

import pytest

from repro.harness import MicrobenchConfig, run_flock
from repro.obs import Telemetry, null_registry


SMALL = dict(n_clients=3, threads_per_client=8, outstanding=2)


def test_virtual_results_unchanged_by_telemetry():
    base = run_flock(MicrobenchConfig(**SMALL))
    traced = run_flock(MicrobenchConfig(**SMALL), telemetry=Telemetry())
    assert traced.ops == base.ops
    assert traced.latency == base.latency
    assert traced.extras["mean_coalescing_degree"] == \
        base.extras["mean_coalescing_degree"]
    assert traced.extras["events"] == base.extras["events"]


def test_null_instrument_cost_is_negligible(benchmark):
    """The disabled path budget: <5 % of a small fig6 run's wall time.

    A run processes ~E simulator events and performs at most a handful
    of null-instrument calls per event.  We time N null inc()/observe()
    calls and the run itself, then assert the projected instrumentation
    share stays under the 5 % budget with a wide margin.
    """
    counter = null_registry.counter("x")
    hist = null_registry.histogram("y")

    calls = 200_000

    def spin():
        for _ in range(calls):
            counter.inc()
            hist.observe(1.0)

    per_call_s = float("inf")
    for _ in range(3):  # best-of-3 damps scheduler noise
        t0 = time.perf_counter()
        spin()
        per_call_s = min(per_call_s,
                         (time.perf_counter() - t0) / (2 * calls))

    t0 = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_flock(MicrobenchConfig(**SMALL)), rounds=1, iterations=1)
    run_s = time.perf_counter() - t0

    events = result.extras["events"]
    assert events > 0
    # Conservative upper bound: 4 null-instrument touches per simulator
    # event (the instrumented layers touch instruments per message/WR,
    # which each span ~10 events, so the true rate is well under 1).
    projected_share = (4 * events * per_call_s) / run_s
    assert projected_share < 0.05, (
        "null instruments project to %.2f%% of the run (budget 5%%)"
        % (100 * projected_share))


def test_profiler_off_cost_is_negligible(benchmark):
    """The cost-observatory disabled path budget: <2 % of run wall time.

    With profiling off, ``Simulator.run`` carries zero observatory code
    (tests/test_obs_simprof.py pins that structurally), so the only
    residue is the cached ``self._occ`` attribute load + ``is None``
    test at each component hook site.  Time that exact shape and
    project it at a conservative 4 hook touches per simulator event.
    """
    class _Host:
        _occ = None

    host = _Host()
    calls = 500_000

    def spin():
        hits = 0
        for _ in range(calls):
            occ = host._occ
            if occ is not None:
                hits += 1
        return hits

    per_call_s = float("inf")
    for _ in range(3):  # best-of-3 damps scheduler noise
        t0 = time.perf_counter()
        assert spin() == 0
        per_call_s = min(per_call_s,
                         (time.perf_counter() - t0) / calls)

    t0 = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_flock(MicrobenchConfig(**SMALL)), rounds=1, iterations=1)
    run_s = time.perf_counter() - t0

    events = result.extras["events"]
    assert events > 0
    # Hook sites fire per transfer/WR/credit transition, each of which
    # spans ~10 simulator events, and no event path crosses more than a
    # handful of hooked components — so 2 touches per event is still a
    # generous over-estimate of the true rate (well under 1).
    projected_share = (2 * events * per_call_s) / run_s
    assert projected_share < 0.02, (
        "disabled occupancy hooks project to %.2f%% of the run "
        "(budget 2%%)" % (100 * projected_share))
