"""Related-work comparison (paper §10): FLock vs ScaleRPC time-sharing.

ScaleRPC bounds hot QP state by serving one connection group per time
slice; the paper's critique is the "additional coordination ...
increasing tail latency".  Same offered load, same RC write-based data
path: FLock's always-on scheduled QPs vs 4-group time sharing.
"""

import pytest

from repro.baselines import ScaleRpcClient, ScaleRpcServer
from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator, summarize_latencies

from conftest import record_table

N_CLIENTS = 8
THREADS = 8
REQS = 80
N_GROUPS = 4
SLICE_NS = 25_000.0


def run_scalerpc():
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=N_CLIENTS))
    server = ScaleRpcServer(sim, servers[0], fabric, n_groups=N_GROUPS,
                            slice_ns=SLICE_NS)
    server.register_handler(1, lambda req: (64, None, 100.0))
    latencies = []

    def worker(client, handle, tid):
        for _ in range(REQS):
            started = sim.now
            yield from client.call(handle, tid, 1, 64)
            latencies.append(sim.now - started)

    for node in clients:
        client = ScaleRpcClient(sim, node, fabric)
        handle = client.connect(server, n_qps=THREADS, threads_per_qp=1)
        for tid in range(THREADS):
            sim.spawn(worker(client, handle, tid))
    sim.run(until=400_000_000)
    return latencies


def run_flock():
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=N_CLIENTS))
    cfg = FlockConfig(qps_per_handle=THREADS)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, None, 100.0))
    latencies = []

    def worker(client, handle, tid):
        for _ in range(REQS):
            started = sim.now
            yield from client.fl_call(handle, tid, 1, 64)
            latencies.append(sim.now - started)

    for c_idx, node in enumerate(clients):
        client = FlockNode(sim, node, fabric, cfg, seed=c_idx)
        handle = client.fl_connect(server, n_qps=THREADS)
        for tid in range(THREADS):
            sim.spawn(worker(client, handle, tid))
    sim.run(until=400_000_000)
    return latencies


def test_scalerpc_tail_penalty(benchmark):
    def run():
        return run_scalerpc(), run_flock()

    scalerpc_lat, flock_lat = benchmark.pedantic(run, rounds=1, iterations=1)
    s = summarize_latencies(scalerpc_lat)
    f = summarize_latencies(flock_lat)
    record_table(
        "Related work (§10): FLock vs ScaleRPC (%d groups, %dus slices)"
        % (N_GROUPS, int(SLICE_NS / 1e3)),
        ["system", "ops", "median us", "p99 us"],
        [["ScaleRPC", s["count"], round(s["median"] / 1e3, 2),
          round(s["p99"] / 1e3, 2)],
         ["FLock", f["count"], round(f["median"] / 1e3, 2),
          round(f["p99"] / 1e3, 2)]],
    )
    assert s["count"] == f["count"] == N_CLIENTS * THREADS * REQS
    # Time-sharing's coordination shows up in the tail (§10).
    assert s["p99"] > 2 * f["p99"]
