"""Fabric transport-model benchmark: fluid vs packet, regression-gated.

An uncongested 512-node fig12-style sweep — every client node hammering
one server with QP/MTT-thrashing raw reads — run twice, once per
transport model, under the simulation cost observatory.  The headline
contract of the hybrid-fidelity refactor is the **fabric-owned event
ratio**: the fluid model must dispatch ≥ 10× fewer events attributed to
the fabric-side components (fabric/rnic/pcie/switch/flow, per the
simprof census) than the stepped packet model, while delivering exactly
the same messages.  Wall-clock throughput rides along as a secondary
gate with the usual machine-noise tolerances.

Both ratios land in ``BENCH_fabric.json`` and gate against the
committed baseline through the bench store like every figure.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.config import ClusterConfig, FidelityConfig, NetConfig
from repro.harness import bench_scale
from repro.net import build_cluster
from repro.obs import Scorecard, SimProfile
from repro.sim import Simulator

from conftest import record_scorecard, record_table

#: Census buckets owned by the fabric pipeline (the event classes the
#: fluid model is allowed to consolidate).  Spawns/idle stay app/kernel.
FABRIC_OWNED = ("fabric", "switch", "rnic", "pcie", "flow")

#: 512 nodes at full scale; the smoke lane shrinks with the usual knob
#: (ratios survive scaling, and the bench store skips cross-scale
#: comparisons anyway).
N_NODES = max(64, int(512 * bench_scale()))
PER_CLIENT = 4
NBYTES = 4096
#: Distinct QP/rkey working set, sized past the RNIC caches so the
#: stepped path pays real PCIe state-fetch churn per message.
DISTINCT_QPS = 128
ROUNDS = 3


def _run_sweep(mode):
    """One full sweep under ``mode``; returns census + wall numbers."""
    sim = Simulator()
    net = NetConfig()
    net.fidelity = FidelityConfig(mode=mode, honor_env=False)
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=N_NODES - 1, seed=7, net=net))
    for ci, node in enumerate(clients):
        def worker(node=node, ci=ci):
            for i in range(PER_CLIENT):
                q = (ci * PER_CLIENT + i) % DISTINCT_QPS + 10
                yield from fabric.transfer(
                    node, servers[0], NBYTES, q, q + 1000,
                    rkeys=(3 * q, 3 * q + 1, 3 * q + 2))
        sim.spawn(worker())
    prof = SimProfile(0.0, 1.0, n_windows=1)
    t0 = time.perf_counter()
    sim.run_profiled(prof)
    wall = time.perf_counter() - t0
    fabric_events = sum(n for key, n in prof.dispatched.items()
                        if key.split(";", 1)[0] in FABRIC_OWNED)
    return {
        "wall_s": wall,
        "total_events": prof.total_dispatched,
        "fabric_events": fabric_events,
        "delivered": fabric.messages_delivered,
        "dropped": fabric.messages_dropped,
    }


def _best_of(mode):
    """Best wall clock over a few rounds; census numbers are
    deterministic, so any round's copy serves."""
    best = None
    for _ in range(ROUNDS):
        trial = _run_sweep(mode)
        if best is None or trial["wall_s"] < best["wall_s"]:
            best = trial
    return best


def test_fabric_transport_models(benchmark):
    packet = benchmark.pedantic(lambda: _best_of("packet"),
                                rounds=1, iterations=1)
    fluid = _best_of("fluid")

    fabric_ratio = packet["fabric_events"] / fluid["fabric_events"]
    total_ratio = packet["total_events"] / fluid["total_events"]
    wall_speedup = packet["wall_s"] / fluid["wall_s"]

    rows = [
        [mode, r["total_events"], r["fabric_events"], r["delivered"],
         round(r["wall_s"] * 1e3, 1)]
        for mode, r in (("packet", packet), ("fluid", fluid))
    ]
    rows.append(["ratio", round(total_ratio, 2), round(fabric_ratio, 2),
                 "-", round(wall_speedup, 2)])
    record_table(
        "Fabric transport models: %d-node uncongested sweep" % N_NODES,
        ["model", "events", "fabric-owned", "delivered", "wall ms"],
        rows)

    sc = Scorecard(figure="fabric", title="Fluid vs packet transport")
    # Event ratios come from the deterministic census: tight tolerance.
    sc.add_metric("fabric_event_ratio", fabric_ratio, better="higher",
                  rtol=0.20, unit="x")
    sc.add_metric("total_event_ratio", total_ratio, better="higher",
                  rtol=0.20, unit="x")
    # Wall clock is machine-dependent: wide tolerance, absolutes info.
    sc.add_metric("wall_speedup", wall_speedup, better="higher",
                  rtol=0.40, unit="x")
    sc.add_metric("packet_events_per_sec",
                  packet["total_events"] / packet["wall_s"],
                  better="info", unit="ev/s")
    sc.add_metric("fluid_events_per_sec",
                  fluid["total_events"] / fluid["wall_s"],
                  better="info", unit="ev/s")
    sc.add_metric("messages_delivered", float(packet["delivered"]),
                  better="equal", atol=0.0)
    sc.add_check(
        "fluid_10x_fewer_fabric_events", fabric_ratio >= 10.0,
        "the fluid model consolidates the stepped pipeline's per-packet "
        "and per-cache-miss events into O(1) per transfer")
    sc.add_check(
        "delivered_counts_identical",
        packet["delivered"] == fluid["delivered"]
        and packet["dropped"] == fluid["dropped"] == 0,
        "both models conserve the same delivered messages, loss-free")
    record_scorecard(sc)

    # The acceptance gate: ≥10× fewer fabric-owned dispatched events.
    assert fabric_ratio >= 10.0, (
        "fluid model only cut fabric-owned events by %.2fx" % fabric_ratio)
    assert packet["delivered"] == fluid["delivered"] == \
        PER_CLIENT * (N_NODES - 1)
    # The fluid path must also be genuinely cheaper end to end, with
    # slack for shared-runner noise below the measured ~5x.
    assert wall_speedup >= 1.5, (
        "fluid wall-clock speedup only %.2fx" % wall_speedup)
