"""Paper Fig. 10: the impact of coalescing.

32 threads per client; FLock runs with coalescing enabled vs disabled
for 1/4/8 outstanding requests per thread.  Claims: 1.4x at one
outstanding request, ~1.7x at 4/8; the coalescing degree grows with
outstanding requests (paper: 1.56 -> ~1.7 -> ~2 requests per message).
"""

import pytest

from repro.harness import MicrobenchConfig, run_flock, scorecard_fig10

from conftest import record_scorecard, record_table

OUTSTANDING = [1, 4, 8]


def sweep():
    results = {}
    for outstanding in OUTSTANDING:
        cfg = MicrobenchConfig(n_clients=23, threads_per_client=32,
                               outstanding=outstanding)
        results[(True, outstanding)] = run_flock(cfg)
        results[(False, outstanding)] = run_flock(cfg, coalescing=False)
    return results


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_fig10_table(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for outstanding in OUTSTANDING:
        with_c = results[(True, outstanding)]
        without_c = results[(False, outstanding)]
        rows.append([
            outstanding,
            round(without_c.mops, 2), round(with_c.mops, 2),
            round(with_c.mops / max(without_c.mops, 1e-9), 2),
            with_c.extras["mean_coalescing_degree"],
        ])
    record_table(
        "Fig 10: coalescing impact (32 thr/client, 23 clients)",
        ["outstanding", "no-coalesce Mops", "coalesce Mops", "speedup",
         "reqs/message"],
        rows,
    )
    record_scorecard(scorecard_fig10(results))


def test_coalescing_always_wins_here(benchmark, results):
    """Coalescing never loses, and the win is substantial once threads
    keep several requests outstanding (paper: 1.4x-1.7x; we see a
    smaller effect at 1 outstanding and the paper's ~1.7x at 8)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for outstanding in OUTSTANDING:
        with_c = results[(True, outstanding)].mops
        without_c = results[(False, outstanding)].mops
        assert with_c > 1.02 * without_c, outstanding
    assert (results[(True, 8)].mops
            > 1.4 * results[(False, 8)].mops)


def test_speedup_grows_with_outstanding(benchmark, results):
    """Paper: 1.4x at 1 outstanding, 1.7x at 4 and 8."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    def speedup(outstanding):
        return (results[(True, outstanding)].mops
                / results[(False, outstanding)].mops)

    assert speedup(8) > speedup(1)


def test_degree_grows_with_outstanding(benchmark, results):
    """Paper: ~1.56, ~1.7, ~2 requests per coalesced message; we see
    the same growth from a slightly lower base."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    degrees = [results[(True, o)].extras["mean_coalescing_degree"]
               for o in OUTSTANDING]
    assert degrees[0] > 1.1
    assert degrees[2] > degrees[0]
    assert degrees[2] > 1.5
