"""Ablations of FLock's design parameters (DESIGN.md §5).

Not figures from the paper, but sweeps over the design constants the
paper fixes: MAX_AQP (256), the leader's combining bound, and the
credit batch size C (32).  Each documents why the paper's choice sits
where it does.
"""

import pytest

from repro.config import FlockConfig
from repro.harness import MicrobenchConfig, run_flock

from conftest import record_table


def flock_cfg(**overrides):
    base = dict(sched_interval_ns=150_000.0,
                thread_sched_interval_ns=150_000.0)
    base.update(overrides)
    return FlockConfig(**base)


HIGH_FANIN = MicrobenchConfig(n_clients=23, threads_per_client=32,
                              outstanding=4)


def test_ablation_max_aqp(benchmark):
    """MAX_AQP trades throughput for latency: fewer active QPs mean more
    sharing and deeper coalescing (throughput up — the same effect the
    paper's Fig. 12 shows for 2thr/1QP vs 2thr/2QP) at the cost of
    combining-queue latency; far above the NIC cache it reintroduces the
    Fig. 2a thrashing.  The paper's 256 sits at the latency-friendly end
    of the throughput plateau."""
    sweep = [32, 128, 256, 736]

    def run():
        return {aqp: run_flock(HIGH_FANIN, flock_cfg=flock_cfg(max_aqp=aqp))
                for aqp in sweep}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[aqp, round(r.mops, 2), round(r.p99_us, 1),
             r.extras["active_qps"], r.extras["qp_cache_miss"],
             r.extras["mean_coalescing_degree"]]
            for aqp, r in results.items()]
    record_table("Ablation: MAX_AQP (32 thr/client, 23 clients)",
                 ["MAX_AQP", "Mops", "p99 us", "active QPs", "cache miss",
                  "coalesce deg"], rows)

    # Fewer active QPs -> more sharing -> higher coalescing degree.
    assert (results[32].extras["mean_coalescing_degree"]
            > results[736].extras["mean_coalescing_degree"])
    # Under heavy fan-in, deep sharing buys throughput via coalescing —
    # the Fig. 12 effect (2thr/1QP beating 2thr/2QP), writ large.
    assert results[32].mops >= results[736].mops
    # Exceeding the NIC cache is strictly worse: no throughput, and the
    # Fig. 2a thrashing explodes the tail.
    assert results[736].mops < 1.15 * results[256].mops
    assert results[736].p99_us > 2 * results[256].p99_us
    assert (results[736].extras["qp_cache_miss"]
            >= results[256].extras["qp_cache_miss"])

    # Reproduction finding, recorded deliberately: in this cost model,
    # deeper sharing never loses — the simulator has no per-QP NIC
    # parallelism penalty, so the message-rate savings of coalescing
    # dominate at every load.  What MAX_AQP buys here is purely the
    # cache-thrash guard (asserted above); the paper's additional
    # "dedicated QPs enable more parallelism within the RNIC" effect is
    # outside the model (see docs/simulation.md).
    light = MicrobenchConfig(n_clients=23, threads_per_client=8,
                             outstanding=1)
    light_256 = run_flock(light, flock_cfg=flock_cfg(max_aqp=256))
    light_32 = run_flock(light, flock_cfg=flock_cfg(max_aqp=32))
    record_table("Ablation: MAX_AQP at light load (8 thr/client, 1 out)",
                 ["MAX_AQP", "Mops", "median us"],
                 [[32, round(light_32.mops, 2), round(light_32.median_us, 2)],
                  [256, round(light_256.mops, 2),
                   round(light_256.median_us, 2)]])
    # Both configurations stay healthy at light load.
    assert light_256.mops > 0.8 * light_32.mops
    assert light_256.median_us < 1.5 * light_32.median_us


def test_ablation_combine_bound(benchmark):
    """The leader's bounded combining, measured in a high-sharing regime
    (MAX_AQP=64, ~11 threads per active QP): 1 disables coalescing,
    very large bounds stop helping once batches exceed concurrent
    arrivals."""
    sweep = [1, 4, 16, 64]

    def run():
        return {bound: run_flock(
            HIGH_FANIN,
            flock_cfg=flock_cfg(max_combine=bound, max_aqp=64))
            for bound in sweep}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[bound, round(r.mops, 2),
             r.extras["mean_coalescing_degree"]]
            for bound, r in results.items()]
    record_table("Ablation: leader combining bound (MAX_AQP=64)",
                 ["max_combine", "Mops", "coalesce deg"], rows)

    assert results[16].mops > 1.1 * results[1].mops
    assert (results[16].extras["mean_coalescing_degree"]
            > results[1].extras["mean_coalescing_degree"])
    # Diminishing returns beyond the paper's regime.
    assert results[64].mops < 1.3 * results[16].mops


def test_ablation_credit_batch(benchmark):
    """Credit batch C: too small starves QPs on renewal latency; the
    paper's 32 captures most of the benefit of larger batches."""
    sweep = [4, 32, 128]

    def run():
        out = {}
        for batch in sweep:
            cfg = flock_cfg(credit_batch=batch,
                            credit_renew_threshold=batch // 2)
            out[batch] = run_flock(HIGH_FANIN, flock_cfg=cfg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[batch, round(r.mops, 2), round(r.p99_us, 1)]
            for batch, r in results.items()]
    record_table("Ablation: credit batch size C",
                 ["C", "Mops", "p99 us"], rows)

    assert results[32].mops > results[4].mops
    assert results[128].mops < 1.25 * results[32].mops
