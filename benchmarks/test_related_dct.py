"""Related-work comparison (paper §10): FLock vs Mellanox DCT.

DCT also bounds connection counts, but by creating/destroying
connections dynamically; prior work (cited in §10) found that
"frequently switching a connection to communicate with multiple remote
machines leads to performance degradation".  This bench has client
threads fan out across 3 servers round-robin and compares DCT (connect
handshake per switch) against FLock's persistent handle pool.
"""

import pytest

from repro.baselines import DctEndpoint, RcRpcServer
from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator

from conftest import record_table

N_SERVERS = 3
N_CLIENTS = 8
THREADS = 8
REQS = 60


def run_dct():
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=N_CLIENTS, n_servers=N_SERVERS))
    rc_servers = []
    for node in servers:
        server = RcRpcServer(sim, node, fabric)
        server.register_handler(1, lambda req: (64, None, 100.0))
        rc_servers.append(server)
    latencies = []

    def worker(endpoint):
        for i in range(REQS):
            target = i % N_SERVERS
            started = sim.now
            yield from endpoint.call(target, rc_servers[target], 1, 64)
            latencies.append(sim.now - started)

    endpoints = []
    for node in clients:
        for _t in range(THREADS):
            endpoint = DctEndpoint(sim, node, fabric)
            endpoints.append(endpoint)
            sim.spawn(worker(endpoint))
    sim.run(until=400_000_000)
    switches = sum(e.switches for e in endpoints)
    return latencies, switches


def run_flock():
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=N_CLIENTS, n_servers=N_SERVERS))
    cfg = FlockConfig(qps_per_handle=THREADS)
    flock_servers = []
    for node in servers:
        fnode = FlockNode(sim, node, fabric, cfg)
        fnode.fl_reg_handler(1, lambda req: (64, None, 100.0))
        flock_servers.append(fnode)
    latencies = []

    def worker(client, handles, tid):
        for i in range(REQS):
            target = i % N_SERVERS
            started = sim.now
            yield from client.fl_call(handles[target], tid, 1, 64)
            latencies.append(sim.now - started)

    for c_idx, node in enumerate(clients):
        client = FlockNode(sim, node, fabric, cfg, seed=c_idx)
        handles = [client.fl_connect(s, n_qps=THREADS)
                   for s in flock_servers]
        for tid in range(THREADS):
            sim.spawn(worker(client, handles, tid))
    sim.run(until=400_000_000)
    return latencies


def test_dct_switching_penalty(benchmark):
    def run():
        dct_lat, switches = run_dct()
        flock_lat = run_flock()
        return dct_lat, switches, flock_lat

    dct_lat, switches, flock_lat = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    dct_mean = sum(dct_lat) / len(dct_lat)
    flock_mean = sum(flock_lat) / len(flock_lat)
    record_table(
        "Related work (§10): FLock vs DCT, threads alternating 3 servers",
        ["system", "mean latency us", "ops", "reconnects"],
        [["DCT", round(dct_mean / 1e3, 2), len(dct_lat), switches],
         ["FLock", round(flock_mean / 1e3, 2), len(flock_lat), 0]],
    )
    assert len(dct_lat) == len(flock_lat) == N_CLIENTS * THREADS * REQS
    # Every target switch reconnects; the penalty shows in mean latency.
    assert switches > 0
    assert dct_mean > flock_mean + 1_000.0
