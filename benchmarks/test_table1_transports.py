"""Paper Table 1: RDMA operations and MTU sizes per transport type.

Regenerates the capability matrix from the verbs layer and verifies it
against the paper's table verbatim.
"""

from repro.verbs import capability_table

from conftest import record_table


def test_table1(benchmark):
    table = benchmark.pedantic(capability_table, rounds=1, iterations=1)

    rows = []
    for transport in ("RC", "UC", "UD"):
        caps = table[transport]
        mtu = "2GB" if caps["max_msg"] == 2 * 1024 ** 3 else "4KB"
        rows.append([
            transport, mtu,
            "yes" if caps["read"] else "no",
            "yes" if caps["atomic"] else "no",
            "yes" if caps["write"] else "no",
            "yes" if caps["send_recv"] else "no",
            "hw" if caps["reliable"] else "app",
        ])
    record_table(
        "Table 1: transport capabilities (paper Table 1)",
        ["transport", "MTU", "read", "atomic", "write", "send/recv",
         "reliability"],
        rows,
    )

    # The paper's matrix, exactly.
    assert table["RC"] == {"read": True, "atomic": True, "write": True,
                           "send_recv": True, "max_msg": 2 * 1024 ** 3,
                           "reliable": True}
    assert table["UC"] == {"read": False, "atomic": False, "write": True,
                           "send_recv": True, "max_msg": 2 * 1024 ** 3,
                           "reliable": False}
    assert table["UD"] == {"read": False, "atomic": False, "write": False,
                           "send_recv": True, "max_msg": 4096,
                           "reliable": False}
