"""Paper Figs. 16-18: HydraList over FLock vs eRPC.

A single-node index, 22 clients issuing 90% get / 10% scan(64) with
1/4/8 outstanding requests per thread.  Claims: parity (or slight eRPC
edge) at low thread counts, FLock ~1.4x at 32 threads with lower median
and 99p latency for both gets and scans.
"""

import pytest

from repro.harness import IndexBenchConfig, run_erpc_index, run_flock_index

from conftest import record_table

THREADS = [1, 8, 16, 32]
OUTSTANDING = [1, 8]


def config(threads, outstanding):
    return IndexBenchConfig(n_clients=22, threads_per_client=threads,
                            outstanding=outstanding, n_keys=200_000)


def sweep():
    results = {}
    for outstanding in OUTSTANDING:
        for threads in THREADS:
            cfg = config(threads, outstanding)
            results[("flock", outstanding, threads)] = run_flock_index(cfg)
            results[("erpc", outstanding, threads)] = run_erpc_index(cfg)
    return results


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_fig16_17_18_tables(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for outstanding in OUTSTANDING:
        rows = []
        for threads in THREADS:
            flock = results[("flock", outstanding, threads)]
            erpc = results[("erpc", outstanding, threads)]
            rows.append([
                threads,
                round(flock["total_mops"], 2), round(erpc["total_mops"], 2),
                round(flock["get"].median_us, 1),
                round(erpc["get"].median_us, 1),
                round(flock["scan"].p99_us, 1),
                round(erpc["scan"].p99_us, 1),
            ])
        record_table(
            "Figs 16/17/18: HydraList 90%% get / 10%% scan, outstanding=%d"
            % outstanding,
            ["thr/client", "FLock Mops", "eRPC Mops", "FLock get med us",
             "eRPC get med us", "FLock scan p99 us", "eRPC scan p99 us"],
            rows,
        )


def test_low_thread_parity(benchmark, results):
    """Paper: eRPC similar or slightly better up to 8 threads."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for threads in (1, 8):
        flock = results[("flock", 1, threads)]["total_mops"]
        erpc = results[("erpc", 1, threads)]["total_mops"]
        assert flock < 2.5 * erpc and erpc < 2.5 * flock


def test_flock_wins_at_32_threads(benchmark, results):
    """Paper: ~1.4x at 32 threads with multiple outstanding requests."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flock = results[("flock", 8, 32)]["total_mops"]
    erpc = results[("erpc", 8, 32)]["total_mops"]
    assert flock > 1.2 * erpc


def test_latency_lower_at_32_threads(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flock = results[("flock", 8, 32)]
    erpc = results[("erpc", 8, 32)]
    assert flock["get"].median_us < erpc["get"].median_us
    assert flock["get"].p99_us < 1.4 * erpc["get"].p99_us


def test_scans_cost_more_than_gets(benchmark, results):
    """Variable service times: a scan of 64 keys is slower than a get."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for system in ("flock", "erpc"):
        point = results[(system, 1, 8)]
        assert point["scan"].median_us > point["get"].median_us


def test_mix_is_90_10(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    point = results[("flock", 1, 16)]
    gets, scans = point["get"].ops, point["scan"].ops
    assert gets / (gets + scans) == pytest.approx(0.9, abs=0.03)
