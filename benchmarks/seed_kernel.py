"""Frozen pre-refactor simulation kernel (perf-benchmark baseline).

A verbatim snapshot of ``src/repro/sim/core.py`` as it stood before the
kernel fast-path refactor (immediate-ready deque, ``__slots__``, cached
bound callbacks, flattened event allocation), with the two relative
observability imports rewritten to absolute ones so the module loads
from the benchmark suite.  ``benchmarks/test_perf_kernel.py`` runs the
same workloads on this kernel and on the live one and gates the
speedup; nothing else may import this module.  Do not "fix" or optimise
it — its whole value is staying identical to the seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.obs.registry import null_registry
from repro.obs.span import null_span_log

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, bad yields, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party passes ``cause`` to describe why; e.g. the
    sender-side thread scheduler interrupts an application thread when the
    QP it was waiting on gets deactivated.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; it becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, at which point it is placed on the simulator
    heap and its callbacks run when the loop reaches it.  Processes wait on
    events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value of untriggered event")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, firing after ``delay`` ns."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires (immediately if it has)."""
        if self._processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for fn in callbacks:
                fn(self)


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative timeout delay: %r" % delay)
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A generator-based coroutine running in virtual time.

    The wrapped generator yields :class:`Event` objects; the process sleeps
    until each yielded event fires, then resumes with the event's value (or
    with its exception raised inside the generator).  The process itself is
    an event that fires when the generator returns, carrying the return
    value — so processes can wait on each other.
    """

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError("Process requires a generator, got %r" % (gen,))
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick-start at the current time.
        init = Event(sim)
        init.add_callback(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A no-op if the process has already finished.
        """
        if self._triggered:
            return
        waited = self._waiting_on
        if waited is not None and not waited._processed:
            # Detach from the event we were waiting on; it may still fire
            # later but must not resume us twice.
            if waited.callbacks is not None and self._resume in waited.callbacks:
                waited.callbacks.remove(self._resume)
        self._waiting_on = None
        interrupt_ev = Event(self.sim)
        interrupt_ev.add_callback(self._resume)
        interrupt_ev.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if self._triggered:
            # A stale wake-up (e.g. a second interrupt scheduled in the
            # same instant the process finished) must not resume a
            # completed generator.
            return
        self._waiting_on = None
        try:
            if event._exc is not None:
                target = self.gen.throw(event._exc)
            else:
                target = self.gen.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as cancellation.
            self.succeed(None)
            return
        except BaseException as exc:
            if self.sim.strict:
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                "process %r yielded %r (must yield Event)" % (self.name, target)
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _results(self) -> dict:
        return {
            ev: ev._value for ev in self.events if ev._processed and ev._exc is None
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(self._results())


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._results())


class Simulator:
    """The event loop: a heap of (time, seq, event) driving virtual time.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(100)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert sim.now == 100 and proc.value == "done"
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._heap: List[tuple] = []
        self._seq = 0
        self._n_events = 0
        #: Metrics registry consulted by instrumented components at
        #: construction time; :meth:`repro.obs.Telemetry.install` swaps in
        #: a live registry *before* the cluster is built.
        self.metrics = null_registry
        #: Span log for per-RPC/per-message tracing; disabled by default.
        self.spans = null_span_log
        #: Every instrumented component (RNICs, CQs, credit states, ...)
        #: registers itself here at construction so the end-of-run
        #: auditors (:mod:`repro.obs.audit`) can enumerate the system
        #: without the simulation threading references around.
        self.components: List[Any] = []
        #: Heap pops that would move the clock backwards (always 0 with a
        #: correct heap; the monotone-time auditor asserts it).
        self.time_regressions = 0

    # -- scheduling ----------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def event(self) -> Event:
        """A fresh pending event to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process running ``gen``."""
        return Process(self, gen, name)

    def register_component(self, component: Any) -> None:
        """Record an instrumented component for end-of-run auditing."""
        self.components.append(component)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution -----------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Count of events fired so far (for perf/diagnostic reporting)."""
        return self._n_events

    def step(self) -> bool:
        """Fire the next event; returns False when the heap is empty."""
        if not self._heap:
            return False
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            self.time_regressions += 1
        self.now = when
        self._n_events += 1
        event._fire()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or virtual time reaches ``until``.

        When ``until`` is given, the clock is advanced exactly to it even
        if the last event fires earlier.
        """
        if until is None:
            while self.step():
                pass
            return
        if until < self.now:
            raise SimulationError("until=%r is in the past (now=%r)" % (until, self.now))
        heap = self._heap
        while heap and heap[0][0] <= until:
            self.step()
        self.now = until

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` fires; returns its value."""
        while not event._processed:
            if not self.step():
                raise SimulationError(
                    "simulation drained before event fired (deadlock?)"
                )
        return event.value
