"""Extension benchmark: YCSB A/B/C over FLock vs eRPC.

Not a paper figure — the sanity check most readers reach for: a plain
remote key-value service under the standard cloud-serving mixes with
zipfian keys.  The FLock-vs-eRPC gap should mirror the Figs. 6-8 story:
parity at low fan-in is uninteresting, so this runs the high-fan-in
regime where coalescing matters.
"""

import pytest

from repro.baselines import ErpcEndpoint, ErpcServer
from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator, Streams
from repro.workloads import READ, YcsbWorkload

from conftest import record_table

RPC_GET, RPC_PUT = 31, 32
N_CLIENTS = 16
THREADS = 24
N_KEYS = 50_000
WARMUP, MEASURE = 600_000.0, 500_000.0


def _handlers(store):
    def get_handler(request):
        return 64, store.get(request.payload), 150.0

    def put_handler(request):
        key, value = request.payload
        store[key] = value
        return 8, True, 200.0

    return get_handler, put_handler


def run_flock_ycsb(mix):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=N_CLIENTS))
    cfg = FlockConfig(sched_interval_ns=150_000.0,
                      thread_sched_interval_ns=150_000.0)
    store = {k: k for k in range(N_KEYS)}
    server = FlockNode(sim, servers[0], fabric, cfg)
    get_handler, put_handler = _handlers(store)
    server.fl_reg_handler(RPC_GET, get_handler)
    server.fl_reg_handler(RPC_PUT, put_handler)
    streams = Streams(3)
    ops = [0]

    def worker(client, handle, tid, wl):
        while True:
            op, key = wl.next_op()
            if op == READ:
                yield from client.fl_call(handle, tid, RPC_GET, 16, key)
            else:
                yield from client.fl_call(handle, tid, RPC_PUT, 80,
                                          (key, key))
            if sim.now >= WARMUP:
                ops[0] += 1

    for c_idx, node in enumerate(clients):
        client = FlockNode(sim, node, fabric, cfg, seed=c_idx)
        handle = client.fl_connect(server, n_qps=THREADS)
        for tid in range(THREADS):
            wl = YcsbWorkload(mix, N_KEYS,
                              streams.stream("y-%d-%d" % (c_idx, tid)))
            sim.spawn(worker(client, handle, tid, wl))
    sim.run(until=WARMUP + MEASURE)
    return ops[0] / MEASURE * 1e3


def run_erpc_ycsb(mix):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=N_CLIENTS))
    store = {k: k for k in range(N_KEYS)}
    server = ErpcServer(sim, servers[0], fabric)
    get_handler, put_handler = _handlers(store)
    server.register_handler(RPC_GET, get_handler)
    server.register_handler(RPC_PUT, put_handler)
    streams = Streams(3)
    ops = [0]

    def worker(endpoint, server_qp, wl):
        while True:
            op, key = wl.next_op()
            if op == READ:
                response = yield from endpoint.call(server, server_qp,
                                                    RPC_GET, 16, key)
            else:
                response = yield from endpoint.call(server, server_qp,
                                                    RPC_PUT, 80, (key, key))
            if response is not None and sim.now >= WARMUP:
                ops[0] += 1

    idx = 0
    for c_idx, node in enumerate(clients):
        for tid in range(THREADS):
            endpoint = ErpcEndpoint(sim, node, fabric)
            server_qp = server.qp_for_client(idx)
            idx += 1
            wl = YcsbWorkload(mix, N_KEYS,
                              streams.stream("y-%d-%d" % (c_idx, tid)))
            sim.spawn(worker(endpoint, server_qp, wl))
    sim.run(until=WARMUP + MEASURE)
    return ops[0] / MEASURE * 1e3


def test_ycsb_mixes(benchmark):
    def run():
        out = {}
        for mix in ("A", "B", "C"):
            out[mix] = (run_flock_ycsb(mix), run_erpc_ycsb(mix))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[mix, round(flock, 2), round(erpc, 2),
             round(flock / max(erpc, 1e-9), 2)]
            for mix, (flock, erpc) in results.items()]
    record_table(
        "Extension: YCSB A/B/C, zipf 0.99 (%d clients x %d threads)"
        % (N_CLIENTS, THREADS),
        ["mix", "FLock Mops", "eRPC Mops", "ratio"], rows)
    for mix, (flock, erpc) in results.items():
        assert flock > 1.2 * erpc, mix
    # Read-heavier mixes are at least as fast (cheaper handlers).
    assert results["C"][0] >= 0.9 * results["A"][0]
