"""Extension benchmark: N->1 incast on the switched-fabric model.

The paper evaluates FLock on an uncongested testbed; this extension
asks what its design buys once the fabric itself pushes back.  All
12x6x2 = 144 request streams converge on one server egress port with a
shallow (Collie-regime) 10KB buffer.  FLock rides RC — ECN marks become
CNPs, DCQCN paces the shared QPs, the leader holds the doorbell through
the pacing clearance so coalescing *deepens* — and tail drops are
hardware retransmits.  UD (eRPC-style) has no transport-level recovery:
a tail-dropped request is gone until the 5ms RTO, so the synchronized
initial burst permanently silences most workers and the survivors
cannot fill the port.  Acceptance: FLock retains a strictly larger
fraction of its uncongested throughput than UD.
"""

import pytest

from repro.harness import IncastConfig, run_incast, scorecard_incast

from conftest import record_scorecard, record_table


def test_ext_incast(benchmark):
    cfg = IncastConfig()
    results = benchmark.pedantic(
        lambda: run_incast(cfg, audit=True), rounds=1, iterations=1)

    rows = []
    for system in ("flock", "ud"):
        base = results["%s_base" % system]
        cong = results["%s_cong" % system]
        rows.append([system,
                     round(base.mops, 2), round(cong.mops, 2),
                     round(results["%s_retention" % system], 3),
                     cong.extras["switch_drops"], cong.extras["ecn_marks"],
                     cong.extras["pfc_pauses"]])
    record_table(
        "Extension: 12->1 incast, %dB buffer, ECN/DCQCN (RC legs)"
        % cfg.congestion.buffer_bytes,
        ["system", "base Mops", "cong Mops", "retention", "drops",
         "marks", "pauses"], rows)

    sc = scorecard_incast(results)
    record_scorecard(sc)
    assert sc.passed, sc.format()

    flock_cong = results["flock_cong"]
    ud_cong = results["ud_cong"]

    # The headline: FLock degrades less than UD under identical incast.
    assert results["flock_retention"] > results["ud_retention"]

    # Congestion is real in both congested legs: the shared egress port
    # tail-drops, and its queue never exceeds the configured buffer.
    for leg in (flock_cong, ud_cong):
        assert leg.extras["congested"]
        assert leg.extras["switch_drops"] > 0
        assert (leg.extras["peak_port_depth_bytes"]
                <= cfg.congestion.buffer_bytes + 1e-6)

    # FLock's rate control actually engaged: marks became CNPs became
    # per-QP throttles.  UD has no reliable flows, so no CNPs.
    assert flock_cong.extras["ecn_marks"] > 0
    assert flock_cong.extras["cnps"] > 0
    assert flock_cong.extras["throttled_qps"] > 0
    assert ud_cong.extras["cnps"] == 0

    # The baseline legs ran on the legacy uncongested fabric.
    assert not results["flock_base"].extras["congested"]
    assert not results["ud_base"].extras["congested"]
