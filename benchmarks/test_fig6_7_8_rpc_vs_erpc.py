"""Paper Figs. 6, 7, 8: FLock vs eRPC — throughput, median, 99p latency.

Workload per §8.2: 64-byte requests and responses, one server (all
cores), 23 clients, thread count swept, 1/4/8 outstanding requests per
thread.  Headline claims reproduced:

* eRPC saturates on server CPU while FLock keeps scaling with threads
  (overall 1.25-3.4x throughput in the paper);
* eRPC's median latency degrades to >=2x FLock's at 32 threads;
* FLock's tail stays lower at high fan-in.
"""

import pytest

from repro.harness import MicrobenchConfig, run_erpc, run_flock, scorecards_fig6_7_8

from conftest import record_scorecard, record_table

THREADS = [1, 4, 8, 16, 32, 48]
OUTSTANDING = [1, 4, 8]


def sweep():
    results = {}
    for outstanding in OUTSTANDING:
        for threads in THREADS:
            cfg = MicrobenchConfig(n_clients=23, threads_per_client=threads,
                                   outstanding=outstanding)
            results[("flock", outstanding, threads)] = run_flock(cfg)
            results[("erpc", outstanding, threads)] = run_erpc(cfg)
    return results


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_fig6_7_8_tables(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for outstanding in OUTSTANDING:
        rows = []
        for threads in THREADS:
            flock = results[("flock", outstanding, threads)]
            erpc = results[("erpc", outstanding, threads)]
            rows.append([
                threads,
                round(flock.mops, 2), round(erpc.mops, 2),
                round(flock.median_us, 1), round(erpc.median_us, 1),
                round(flock.p99_us, 1), round(erpc.p99_us, 1),
                flock.extras["mean_coalescing_degree"],
            ])
        record_table(
            "Figs 6/7/8: FLock vs eRPC, outstanding=%d (64B RPCs, 23 clients)"
            % outstanding,
            ["thr/client", "FLock Mops", "eRPC Mops", "FLock med us",
             "eRPC med us", "FLock p99 us", "eRPC p99 us", "coalesce deg"],
            rows,
        )
    for scorecard in scorecards_fig6_7_8(results):
        record_scorecard(scorecard)


def test_fig6_throughput_claims(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # eRPC saturates: its 48-thread throughput is barely above 16-thread.
    for outstanding in OUTSTANDING:
        erpc16 = results[("erpc", outstanding, 16)].mops
        erpc48 = results[("erpc", outstanding, 48)].mops
        assert erpc48 < 1.2 * erpc16
    # FLock keeps scaling 16 -> 48 threads (paper: +25% and +47% steps).
    flock16 = results[("flock", 1, 16)].mops
    flock48 = results[("flock", 1, 48)].mops
    assert flock48 > 1.3 * flock16
    # Overall win in the paper's 1.25x-3.4x band (we accept >= 1.2x).
    for outstanding in OUTSTANDING:
        for threads in (16, 32, 48):
            flock = results[("flock", outstanding, threads)].mops
            erpc = results[("erpc", outstanding, threads)].mops
            assert flock > 1.2 * erpc, (outstanding, threads)


def test_fig6_low_thread_parity(benchmark, results):
    """Paper: comparable performance up to four threads (1 outstanding)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for threads in (1, 4):
        flock = results[("flock", 1, threads)].mops
        erpc = results[("erpc", 1, threads)].mops
        assert flock < 2.5 * erpc  # same ballpark, no blowout either way


def test_fig7_median_latency_claims(benchmark, results):
    """Paper: ~2x worse eRPC median at 32 threads."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flock = results[("flock", 1, 32)]
    erpc = results[("erpc", 1, 32)]
    assert erpc.median_us > 1.6 * flock.median_us


def test_fig8_tail_latency_claims(benchmark, results):
    """Paper: ~1.5x worse eRPC 99th percentile at 32 threads."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flock = results[("flock", 1, 32)]
    erpc = results[("erpc", 1, 32)]
    assert erpc.p99_us > 1.2 * flock.p99_us


def test_outstanding_requests_tradeoff(benchmark, results):
    """Paper §8.2: more outstanding requests raise FLock throughput at
    low thread counts at the cost of latency."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    low1 = results[("flock", 1, 4)]
    low8 = results[("flock", 8, 4)]
    assert low8.mops > low1.mops
    assert low8.median_us > low1.median_us
