"""Extension benchmark: search-discovered anomaly scenarios as gates.

The adversarial scenario search (``docs/search.md``) hunts the
workload/config space for points that maximize an anomaly objective;
the best finds are frozen in ``repro.search.scenarios`` and re-run here
exactly as the search evaluated them (same seed derivation, both legs,
traced).  Committing their scorecards as baselines turns every found
cliff into a permanent regression gate: a change that silently heals or
deepens the pathology — or moves its critical-path explanation to a
different resource — trips bench-compare.
"""

import pytest

from repro.harness.scorecards import scorecard_search
from repro.search.report import explain_entry
from repro.search.scenarios import CURATED_SCENARIOS

from conftest import record_scorecard, record_table


@pytest.mark.parametrize("name", sorted(CURATED_SCENARIOS))
def test_ext_search_scenario(benchmark, name):
    scenario = CURATED_SCENARIOS[name]
    detail = benchmark.pedantic(
        lambda: explain_entry({"point": scenario.point, "score": 0.0},
                              seed=scenario.seed),
        rounds=1, iterations=1)

    base, cong = detail["baseline"], detail["scenario"]
    record_table(
        "Search scenario %s (objective %s, seed %d)"
        % (name, scenario.objective, scenario.seed),
        ["leg", "Mops", "p50 us", "p99 us", "drops", "marks", "pauses"],
        [["base", base["mops"], base["median_us"], base["p99_us"],
          0, 0, 0],
         ["cong", cong["mops"], cong["median_us"], cong["p99_us"],
          cong.get("switch_drops", 0), cong.get("ecn_marks", 0),
          cong.get("pfc_pauses", 0)]])

    sc = scorecard_search(
        name, detail,
        objective=scenario.objective,
        description=scenario.description,
        expected_top_resource=scenario.expected_top_resource,
        expect_anomaly_records=scenario.expect_anomaly_records,
        max_goodput_retained=scenario.max_goodput_retained)
    record_scorecard(sc)
    assert sc.passed, sc.format()

    # The pathology is real: the congested leg collapsed and the
    # explanation is non-trivial (some resource gained >= 5% share).
    if scenario.max_goodput_retained is not None:
        assert detail["goodput_retained"] <= scenario.max_goodput_retained
    assert detail["shift"] and detail["shift"][0]["delta"] >= 0.05
    if scenario.expected_top_resource is not None:
        gainers = [row["resource"] for row in detail["shift"][:3]
                   if row["delta"] >= 0.05]
        assert scenario.expected_top_resource in gainers
