"""Paper Fig. 15: Smallbank transactions — FLockTX vs FaSST.

Write-intensive (85% of transactions update keys) with 3-way
replication, so every committed writer crosses the network for logging
and commit.  Claims: similar throughput up to 2 threads; FLockTX up to
+24%/+88% at 4/8 threads; FaSST's tail is worse even at one thread
(paper: 178 vs 126 us).
"""

import pytest

from repro.harness import TxnBenchConfig, run_fasst_txn, run_flocktx, scorecard_fig15

from conftest import record_scorecard, record_table

THREADS = [1, 2, 4, 8, 16]


def config(threads):
    return TxnBenchConfig(workload="smallbank", n_clients=20, n_servers=3,
                          threads_per_client=threads,
                          coroutines_per_thread=19,
                          accounts_per_thread=10_000)


def sweep():
    results = {}
    for threads in THREADS:
        cfg = config(threads)
        results[("flocktx", threads)] = run_flocktx(cfg)
        results[("fasst", threads)] = run_fasst_txn(cfg)
    return results


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_fig15_table(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for threads in THREADS:
        flock = results[("flocktx", threads)]
        fasst = results[("fasst", threads)]
        rows.append([
            threads,
            round(flock.mops, 3), round(fasst.mops, 3),
            round(flock.median_us, 1), round(fasst.median_us, 1),
            round(flock.p99_us, 1), round(fasst.p99_us, 1),
            flock.extras["abort_rate"],
        ])
    record_table(
        "Fig 15: Smallbank (Mtxn/s), FLockTX vs FaSST",
        ["thr/client", "FLockTX Mtxn/s", "FaSST Mtxn/s", "FLockTX med us",
         "FaSST med us", "FLockTX p99 us", "FaSST p99 us",
         "FLockTX abort rate"],
        rows,
    )
    record_scorecard(scorecard_fig15(results))


def test_flocktx_wins_at_high_threads(benchmark, results):
    """Paper: up to +24% at 4 threads, +88% at 8 (we assert >= +15%)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for threads in (4, 8):
        flock = results[("flocktx", threads)].mops
        fasst = results[("fasst", threads)].mops
        assert flock > 1.15 * fasst, threads


def test_fasst_tail_worse_even_at_one_thread(benchmark, results):
    """Paper: 178 us vs 126 us p99 at a single thread."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flock = results[("flocktx", 1)]
    fasst = results[("fasst", 1)]
    assert fasst.p99_us > flock.p99_us


def test_write_intensity_costs_throughput(benchmark, results):
    """Smallbank commits replicate 3-way: per-thread throughput should
    be well below TATP's read-mostly numbers at same scale."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flock8 = results[("flocktx", 8)]
    assert flock8.extras["committed"] > 0
    # A committed write transaction needed >= 4 RPC round trips.
    assert flock8.median_us > 4.0


def test_both_systems_commit_under_contention(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key, result in results.items():
        assert result.extras["committed"] > 0, key
