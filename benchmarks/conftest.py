"""Benchmark-suite plumbing.

Every benchmark registers the paper-style table it regenerated via
:func:`record_table`; the tables are printed in the terminal summary (so
they survive pytest's output capture and land in ``bench_output.txt``)
and merged into ``benchmarks/results.txt`` for EXPERIMENTS.md.  Sections
are keyed by table title, so re-running a single figure refreshes its
section without discarding the others.

Figure benchmarks additionally emit paper-fidelity scorecards via
:func:`record_scorecard`; those land as ``BENCH_<figure>.json`` files in
``benchmarks/scorecards`` (override with ``REPRO_SCORECARD_DIR``) and
can be diffed against the committed ``benchmarks/baselines`` with
``python -m repro.harness.cli bench-compare``.

The invariant auditors run on every ``test_fig*`` benchmark (the
``REPRO_AUDIT`` environment variable is forced on for those modules), so
a figure whose bookkeeping drifts fails even when its headline numbers
still look plausible.

Every bench session that produced scorecards is also appended to the
run-history store (``repro.obs.runstore``) with its git context, so
``python -m repro.harness.cli runs list`` / ``runs diff`` can navigate
and compare past sessions.  Set ``REPRO_RUNSTORE=0`` to opt out;
``REPRO_RUNSTORE_DIR`` relocates the store.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import pytest

from repro.config import resolved_fidelity_mode
from repro.harness import bench_scale, format_table
from repro.obs.audit import AUDIT_ENV
from repro.obs.runstore import RunStore

_TABLES: Dict[str, str] = {}
_SCORECARDS: List[object] = []

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
SCORECARD_DIR = os.environ.get(
    "REPRO_SCORECARD_DIR",
    os.path.join(os.path.dirname(__file__), "scorecards"))


def record_table(title: str, columns: Sequence[str], rows) -> str:
    """Register a reproduced paper table for the terminal summary."""
    text = format_table(title, columns, rows)
    _TABLES[text.splitlines()[0]] = text
    return text


def record_scorecard(scorecard) -> None:
    """Register a figure's ``BENCH_*.json`` scorecard for writing."""
    scorecard.meta.setdefault("bench_scale", bench_scale())
    scorecard.meta.setdefault("fidelity", resolved_fidelity_mode())
    _SCORECARDS.append(scorecard)


@pytest.fixture(autouse=True)
def _audit_fig_benchmarks(request, monkeypatch):
    """Force the end-of-run auditors on for every figure benchmark.

    Only ``test_fig*`` modules opt in: the perf-guard benchmark measures
    null-instrumentation overhead and must not pay for auditing.
    """
    module_name = getattr(request.module, "__name__", "")
    if module_name.rpartition(".")[2].startswith("test_fig"):
        monkeypatch.setenv(AUDIT_ENV, "1")


def _merge_results(tables: Dict[str, str]) -> str:
    """Merge new tables into ``results.txt``, keyed by title line.

    Sections already on disk keep their position (refreshed in place
    when regenerated); new sections are appended.  This lets a single
    re-run of one figure update its table without wiping the rest.
    """
    sections: List[str] = []
    titles: Dict[str, int] = {}
    try:
        with open(RESULTS_PATH) as fh:
            existing = fh.read()
    except OSError:
        existing = ""
    for chunk in existing.split("\n\n"):
        chunk = chunk.strip("\n")
        if not chunk:
            continue
        titles[chunk.splitlines()[0]] = len(sections)
        sections.append(chunk)
    for title, text in tables.items():
        text = text.strip("\n")
        if title in titles:
            sections[titles[title]] = text
        else:
            titles[title] = len(sections)
            sections.append(text)
    return "\n\n".join(sections) + "\n"


def _record_run(terminalreporter) -> None:
    """Append this bench session to the run-history store.

    Best-effort by design: history is a convenience, and a read-only
    filesystem or exotic CI sandbox must never fail the benchmarks
    themselves.
    """
    if os.environ.get("REPRO_RUNSTORE", "1") == "0":
        return
    try:
        rec = RunStore().record(
            _SCORECARDS, label="bench@%s" % bench_scale(),
            meta={"source": "pytest-benchmarks"})
        terminalreporter.write_line(
            "run store: recorded run %d (%d figure(s), config %s)"
            % (rec.run_id, len(rec.figures), rec.fingerprint))
    except OSError as exc:  # pragma: no cover - depends on host fs
        terminalreporter.write_line("run store: not recorded (%s)" % exc)


def pytest_terminal_summary(terminalreporter):
    if _SCORECARDS:
        os.makedirs(SCORECARD_DIR, exist_ok=True)
        terminalreporter.write_line("")
        for scorecard in _SCORECARDS:
            path = scorecard.write(SCORECARD_DIR)
            terminalreporter.write_line(
                "scorecard %s: %s (%s)"
                % (scorecard.figure, path,
                   "PASS" if scorecard.passed else "FAIL"))
        _record_run(terminalreporter)
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 70)
    terminalreporter.write_line("Reproduced paper tables/figures")
    terminalreporter.write_line("=" * 70)
    for text in _TABLES.values():
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    merged = _merge_results(_TABLES)
    with open(RESULTS_PATH, "w") as fh:
        fh.write(merged)
