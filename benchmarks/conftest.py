"""Benchmark-suite plumbing.

Every benchmark registers the paper-style table it regenerated via
:func:`record_table`; the tables are printed in the terminal summary (so
they survive pytest's output capture and land in ``bench_output.txt``)
and appended to ``benchmarks/results.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import List, Sequence

from repro.harness import format_table

_TABLES: List[str] = []

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def record_table(title: str, columns: Sequence[str], rows) -> str:
    text = format_table(title, columns, rows)
    _TABLES.append(text)
    return text


def pytest_sessionstart(session):
    try:
        os.remove(RESULTS_PATH)
    except OSError:
        pass


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 70)
    terminalreporter.write_line("Reproduced paper tables/figures")
    terminalreporter.write_line("=" * 70)
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    with open(RESULTS_PATH, "a") as fh:
        fh.write("\n\n".join(_TABLES) + "\n")
