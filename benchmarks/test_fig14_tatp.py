"""Paper Fig. 14: TATP transactions — FLockTX vs FaSST.

3 servers (3-way replication), 20 clients, 19 submit coroutines per
thread, read-intensive TATP mix.  Claims: FaSST is competitive at low
thread counts but saturates; FLockTX reaches ~1.9x/2.4x FaSST at 8/16
threads with much lower tail latency; FaSST suffers packet loss at high
thread counts (the paper omits its 32-thread numbers for that reason).
"""

import pytest

from repro.harness import TxnBenchConfig, run_fasst_txn, run_flocktx, scorecard_fig14

from conftest import record_scorecard, record_table

THREADS = [1, 2, 4, 8, 16]


def config(threads):
    return TxnBenchConfig(workload="tatp", n_clients=20, n_servers=3,
                          threads_per_client=threads,
                          coroutines_per_thread=19,
                          subscribers_per_server=30_000)


def sweep():
    results = {}
    for threads in THREADS:
        cfg = config(threads)
        results[("flocktx", threads)] = run_flocktx(cfg)
        results[("fasst", threads)] = run_fasst_txn(cfg)
    return results


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_fig14_table(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for threads in THREADS:
        flock = results[("flocktx", threads)]
        fasst = results[("fasst", threads)]
        rows.append([
            threads,
            round(flock.mops, 3), round(fasst.mops, 3),
            round(flock.median_us, 1), round(fasst.median_us, 1),
            round(flock.p99_us, 1), round(fasst.p99_us, 1),
            fasst.extras["lost"],
        ])
    record_table(
        "Fig 14: TATP (Mtxn/s), FLockTX vs FaSST (20 clients, 3 servers)",
        ["thr/client", "FLockTX Mtxn/s", "FaSST Mtxn/s", "FLockTX med us",
         "FaSST med us", "FLockTX p99 us", "FaSST p99 us", "FaSST losses"],
        rows,
    )
    record_scorecard(scorecard_fig14(results))


def test_flocktx_keeps_scaling(benchmark, results):
    """Paper: FLock's throughput increases with more threads and stays
    ahead of FaSST at scale.  (Our FaSST model keeps a constant load per
    server core, so it scales with its worker count instead of
    flat-lining — the paper's early saturation came from effects beyond
    the per-core CPU tax; the FLock-vs-FaSST gap is what reproduces.)"""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flock = {t: results[("flocktx", t)].mops for t in THREADS}
    fasst = {t: results[("fasst", t)].mops for t in THREADS}
    assert flock[16] > 1.5 * flock[2]
    assert flock[16] > fasst[16]


def test_flocktx_beats_fasst_at_high_threads(benchmark, results):
    """Paper: ~1.9x at 8 threads and ~2.4x at 16 (we assert >= 1.4x)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for threads in (8, 16):
        flock = results[("flocktx", threads)].mops
        fasst = results[("fasst", threads)].mops
        assert flock > 1.4 * fasst, threads


def test_flocktx_tail_latency_lower_at_high_threads(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flock = results[("flocktx", 16)]
    fasst = results[("fasst", 16)]
    assert flock.p99_us < fasst.p99_us


def test_transactions_actually_commit(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key, result in results.items():
        assert result.extras["committed"] > 0, key
        assert result.extras["abort_rate"] < 0.2, key
