"""Kernel microbenchmark: the fast-path refactor, regression-gated.

Runs three pure-kernel workloads — zero-delay dispatch, completion
chains, and positive-delay timers — on the live kernel and on the
frozen pre-refactor snapshot (:mod:`seed_kernel`), plus one small
component-level run with observability on and off.  The headline
contract is the zero-delay workload: CQ completions, credit returns,
and same-tick wakeups are the dominant event class in every figure, and
the ready-deque fast path must keep them **≥ 2× the seed kernel's
events/sec**.  The other ratios and the instrumented overhead are gated
through the bench store (``BENCH_kernel.json``) like the figures.

Measurement notes: trials interleave seed and live kernels and take the
best of several rounds, which cancels most frequency drift; ratios are
far stabler than absolute events/sec, so absolutes are recorded as
``info`` metrics while only the ratios gate (with wide tolerances —
these are wall-clock numbers, unlike the virtual-time figures).
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import seed_kernel

from repro.harness import MicrobenchConfig, bench_scale, run_flock
from repro.obs import Scorecard, SimProfile, Telemetry
from repro.sim import Simulator

from conftest import record_scorecard, record_table

#: Events per workload trial; scaled down with REPRO_BENCH_SCALE so the
#: CI smoke lane stays cheap (ratios survive scaling, absolutes do not,
#: and the bench store already skips cross-scale comparisons).
EVENTS = max(20_000, int(300_000 * bench_scale()))
ROUNDS = 4


def _zero_delay(sim, n):
    """The fast-path workload: every yield is a same-tick trigger."""
    def proc():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(0.0)
    sim.spawn(proc())


def _completions(sim, n):
    """Event allocation + succeed + wait, the CQ/credit idiom."""
    def proc():
        event = sim.event
        for i in range(n):
            ev = event()
            ev.succeed(i)
            yield ev
    sim.spawn(proc())


def _timers(sim, n):
    """Positive delays: the heap still pays, but less per entry."""
    def proc():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(10.0)
    sim.spawn(proc())


WORKLOADS = [
    ("zero_delay", _zero_delay),
    ("completions", _completions),
    ("timers", _timers),
]


def _events_per_sec(sim_cls, workload, n):
    sim = sim_cls()
    workload(sim, n)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert sim.events_processed >= n
    return sim.events_processed / elapsed


def _best_of(sim_cls, workload):
    return max(_events_per_sec(sim_cls, workload, EVENTS)
               for _ in range(ROUNDS))


def _interleaved_speedups():
    """Best-of events/sec per kernel, seed/live trials interleaved."""
    rates = {}
    for name, workload in WORKLOADS:
        best_seed = best_live = 0.0
        for _ in range(ROUNDS):
            best_seed = max(best_seed, _events_per_sec(
                seed_kernel.Simulator, workload, EVENTS))
            best_live = max(best_live, _events_per_sec(
                Simulator, workload, EVENTS))
        rates[name] = (best_seed, best_live)
    return rates


OBS_CFG = dict(n_clients=3, threads_per_client=8, outstanding=2)


def _obs_overhead():
    """Full-stack events/sec with telemetry off vs on (best-of)."""
    best_off = best_on = 0.0
    for _ in range(ROUNDS):
        for telemetry, tag in ((None, "off"), (Telemetry(), "on")):
            t0 = time.perf_counter()
            result = run_flock(MicrobenchConfig(**OBS_CFG),
                               telemetry=telemetry)
            rate = result.extras["events"] / (time.perf_counter() - t0)
            if tag == "off":
                best_off = max(best_off, rate)
            else:
                best_on = max(best_on, rate)
    return best_off, best_on


def _events_per_sec_profiled(workload, n):
    """One trial through ``run_profiled`` with a live SimProfile."""
    sim = Simulator()
    workload(sim, n)
    prof = SimProfile(0.0, 1.0, n_windows=1)
    t0 = time.perf_counter()
    sim.run_profiled(prof)
    elapsed = time.perf_counter() - t0
    assert sim.events_processed >= n
    assert prof.total_dispatched == sim.events_processed
    return sim.events_processed / elapsed


def _profiled_overhead():
    """Plain vs profiled kernel loop on zero-delay dispatch (best-of,
    interleaved).  This is the *opt-in* cost of the cost observatory:
    two perf_counter_ns calls plus one memoized dict hit per event."""
    best_off = best_on = 0.0
    for _ in range(ROUNDS):
        best_off = max(best_off,
                       _events_per_sec(Simulator, _zero_delay, EVENTS))
        best_on = max(best_on,
                      _events_per_sec_profiled(_zero_delay, EVENTS))
    return best_off, best_on


def test_kernel_fast_path(benchmark):
    rates = benchmark.pedantic(_interleaved_speedups,
                               rounds=1, iterations=1)
    obs_off, obs_on = _obs_overhead()
    overhead = obs_off / obs_on
    prof_off, prof_on = _profiled_overhead()
    prof_overhead = prof_off / prof_on

    rows = [[name, round(seed_r / 1e3), round(live_r / 1e3),
             round(live_r / seed_r, 2)]
            for name, (seed_r, live_r) in rates.items()]
    rows.append(["obs on (full stack)", round(obs_off / 1e3),
                 round(obs_on / 1e3), round(obs_on / obs_off, 2)])
    rows.append(["run_profiled (zero delay)", round(prof_off / 1e3),
                 round(prof_on / 1e3), round(prof_on / prof_off, 2)])
    record_table("Kernel microbench: events/sec, seed vs fast path",
                 ["workload", "seed kev/s", "live kev/s", "ratio"], rows)

    sc = Scorecard(figure="kernel", title="DES kernel fast path")
    for name, (seed_r, live_r) in rates.items():
        speedup = live_r / seed_r
        # Wall-clock ratios: wide tolerances, machine-to-machine noise
        # is real.  Absolute rates are informational only.
        sc.add_metric("speedup_" + name, speedup, better="higher",
                      rtol=0.30, unit="x")
        sc.add_metric("events_per_sec_" + name, live_r, better="info",
                      unit="ev/s")
    sc.add_metric("obs_on_overhead", overhead, better="lower",
                  rtol=0.60, unit="x")
    sc.add_metric("profiled_overhead", prof_overhead, better="lower",
                  rtol=0.60, unit="x")
    sc.add_metric("events_per_sec_profiled", prof_on, better="info",
                  unit="ev/s")
    sc.add_check("zero_delay_speedup_over_2x",
                 rates["zero_delay"][1] >= 2.0 * rates["zero_delay"][0],
                 "ready-deque dispatch must double the seed kernel")
    record_scorecard(sc)

    # The acceptance gate: same-tick dispatch at ≥2× the seed kernel.
    seed_r, live_r = rates["zero_delay"]
    assert live_r >= 2.0 * seed_r, (
        "zero-delay fast path only %.2fx the seed kernel"
        % (live_r / seed_r))
    # Secondary wins, asserted with slack below their measured ~1.6x /
    # ~1.5x so machine variance does not flake the suite.
    seed_r, live_r = rates["completions"]
    assert live_r >= 1.25 * seed_r
    seed_r, live_r = rates["timers"]
    assert live_r >= 1.15 * seed_r
    # Instrumentation is opt-in; when it is on, the whole point of the
    # hoisting is that the overhead stays bounded.
    assert overhead < 3.0, "telemetry costs %.2fx" % overhead
    # run_profiled brackets every dispatch with perf_counter_ns and
    # classifies the callback; on the worst case (zero-delay, where the
    # loop body is tiny) that measures ~3.5x, and figure runs — whose
    # per-event work dwarfs the bracketing — pay far less.  Gate the
    # ceiling so the instrumented loop never grows pathological.
    assert prof_overhead < 6.0, (
        "run_profiled costs %.2fx on zero-delay" % prof_overhead)
