"""Paper Fig. 12: node scalability with increasing client processes.

One server, 23 client nodes spawning 1..16 processes each (up to 368
clients).  Three configurations, as in §8.4:

* ``1 thrd/1 QP`` — FLock worst case: one thread per process, no
  coalescing possible;
* ``2 thrds/1 QP`` — FLock sharing one QP between the two threads;
* ``2 thrds/2 QPs`` — native RC: a dedicated QP per thread, no FLock
  machinery (the no-sharing baseline).

Claims: the shared-QP config beats dedicated QPs by 10-30% between 46
and 368 clients while using half the QPs.
"""

import pytest

from repro.harness import MicrobenchConfig, run_flock, run_rc, scorecard_fig12

from conftest import record_scorecard, record_table

CLIENT_COUNTS = [23, 46, 92, 184, 368]
N_NODES = 23


def config(total_clients, threads):
    return MicrobenchConfig(
        n_clients=N_NODES,
        processes_per_client=max(1, total_clients // N_NODES),
        threads_per_client=threads,
        outstanding=8,
    )


def sweep():
    results = {}
    for total in CLIENT_COUNTS:
        results[("1t1q", total)] = run_flock(config(total, 1),
                                             qps_per_process=1)
        results[("2t1q", total)] = run_flock(config(total, 2),
                                             qps_per_process=1)
        cfg = config(total, 2)
        # Native RC: one dedicated QP per thread across all processes.
        cfg.threads_per_client = 2 * cfg.processes_per_client
        cfg.processes_per_client = 1
        results[("2t2q", total)] = run_rc(cfg, threads_per_qp=1)
    return results


@pytest.fixture(scope="module")
def results():
    return sweep()


def test_fig12_table(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for total in CLIENT_COUNTS:
        one = results[("1t1q", total)]
        shared = results[("2t1q", total)]
        dedicated = results[("2t2q", total)]
        rows.append([
            total,
            round(one.mops, 2), round(shared.mops, 2),
            round(dedicated.mops, 2),
            round(shared.median_us, 1), round(dedicated.median_us, 1),
            round(shared.p99_us, 1), round(dedicated.p99_us, 1),
        ])
    record_table(
        "Fig 12: node scalability (64B RPC, 8 outstanding)",
        ["#clients", "1t/1QP Mops", "2t/1QP Mops", "2t/2QP Mops",
         "2t/1QP med us", "2t/2QP med us", "2t/1QP p99 us",
         "2t/2QP p99 us"],
        rows,
    )
    record_scorecard(scorecard_fig12(results))


def test_single_thread_saturates(benchmark, results):
    """Paper: 1 thrd/1 QP throughput saturates by mid client counts —
    no coalescing means no further scaling."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mid = results[("1t1q", 92)].mops
    top = results[("1t1q", 368)].mops
    assert top < 1.35 * mid


def test_shared_qp_beats_dedicated_qps(benchmark, results):
    """Paper: 2t/1QP beats 2t/2QP by 10-30% between 46 and 368 clients
    while using half the QPs."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    wins = 0
    for total in (92, 184, 368):
        shared = results[("2t1q", total)].mops
        dedicated = results[("2t2q", total)].mops
        if shared > 1.05 * dedicated:
            wins += 1
    assert wins >= 2


def test_shared_qp_latency_no_worse(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for total in (184, 368):
        shared = results[("2t1q", total)]
        dedicated = results[("2t2q", total)]
        assert shared.p99_us < 1.3 * dedicated.p99_us
