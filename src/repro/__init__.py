"""FLock (SOSP 2021) reproduction.

A discrete-event simulation of the full RDMA stack — RNIC with finite
connection caches, RC/UC/UD verbs, a 100 Gbps fabric — with FLock (shared
reliable connections via combining-based synchronization and symbiotic
send-recv scheduling), the paper's baselines (eRPC, FaSST, FaRM-style
sharing), and its applications (FLockTX distributed transactions and a
HydraList index).

Quick start::

    from repro.sim import Simulator
    from repro.config import ClusterConfig
    from repro.net import build_cluster
    from repro.flock import FlockNode

    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=1))
    server = FlockNode(sim, servers[0], fabric)
    client = FlockNode(sim, clients[0], fabric)
    server.fl_reg_handler(1, lambda req: (64, req.payload, 100.0))
    handle = client.fl_connect(server, n_qps=4)

    def app(thread_id):
        response = yield from client.fl_call(handle, thread_id, 1, 64, "hi")
        print(response.payload)

    sim.spawn(app(0))
    sim.run()
"""

__version__ = "1.0.0"

from . import config, sim

__all__ = ["config", "sim", "__version__"]
