"""Queue pairs: the verbs execution engine.

A :class:`QueuePair` ties together a node, its RNIC, and the fabric, and
implements the semantics of every verb in Table 1:

* two-sided ``send``/``recv`` (all transports) — consumes a posted
  receive buffer at the target and generates a receive completion;
* one-sided ``write``/``write_imm``/``read`` (RC, write also UC) —
  executed by the *remote RNIC* with no remote CPU;
* atomics ``fetch_add``/``cmp_swap`` (RC) — executed by the remote RNIC,
  serialized per 8-byte address.

Timing: every verb pays source-NIC processing + wire + propagation +
destination-NIC processing via :class:`repro.net.Fabric`.  Reliable (RC)
initiator completions arrive after the hardware ACK (one extra
propagation); UD completions arrive at local TX time.  Completions are
DMA-ed to a CQ only when the WR is signaled (§7).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..hw.memory import AccessError, MemoryRegion
from ..net.fabric import Fabric, Node
from ..obs import faults
from ..sim import Event, Resource, Simulator, Store
from .cq import CompletionQueue
from .transport import Transport, Verb, max_message_size, supports
from .wr import Completion, WcStatus, WorkRequest

__all__ = ["QueuePair", "VerbError"]

#: Wire size of a read/atomic request (header-only on the request path).
_REQUEST_HEADER_BYTES = 28
#: Wire size of an ACK/atomic response frame.
_ACK_BYTES = 12


class VerbError(Exception):
    """Posting a verb the transport does not support, or misuse."""


def _atomic_lock(node: Node, sim: Simulator, rkey: int, addr: int) -> Resource:
    """Per-(region, address) serialization point for remote atomics."""
    locks = getattr(node, "_atomic_locks", None)
    if locks is None:
        locks = {}
        node._atomic_locks = locks
    key = (rkey, addr)
    lock = locks.get(key)
    if lock is None:
        lock = Resource(sim, 1)
        locks[key] = lock
    return lock


class QueuePair:
    """One send/recv queue pair on a node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        fabric: Fabric,
        transport: Transport,
        send_cq: Optional[CompletionQueue] = None,
        recv_cq: Optional[CompletionQueue] = None,
    ):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.transport = transport
        self.qpn = node.alloc_qpn()
        # Note: CQs define __len__, so test identity rather than truth.
        self.send_cq = send_cq if send_cq is not None else CompletionQueue(sim, name="scq")
        self.recv_cq = recv_cq if recv_cq is not None else CompletionQueue(sim, name="rcq")
        self.remote: Optional["QueuePair"] = None
        #: Posted receive buffers (their byte capacities).
        self.recv_buffers = Store(sim)
        self.recv_drops = 0
        self.sends_posted = 0
        self.sends_completed = 0
        self.destroyed = False
        self._obs = sim.instrumented
        self._trace = sim.spans.enabled
        metrics = sim.metrics
        self._m_wrs = metrics.counter("verbs.wrs_posted")
        self._m_signaled = metrics.counter("verbs.wrs_signaled")
        self._m_recv_drops = metrics.counter("verbs.recv_drops")
        sim.register_component(self)

    # -- connection management ------------------------------------------

    def connect(self, peer: "QueuePair") -> None:
        """Connect both directions (RC/UC only; UD is connectionless)."""
        if not self.transport.connected:
            raise VerbError("UD QPs are connectionless")
        if peer.transport is not self.transport:
            raise VerbError("transport mismatch: %s vs %s"
                            % (self.transport, peer.transport))
        if self.remote is not None or peer.remote is not None:
            raise VerbError("QP already connected")
        self.remote = peer
        peer.remote = self

    def destroy(self) -> None:
        """Tear down; also invalidates the cached context in both NICs."""
        self.destroyed = True
        self.node.rnic.qp_cache.invalidate(("qp", self.qpn))
        if self.remote is not None:
            self.remote.remote = None
            self.remote = None

    # -- receive path -----------------------------------------------------

    def post_recv(self, length: int = 4096, n: int = 1) -> None:
        """Post ``n`` receive buffers of ``length`` bytes each."""
        if n < 1:
            raise ValueError("n must be >= 1")
        for _ in range(n):
            self.recv_buffers.try_put(length)

    @property
    def recv_posted(self) -> int:
        return len(self.recv_buffers)

    # -- send path ----------------------------------------------------------

    def post_send(self, wr: WorkRequest, remote: Optional["QueuePair"] = None) -> Event:
        """Submit a work request; returns the initiator-completion event.

        The event fires when the operation completes *at the initiator*
        (TX done for UD, ACK/data returned for RC) with the
        :class:`Completion`.  A CQE is additionally pushed to ``send_cq``
        iff ``wr.signaled`` — callers model selective signaling by
        clearing the flag.

        ``remote`` addresses the target for UD sends; RC/UC use the
        connected peer.
        """
        if self.destroyed:
            raise VerbError("QP destroyed")
        if not supports(self.transport, wr.verb):
            raise VerbError("%s does not support %s (Table 1)"
                            % (self.transport.value, wr.verb.value))
        if wr.length > max_message_size(self.transport):
            raise VerbError(
                "message of %d bytes exceeds %s limit %d"
                % (wr.length, self.transport.value, max_message_size(self.transport))
            )
        if self.transport.connected:
            if remote is not None and remote is not self.remote:
                raise VerbError("connected QP cannot address arbitrary peers")
            target = self.remote
            if target is None:
                raise VerbError("QP not connected")
        else:
            target = remote
            if target is None:
                raise VerbError("UD send requires a remote QP")
        self.sends_posted += 1
        if self._obs:
            self._m_wrs.inc()
            if wr.signaled:
                self._m_signaled.inc()
        if wr.span is None and self._trace:
            # No upper layer attached a span: trace this WR on its own
            # (raw verbs paths — Fig. 2a reads, baseline RPCs).
            wr.span = self.sim.spans.begin(
                "wr.%s" % wr.verb.value, track="hw:%s" % self.node.name,
                t=self.sim.now, bytes=wr.length, qpn=self.qpn)
        done = self.sim.event()
        self.sim.spawn(self._execute(wr, target, done), name="verb")
        return done

    # -- verb execution -------------------------------------------------------

    def _push_send_cqe(self, wr: WorkRequest, wc: Completion) -> None:
        if wr.signaled:
            if wc.span is None:
                # Let the CQ blame reap delay on the traced work
                # (``cq_poll`` wait edges).
                wc.span = wr.span
            if not (faults.ACTIVE and "verbs.leak_cqe" in faults.ACTIVE):
                self.send_cq.push(wc)
            rnic = self.node.rnic
            rnic.cqes_generated += 1
            if rnic._obs:
                rnic._m_cqes.inc()

    def _congestion_gate(self, wr: WorkRequest) -> Generator[Event, None, None]:
        """DCQCN pacing for RC flows under the switched-fabric model.

        After the flow's rate was cut by a CNP, outgoing work requests
        are spaced to the current rate before the NIC pipeline sees
        them; the stall is recorded as an ``ecn_throttle`` wait edge.
        A flow at line rate pays nothing here (the TX port already
        serializes at link speed).
        """
        fabric = self.fabric
        if not (self.transport.reliable and fabric.dcqcn_active):
            return
        state = fabric.dcqcn_for(self.node.name, self.qpn)
        delay = state.send_delay(
            self.node.rnic.wire_bytes(wr.length), self.sim.now)
        if delay > 0:
            if wr.span is not None:
                wr.span.add_phase(
                    "ecn_throttle", self.sim.now, self.sim.now + delay)
                wr.span.wait(
                    "ecn_throttle", self.sim.now, self.sim.now + delay)
            yield self.sim.timeout(delay)

    def _execute(
        self, wr: WorkRequest, target: "QueuePair", done: Event
    ) -> Generator[Event, None, None]:
        yield from self._congestion_gate(wr)
        verb = wr.verb
        if verb is Verb.SEND:
            yield from self._do_send(wr, target, done)
        elif verb in (Verb.WRITE, Verb.WRITE_IMM):
            yield from self._do_write(wr, target, done)
        elif verb is Verb.READ:
            yield from self._do_read(wr, target, done)
        elif verb in (Verb.FETCH_ADD, Verb.CMP_SWAP):
            yield from self._do_atomic(wr, target, done)
        else:
            raise VerbError("cannot post %s" % verb)
        self.sends_completed += 1
        if wr.span is not None:
            # Covers auto-created WR spans and FLock message spans alike:
            # the span ends when the verb completes at the initiator.
            wr.span.finish(self.sim.now)

    def _do_send(
        self, wr: WorkRequest, target: "QueuePair", done: Event
    ) -> Generator[Event, None, None]:
        jitter = self.fabric.cfg.ud_jitter_ns if self.transport is Transport.UD else 0.0
        delivered = yield from self.fabric.transfer(
            self.node, target.node, wr.length, self.qpn, target.qpn,
            reliable=self.transport.reliable, jitter_ns=jitter,
            span=wr.span,
        )
        if delivered:
            ok, _buf = target.recv_buffers.try_get()
            if not ok and self.transport is Transport.RC:
                # RC receiver-not-ready: hardware retries until a buffer
                # is posted (RNR NAK loop), modelled as a blocking wait.
                yield target.recv_buffers.get()
                ok = True
            if ok:
                yield from target.node.rnic.cqe_dma()
                target.recv_cq.push(Completion(
                    wr_id=wr.wr_id, verb=Verb.RECV, byte_len=wr.length,
                    payload=wr.payload, qpn=target.qpn,
                    src=(self.node.name, self.qpn), span=wr.span,
                ))
            else:
                target.recv_drops += 1
                if target._obs:
                    target._m_recv_drops.inc()
        wc = Completion(wr_id=wr.wr_id, verb=Verb.SEND, byte_len=wr.length,
                        qpn=self.qpn)
        if self.transport.reliable:
            yield self.sim.timeout(self.fabric.cfg.propagation_ns)
        self._push_send_cqe(wr, wc)
        done.succeed(wc)

    def _locate(self, target: "QueuePair", wr: WorkRequest, op: str) -> MemoryRegion:
        region = target.node.memory.lookup(wr.rkey)
        region.check(wr.remote_addr, max(wr.length, 1), op)
        return region

    def _do_write(
        self, wr: WorkRequest, target: "QueuePair", done: Event
    ) -> Generator[Event, None, None]:
        try:
            region = self._locate(target, wr, "write")
        except AccessError as exc:
            wc = Completion(wr_id=wr.wr_id, verb=wr.verb,
                            status=WcStatus.REM_ACCESS_ERR, payload=exc)
            self._push_send_cqe(wr, wc)
            done.succeed(wc)
            return
        delivered = yield from self.fabric.transfer(
            self.node, target.node, wr.length, self.qpn, target.qpn,
            rkeys=(wr.rkey,), reliable=self.transport.reliable,
            span=wr.span,
        )
        if delivered:
            sink = region.sink
            if sink is not None:
                sink(wr.payload, wr.remote_addr, wr.length)
            if wr.verb is Verb.WRITE_IMM:
                # write-with-imm raises a completion in the remote RCQ
                # (§7: FLock uses this so credit requests are seen by
                # polling the RCQ, decoupled from memory-polling request
                # dispatchers).
                yield from target.node.rnic.cqe_dma()
                target.recv_cq.push(Completion(
                    wr_id=wr.wr_id, verb=Verb.WRITE_IMM, byte_len=wr.length,
                    payload=wr.payload, imm=wr.imm, qpn=target.qpn,
                    src=(self.node.name, self.qpn), span=wr.span,
                ))
        wc = Completion(wr_id=wr.wr_id, verb=wr.verb, byte_len=wr.length,
                        qpn=self.qpn)
        if self.transport.reliable:
            yield self.sim.timeout(self.fabric.cfg.propagation_ns)
        self._push_send_cqe(wr, wc)
        done.succeed(wc)

    def _do_read(
        self, wr: WorkRequest, target: "QueuePair", done: Event
    ) -> Generator[Event, None, None]:
        try:
            region = self._locate(target, wr, "read")
        except AccessError as exc:
            wc = Completion(wr_id=wr.wr_id, verb=wr.verb,
                            status=WcStatus.REM_ACCESS_ERR, payload=exc)
            self._push_send_cqe(wr, wc)
            done.succeed(wc)
            return
        # Request: header-only frame to the responder.
        yield from self.fabric.transfer(
            self.node, target.node, _REQUEST_HEADER_BYTES, self.qpn, target.qpn,
            rkeys=(wr.rkey,), reliable=True, span=wr.span,
        )
        # Response: data-bearing frame back, executed by the remote RNIC
        # with zero remote-CPU involvement.
        yield from self.fabric.transfer(
            target.node, self.node, wr.length, target.qpn, self.qpn,
            reliable=True, span=wr.span,
        )
        value = region.words.get(wr.remote_addr) if wr.length <= 8 else None
        wc = Completion(wr_id=wr.wr_id, verb=Verb.READ, byte_len=wr.length,
                        payload=value, qpn=self.qpn)
        self._push_send_cqe(wr, wc)
        done.succeed(wc)

    def _do_atomic(
        self, wr: WorkRequest, target: "QueuePair", done: Event
    ) -> Generator[Event, None, None]:
        try:
            region = self._locate(target, wr, "atomic")
        except AccessError as exc:
            wc = Completion(wr_id=wr.wr_id, verb=wr.verb,
                            status=WcStatus.REM_ACCESS_ERR, payload=exc)
            self._push_send_cqe(wr, wc)
            done.succeed(wc)
            return
        yield from self.fabric.transfer(
            self.node, target.node, _REQUEST_HEADER_BYTES, self.qpn, target.qpn,
            rkeys=(wr.rkey,), reliable=True, span=wr.span,
        )
        lock = _atomic_lock(target.node, self.sim, wr.rkey, wr.remote_addr)
        yield lock.acquire()
        try:
            old = region.words.get(wr.remote_addr, 0)
            if wr.verb is Verb.FETCH_ADD:
                region.words[wr.remote_addr] = old + wr.swap_or_add
            else:  # CMP_SWAP
                if old == wr.compare:
                    region.words[wr.remote_addr] = wr.swap_or_add
        finally:
            lock.release()
        yield from self.fabric.transfer(
            target.node, self.node, _ACK_BYTES, target.qpn, self.qpn,
            reliable=True, span=wr.span,
        )
        wc = Completion(wr_id=wr.wr_id, verb=wr.verb, byte_len=8,
                        payload=old, qpn=self.qpn)
        self._push_send_cqe(wr, wc)
        done.succeed(wc)
