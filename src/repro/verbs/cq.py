"""Completion queues.

A CQ is a FIFO of :class:`Completion` entries DMA-ed by the RNIC.
Software reaps entries either by busy polling (``poll``) — whose CPU cost
the caller charges per the cost model — or by blocking on ``wait_pop``
inside a DES process (which models a poller that sleeps until work
arrives; the poll cost is still charged by the caller when an entry is
reaped).
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Event, Simulator, TrackedStore
from .wr import Completion

__all__ = ["CompletionQueue"]


class CompletionQueue:
    """FIFO of completions, optionally bounded like a real CQ."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "cq"):
        self.sim = sim
        self.name = name
        self._obs = sim.instrumented
        self._trace = sim.spans.enabled
        #: Occupancy tracker (cost observatory); cached like ``_obs``.
        #: CQ residency feeds one aggregate ``cq.depth`` level series.
        self._occ = sim.occupancy
        metrics = sim.metrics
        # Queueing-theory accounting (arrival times, depth-time integral)
        # only when telemetry is live: the Little's-law auditor consumes
        # it, the disabled path stays a plain Store.
        self._store = TrackedStore(sim, capacity, track=metrics.enabled,
                                   name=name)
        self.pushed = 0
        self.overflowed = 0
        self._m_pushed = metrics.counter("verbs.cq.pushed")
        self._m_overflowed = metrics.counter("verbs.cq.overflowed")
        self._m_depth = metrics.histogram("verbs.cq.depth")
        self._m_poll_batch = metrics.histogram("verbs.cq.poll_batch")
        sim.register_component(self)

    def __len__(self) -> int:
        return len(self._store)

    def push(self, wc: Completion) -> None:
        """RNIC side: append a completion (drops + counts on overflow)."""
        if self._store.try_put(wc):
            self.pushed += 1
            if self._occ is not None:
                self._occ.add("cq.depth", self.sim.now, 1.0)
            if self._obs:
                self._m_pushed.inc()
                self._m_depth.observe(len(self._store))
            if self._trace and wc.span is not None:
                # Stamp CQ entry time; the reap side turns the residency
                # into a ``cq_poll`` wait edge.  (Direct hand-off to a
                # blocked getter stamps and reaps at the same instant,
                # leaving no edge.)
                wc._cq_t0 = self.sim.now
        else:
            # A real overflowed CQ moves the QP to an error state; for the
            # simulation, counting the overflow is enough for tests.
            self.overflowed += 1
            if self._obs:
                self._m_overflowed.inc()

    def _note_reap(self, wc: Completion) -> None:
        """Record how long the CQE sat before software picked it up."""
        t0 = getattr(wc, "_cq_t0", None)
        if t0 is not None and wc.span is not None:
            wc.span.wait("cq_poll", t0, self.sim.now)

    def _reap_cb(self, ev: Event) -> None:
        if ev.ok and isinstance(ev.value, Completion):
            self._note_reap(ev.value)

    def _occ_reap_cb(self, ev: Event) -> None:
        if ev.ok and isinstance(ev.value, Completion):
            self._occ.add("cq.depth", self.sim.now, -1.0)

    def poll(self, max_entries: int = 16) -> List[Completion]:
        """Non-blocking reap of up to ``max_entries`` completions."""
        out: List[Completion] = []
        for _ in range(max_entries):
            ok, wc = self._store.try_get()
            if not ok:
                break
            out.append(wc)
        if out:
            if self._occ is not None:
                self._occ.add("cq.depth", self.sim.now, -float(len(out)))
            # Completion batching: how many CQEs each successful poll reaps.
            if self._obs:
                self._m_poll_batch.observe(len(out))
            if self._trace:
                for wc in out:
                    self._note_reap(wc)
        return out

    def wait_pop(self) -> Event:
        """Event yielding the next completion (blocking poller)."""
        ev = self._store.get()
        if self._trace:
            ev.add_callback(self._reap_cb)
        if self._occ is not None:
            ev.add_callback(self._occ_reap_cb)
        return ev

    # -- audit accounting (populated when telemetry is live) -------------

    @property
    def reaped(self) -> int:
        """Completions that have left the queue (polled or handed off)."""
        return self._store.reaped

    @property
    def queue_stats(self) -> Optional[TrackedStore]:
        """The tracked backing store, or None when tracking is off."""
        return self._store if self._store.track else None
