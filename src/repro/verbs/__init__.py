"""RDMA verbs layer: queue pairs, completion queues, work requests."""

from .cq import CompletionQueue
from .qp import QueuePair, VerbError
from .transport import Transport, Verb, capability_table, max_message_size, supports
from .wr import Completion, WcStatus, WorkRequest

__all__ = [
    "Completion",
    "CompletionQueue",
    "QueuePair",
    "Transport",
    "Verb",
    "VerbError",
    "WcStatus",
    "WorkRequest",
    "capability_table",
    "max_message_size",
    "supports",
]
