"""Work requests and completions (the libibverbs data model).

A :class:`WorkRequest` is what software posts to a QP's send queue; a
:class:`Completion` is what the RNIC DMAs into a completion queue when a
*signaled* request finishes (§7: selective signaling suppresses CQEs for
up to N-1 of every N requests, saving PCIe bandwidth).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .transport import Verb

__all__ = ["WorkRequest", "Completion", "WcStatus"]

_wr_ids = itertools.count(1)


@dataclass
class WorkRequest:
    """One verb submission.

    ``wr_id`` is the opaque application tag the paper uses (§6) to route
    completions of RPC vs. memory operations sharing a QP back to the
    right thread.
    """

    verb: Verb
    length: int = 0
    wr_id: int = field(default_factory=lambda: next(_wr_ids))
    signaled: bool = True
    #: One-sided ops: destination address and region key.
    remote_addr: int = 0
    rkey: int = 0
    #: Opaque payload object carried to the peer (messages/writes).
    payload: Any = None
    #: write-with-imm: 32-bit immediate delivered to the remote RCQ.
    imm: Optional[int] = None
    #: Atomics: operand values.
    compare: int = 0
    swap_or_add: int = 0
    #: Optional :class:`repro.obs.Span` carried through the NIC/fabric so
    #: hardware layers attribute their time to this request's trace.  Set
    #: by upper layers (FLock message posting) or auto-created by
    #: :meth:`QueuePair.post_send` when span tracing is enabled.
    span: Any = None

    def __post_init__(self):
        if self.length < 0:
            raise ValueError("negative WR length")


class WcStatus:
    """Completion status codes (the subset the simulation produces)."""

    SUCCESS = "success"
    LOC_PROT_ERR = "local_protection_error"
    REM_ACCESS_ERR = "remote_access_error"
    RETRY_EXC_ERR = "retry_exceeded"


@dataclass
class Completion:
    """A completion-queue entry."""

    wr_id: int
    verb: Verb
    status: str = WcStatus.SUCCESS
    byte_len: int = 0
    #: recv completions: the sender's payload; read/atomic: returned data.
    payload: Any = None
    imm: Optional[int] = None
    #: QP number the completion belongs to (multiplexed CQs).
    qpn: int = 0
    #: UD recv: source (node name, qpn) for replies.
    src: Any = None
    #: Span of the work this completion finishes (for ``cq_poll`` wait
    #: edges: time the CQE sat in the CQ before software reaped it).
    span: Any = None

    @property
    def ok(self) -> bool:
        return self.status == WcStatus.SUCCESS
