"""Transport types and their capability matrix (paper Table 1).

============  =====  ======  =======  ==========  =========
transport      read  atomic   write   send/recv    MTU
============  =====  ======  =======  ==========  =========
RC             yes    yes     yes      yes         2 GB
UC             no     no      yes      yes         2 GB
UD             no     no      no       yes         4 KB
============  =====  ======  =======  ==========  =========

RC retransmits in hardware after packet loss; UC and UD leave loss (and,
for UD, reordering/reassembly) to the application.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

__all__ = ["Transport", "Verb", "supports", "max_message_size", "capability_table"]

RC_MAX_MSG = 2 * 1024 * 1024 * 1024
UD_MAX_MSG = 4096


class Transport(enum.Enum):
    """The three RDMA transport types of Table 1."""

    RC = "RC"
    UC = "UC"
    UD = "UD"

    @property
    def reliable(self) -> bool:
        return self is Transport.RC

    @property
    def connected(self) -> bool:
        """RC/UC need one-to-one QP connections; UD is one-to-many."""
        return self is not Transport.UD


class Verb(enum.Enum):
    """RDMA operations (message verbs + memory verbs)."""

    SEND = "send"
    RECV = "recv"
    WRITE = "write"
    WRITE_IMM = "write_imm"
    READ = "read"
    FETCH_ADD = "fetch_add"
    CMP_SWAP = "cmp_swap"

    @property
    def one_sided(self) -> bool:
        return self in _ONE_SIDED


_ONE_SIDED = frozenset(
    {Verb.WRITE, Verb.READ, Verb.FETCH_ADD, Verb.CMP_SWAP}
)

_CAPS: Dict[Transport, FrozenSet[Verb]] = {
    Transport.RC: frozenset(Verb),
    Transport.UC: frozenset({Verb.SEND, Verb.RECV, Verb.WRITE, Verb.WRITE_IMM}),
    Transport.UD: frozenset({Verb.SEND, Verb.RECV}),
}


def supports(transport: Transport, verb: Verb) -> bool:
    """True if ``transport`` implements ``verb`` (Table 1)."""
    return verb in _CAPS[transport]


def max_message_size(transport: Transport) -> int:
    """Largest single message the transport carries (Table 1 MTU column)."""
    return UD_MAX_MSG if transport is Transport.UD else RC_MAX_MSG


def capability_table() -> Dict[str, dict]:
    """Table 1 as data, used by the Table-1 benchmark and docs."""
    return {
        t.value: {
            "read": supports(t, Verb.READ),
            "atomic": supports(t, Verb.FETCH_ADD) and supports(t, Verb.CMP_SWAP),
            "write": supports(t, Verb.WRITE),
            "send_recv": supports(t, Verb.SEND) and supports(t, Verb.RECV),
            "max_msg": max_message_size(t),
            "reliable": t.reliable,
        }
        for t in Transport
    }
