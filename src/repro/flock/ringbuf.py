"""Request/response ring buffers (paper §4.1, Fig. 4/5).

Each FLock QP has a request ring on the receiver and a response ring on
the sender, both living inside registered memory regions so peers can
RDMA-write into them.  A ring is a contiguous **byte** buffer: a
coalesced message occupies its wire size, so large payloads consume ring
space proportionally — the mechanism behind head-of-line pressure when
small- and large-payload threads share a QP (§5.2).

The receiver polls its ring for new coalesced messages and advances
``Head`` as it consumes them; the sender tracks free space with a locally
cached copy of Head that is refreshed by values piggybacked on responses
(§4.1) — it (almost) never needs an RDMA read.  A sender that finds the
ring full parks until a fresher Head arrives.

In the simulator the ring's data plane is the memory region's *sink*: an
RDMA write whose destination falls in the region enqueues the message
object; the receiving dispatcher drains it.  Overflow is a hard error —
the credit scheme plus the sender-side space check must make it
unreachable.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..hw.memory import MemoryRegion
from ..sim import Event, Simulator, Store

__all__ = ["RingBuffer", "RingOverflow", "SenderView"]


class RingOverflow(Exception):
    """An RDMA write landed in a full ring: flow control failed."""


class RingBuffer:
    """One direction's ring: a sink-backed byte queue with head/tail."""

    def __init__(self, sim: Simulator, region: MemoryRegion, slots: int,
                 capacity_bytes: Optional[int] = None, name: str = "ring"):
        if slots < 1:
            raise ValueError("ring needs at least one slot")
        self.sim = sim
        self.region = region
        self.slots = slots
        self.capacity_bytes = capacity_bytes or region.length
        self.name = name
        #: Consumer position (messages / bytes consumed so far).
        self.head = 0
        self.head_bytes = 0
        #: Producer position (messages / bytes written so far).
        self.tail = 0
        self.tail_bytes = 0
        self.messages = Store(sim)
        #: Called with each arriving message (before queueing) — used by
        #: servers to route messages into a worker inbox instead.
        self.on_message: Optional[Callable] = None
        region.sink = self._sink

    # -- producer (remote) side -------------------------------------------

    def _sink(self, payload, addr: int, length: int) -> None:
        if (self.tail - self.head >= self.slots
                or self.tail_bytes - self.head_bytes + length
                > self.capacity_bytes):
            raise RingOverflow(
                "%s overflow: msgs %d/%d bytes %d+%d/%d"
                % (self.name, self.tail - self.head, self.slots,
                   self.tail_bytes - self.head_bytes, length,
                   self.capacity_bytes)
            )
        self.tail += 1
        self.tail_bytes += length
        if self.on_message is not None:
            self.on_message(payload)
        else:
            self.messages.try_put(payload)

    # -- consumer (local) side ----------------------------------------------

    def consume(self, nbytes: int = 0) -> None:
        """Advance Head after a message of ``nbytes`` has been decoded."""
        if self.head >= self.tail:
            raise RingOverflow("%s: consume past tail" % self.name)
        self.head += 1
        self.head_bytes += nbytes
        if self.head_bytes > self.tail_bytes:
            raise RingOverflow("%s: consumed more bytes than written"
                               % self.name)

    @property
    def backlog(self) -> int:
        """Messages written but not yet consumed."""
        return self.tail - self.head

    @property
    def backlog_bytes(self) -> int:
        return self.tail_bytes - self.head_bytes


class SenderView:
    """The sender's bookkeeping for a remote ring (§4.1).

    Tracks in-flight *bytes* against the ring capacity using the locally
    cached remote Head.  ``observe_head`` is called when a response
    piggybacks the receiver's updated byte Head; a leader that finds the
    ring full parks on :meth:`wait_for_space` until a fresher Head
    arrives — the paper's "sender ensures that there is free space on
    the receiver's ring buffer" check.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.sent_bytes = 0
        self.cached_head_bytes = 0
        self.messages_sent = 0
        self.rdma_reads_for_head = 0
        self._waiters: List[Event] = []

    @property
    def in_flight_bytes(self) -> int:
        return self.sent_bytes - self.cached_head_bytes

    def has_space(self, nbytes: int = 1) -> bool:
        return self.in_flight_bytes + nbytes <= self.capacity_bytes

    def available_bytes(self) -> int:
        return self.capacity_bytes - self.in_flight_bytes

    def allocate(self, nbytes: int) -> int:
        """Claim ``nbytes`` of ring space; returns the message index."""
        if not self.has_space(nbytes):
            raise RingOverflow(
                "sender view out of ring space (%d in flight + %d > %d)"
                % (self.in_flight_bytes, nbytes, self.capacity_bytes))
        self.sent_bytes += nbytes
        msg_id = self.messages_sent
        self.messages_sent += 1
        return msg_id

    def wait_for_space(self, sim: Simulator, nbytes: int = 1) -> Event:
        """Event firing once the cached Head shows ``nbytes`` free."""
        ev = Event(sim)
        if self.has_space(nbytes):
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def observe_head(self, head_bytes: Optional[int]) -> None:
        if head_bytes is not None and head_bytes > self.cached_head_bytes:
            self.cached_head_bytes = head_bytes
            waiters, self._waiters = self._waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()
