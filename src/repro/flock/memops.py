"""FLock memory and atomic operations (paper §6, Table 2 memory APIs).

``fl_read`` / ``fl_write`` / ``fl_fetch_and_add`` / ``fl_cmp_and_swap``
ride the same connection handle and FLock synchronization as RPC: a
thread prepares its work request, enqueues it in the QP's combining
queue, and the transient leader links all queued work requests and rings
a *single* doorbell for the batch.  Because one-sided operations have no
response message, completion is signalled through the verbs completion
(annotated by ``wr_id``) rather than the response dispatcher — the
complexity the paper hides under the programming interface.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim import Event
from ..verbs import Completion, Verb
from .handle import ConnectionHandle, MemOp
from .tcq import PendingSend

__all__ = ["MemoryOps"]


class MemoryOps:
    """Memory-verb front end bound to a :class:`FlockClient`."""

    def __init__(self, client):
        self.client = client

    # -- public API (Table 2) -------------------------------------------------

    def read(self, handle: ConnectionHandle, thread_id: int, remote_addr: int,
             rkey: int, size: int) -> Generator[Event, None, Completion]:
        """``fl_read``: read ``size`` bytes from remote memory."""
        return (yield from self._submit(handle, thread_id, MemOp(
            thread_id=thread_id, verb=Verb.READ, size=size,
            remote_addr=remote_addr, rkey=rkey,
        )))

    def write(self, handle: ConnectionHandle, thread_id: int, remote_addr: int,
              rkey: int, size: int, payload: Any = None
              ) -> Generator[Event, None, Completion]:
        """``fl_write``: write ``size`` bytes to remote memory."""
        return (yield from self._submit(handle, thread_id, MemOp(
            thread_id=thread_id, verb=Verb.WRITE, size=size,
            remote_addr=remote_addr, rkey=rkey, payload=payload,
        )))

    def fetch_and_add(self, handle: ConnectionHandle, thread_id: int,
                      remote_addr: int, rkey: int, delta: int
                      ) -> Generator[Event, None, Completion]:
        """``fl_fetch_and_add``: atomic 8-byte fetch-and-add; the
        completion payload is the previous value."""
        return (yield from self._submit(handle, thread_id, MemOp(
            thread_id=thread_id, verb=Verb.FETCH_ADD, size=8,
            remote_addr=remote_addr, rkey=rkey, swap_or_add=delta,
        )))

    def cmp_and_swap(self, handle: ConnectionHandle, thread_id: int,
                     remote_addr: int, rkey: int, compare: int, swap: int
                     ) -> Generator[Event, None, Completion]:
        """``fl_cmp_and_swap``: atomic 8-byte compare-and-swap; the
        completion payload is the previous value (swap succeeded iff it
        equals ``compare``)."""
        return (yield from self._submit(handle, thread_id, MemOp(
            thread_id=thread_id, verb=Verb.CMP_SWAP, size=8,
            remote_addr=remote_addr, rkey=rkey, compare=compare,
            swap_or_add=swap,
        )))

    # -- internals ----------------------------------------------------------------

    def _submit(self, handle: ConnectionHandle, thread_id: int,
                op: MemOp) -> Generator[Event, None, Completion]:
        client = self.client
        op.created_ns = client.sim.now
        state = handle.thread(thread_id)
        yield state.submit_lock.acquire()
        try:
            channel = handle.qp_for_thread(thread_id)
            yield from client._drain_for_migration(state, channel)
            channel = handle.qp_for_thread(thread_id)
            state.stats.record(op.size)
            # Preparing the work request on the application thread (§6:
            # "each application thread prepares its work individually").
            yield client.sim.timeout(client.cpu.marshal_ns)
            slot = PendingSend(op, client.sim.now)
            slot.sent_event = Event(client.sim)
            slot.response_event = Event(client.sim)
            if channel.tcq.enqueue(slot):
                client.sim.spawn(client._leader_cycles(handle, channel),
                                 name="flock-leader")
                yield slot.sent_event
        finally:
            state.submit_lock.release()
        completion = yield slot.response_event
        return completion
