"""The public FLock programming interface (paper Table 2).

:class:`FlockNode` is the façade a node's application code uses.  A node
can act as a sender (client), a receiver (server), or both.  The method
names follow Table 2 exactly:

=================  =========================================================
``fl_connect``      connect to a remote node → :class:`ConnectionHandle`
``fl_attach_mreg``  attach a memory region for memory operations
``fl_send_rpc``     send an RPC request with an RPC id and data
``fl_recv_res``     receive RPC responses
``fl_reg_handler``  register an RPC handler function with an RPC id
``fl_recv_rpc``     fetch RPC requests (application-driven dispatch)
``fl_send_res``     send an RPC response with data
``fl_read``         read from remote memory
``fl_write``        write to remote memory
``fl_fetch_and_add``  atomic fetch-and-add on remote memory
``fl_cmp_and_swap``   atomic compare-and-swap on remote memory
=================  =========================================================

All blocking calls are DES-process generators: application code drives
them with ``yield from`` inside a simulated thread.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from ..config import CpuConfig, FlockConfig
from ..net.fabric import Fabric, Node
from ..sim import Event, Simulator
from .handle import ConnectionHandle
from .memops import MemoryOps
from .message import RpcRequest, RpcResponse
from .rpc import MANUAL_HANDLER, FlockClient, FlockServer, RpcHandler

__all__ = ["FlockNode"]


class FlockNode:
    """Per-node FLock endpoint exposing the Table 2 API."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cfg: Optional[FlockConfig] = None,
                 cpu: Optional[CpuConfig] = None, seed: int = 0):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.cfg = cfg or FlockConfig()
        self.client = FlockClient(sim, node, fabric, self.cfg, cpu, seed=seed)
        self.server = FlockServer(sim, node, fabric, self.cfg, cpu)
        self.mem = MemoryOps(self.client)

    # -- setup ----------------------------------------------------------------

    def fl_connect(self, remote: "FlockNode",
                   n_qps: Optional[int] = None) -> ConnectionHandle:
        """Establish one-to-one connectivity to ``remote``; FLock manages
        a set of RC QPs behind the returned handle (§3)."""
        return self.client.connect(remote.server, n_qps=n_qps)

    def fl_attach_mreg(self, handle: ConnectionHandle, length: int):
        """Attach a remote memory region of ``length`` bytes for memory
        operations on this handle; returns the region (addr, rkey)."""
        return self.client.attach_mreg(handle, length)

    # -- RPC sender -------------------------------------------------------------

    def fl_send_rpc(self, handle: ConnectionHandle, thread_id: int,
                    rpc_id: int, size: int, payload: Any = None
                    ) -> Generator[Event, None, Event]:
        """Send an RPC request; returns the event ``fl_recv_res`` waits on."""
        return (yield from self.client.send_rpc(handle, thread_id, rpc_id,
                                                size, payload))

    def fl_recv_res(self, response_ev: Event) -> Generator[Event, None, RpcResponse]:
        """Wait for the response to a previously sent RPC."""
        response = yield response_ev
        return response

    def fl_call(self, handle: ConnectionHandle, thread_id: int, rpc_id: int,
                size: int, payload: Any = None
                ) -> Generator[Event, None, RpcResponse]:
        """Convenience: ``fl_send_rpc`` + ``fl_recv_res``."""
        return (yield from self.client.call(handle, thread_id, rpc_id, size,
                                            payload))

    # -- RPC receiver ---------------------------------------------------------------

    def fl_reg_handler(self, rpc_id: int, handler: RpcHandler) -> None:
        """Register ``handler`` for ``rpc_id`` (run by server workers).

        ``handler(request) -> (response size, payload, server CPU ns)``.
        """
        self.server.register_handler(rpc_id, handler)

    def fl_reg_manual(self, rpc_id: int) -> None:
        """Mark ``rpc_id`` for application-driven dispatch via
        ``fl_recv_rpc`` / ``fl_send_res``."""
        self.server.handlers[rpc_id] = MANUAL_HANDLER

    def fl_recv_rpc(self) -> Generator[Event, None, Tuple[Any, RpcRequest]]:
        """Fetch the next manually dispatched RPC request.  Returns an
        opaque token (pass to ``fl_send_res``) and the request."""
        shandle, schannel, request = yield self.server.manual_inbox.get()
        return (shandle, schannel), request

    def fl_send_res(self, token, request: RpcRequest, size: int,
                    payload: Any = None, core_index: int = 0
                    ) -> Generator[Event, None, None]:
        """Send the response for a manually dispatched request."""
        shandle, schannel = token
        response = RpcResponse(thread_id=request.thread_id,
                               seq_id=request.seq_id, rpc_id=request.rpc_id,
                               size=size, payload=payload)
        core = self.node.cpu[core_index]
        self.server.requests_handled += 1
        yield from self.server._flush_responses(core, shandle, schannel,
                                                [response])

    # -- memory and atomics (§6) ----------------------------------------------------

    def fl_read(self, handle: ConnectionHandle, thread_id: int,
                remote_addr: int, rkey: int, size: int):
        """Read ``size`` bytes from remote memory (one-sided, no remote
        CPU); returns the verbs completion."""
        return (yield from self.mem.read(handle, thread_id, remote_addr,
                                         rkey, size))

    def fl_write(self, handle: ConnectionHandle, thread_id: int,
                 remote_addr: int, rkey: int, size: int, payload: Any = None):
        """Write ``size`` bytes to remote memory (one-sided); returns the
        verbs completion."""
        return (yield from self.mem.write(handle, thread_id, remote_addr,
                                          rkey, size, payload))

    def fl_fetch_and_add(self, handle: ConnectionHandle, thread_id: int,
                         remote_addr: int, rkey: int, delta: int):
        """Atomic 8-byte fetch-and-add on remote memory; the completion
        payload carries the previous value."""
        return (yield from self.mem.fetch_and_add(handle, thread_id,
                                                  remote_addr, rkey, delta))

    def fl_cmp_and_swap(self, handle: ConnectionHandle, thread_id: int,
                        remote_addr: int, rkey: int, compare: int, swap: int):
        """Atomic 8-byte compare-and-swap on remote memory; the swap took
        effect iff the completion payload equals ``compare``."""
        return (yield from self.mem.cmp_and_swap(handle, thread_id,
                                                 remote_addr, rkey, compare,
                                                 swap))
