"""FLock message layout (paper §4.1, Fig. 5).

A coalesced message carries a header (total length, request count,
expected canary), then one ``(metadata, data)`` pair per RPC request or
response, then the 64-bit canary trailer.  The receiver knows a message
arrived completely when the canary in the header matches the trailer,
relying on RDMA writes landing in increasing address order.

The simulator moves structured objects rather than bytes, but all *sizes*
are computed exactly so wire costs (and therefore the benefit of
coalescing: fewer headers, fewer canaries, fewer packets) are faithful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Any

__all__ = [
    "HEADER_BYTES",
    "META_BYTES",
    "CANARY_BYTES",
    "RpcRequest",
    "RpcResponse",
    "CoalescedMessage",
    "coalesced_overhead",
    "coalesced_size",
]

#: Header: total length (4) + request count (2) + flags (2) + expected
#: canary (8) + piggybacked ring Head (8).
HEADER_BYTES = 24
#: Per-entry metadata: data size (4) + thread id (4) + sequence id (4) +
#: RPC handler id (4).
META_BYTES = 16
#: 64-bit trailing canary.
CANARY_BYTES = 8

_canary_rng = random.Random(0xF10C)


@dataclass
class RpcRequest:
    """One application RPC request inside a coalesced message."""

    thread_id: int
    seq_id: int
    rpc_id: int
    size: int
    payload: Any = None
    #: Virtual timestamp the requesting thread created the request
    #: (latency measurement anchor).
    created_ns: float = 0.0
    #: Optional :class:`repro.obs.Span` following this RPC through every
    #: layer (client queue → NIC → wire → server → response).
    span: Any = None

    def __post_init__(self):
        if self.size < 0:
            raise ValueError("negative request size")


@dataclass
class RpcResponse:
    """One RPC response; tagged so the response dispatcher can route it
    back to the issuing thread (paper §4.3)."""

    thread_id: int
    seq_id: int
    rpc_id: int
    size: int
    payload: Any = None
    #: The originating request's span (response-leg phase attribution).
    span: Any = None
    #: Virtual time the server posted this response (set on flush).
    posted_ns: float = 0.0

    def __post_init__(self):
        if self.size < 0:
            raise ValueError("negative response size")


@dataclass
class CoalescedMessage:
    """Header + N entries + canary, as one RDMA write."""

    entries: List[Any] = field(default_factory=list)
    canary: int = field(default_factory=lambda: _canary_rng.getrandbits(64))
    #: Receiver ring Head piggybacked by the server on responses (§4.1),
    #: letting the sender refresh its cached copy without an RDMA read.
    piggyback_head: Optional[int] = None
    #: Credit grant piggybacked on a response (§5.1).
    piggyback_credits: int = 0
    #: Monotone message id per QP direction, for ring accounting.
    msg_id: int = 0
    #: Optional message-level :class:`repro.obs.Span` (doorbell → wire →
    #: remote ring); member RPC spans adopt its hardware phases.
    span: Any = None
    #: Virtual time the message landed in the receiver's ring.
    arrived_ns: float = 0.0

    @property
    def n_entries(self) -> int:
        return len(self.entries)

    @property
    def coalescing_degree(self) -> int:
        """Paper's QP-contention metric: requests per message (>= 1)."""
        return max(1, len(self.entries))

    @property
    def total_bytes(self) -> int:
        return coalesced_size(entry.size for entry in self.entries)

    def is_intact(self, observed_trailer: int) -> bool:
        """Canary check the dispatcher performs before decoding."""
        return observed_trailer == self.canary


def coalesced_size(entry_sizes) -> int:
    """Exact wire size of a coalesced message with the given data sizes."""
    total = HEADER_BYTES + CANARY_BYTES
    for size in entry_sizes:
        if size < 0:
            raise ValueError("negative entry size")
        total += META_BYTES + size
    return total


def coalesced_overhead(n_entries: int) -> int:
    """Framing bytes of a coalesced message with ``n_entries`` requests.

    ``coalesced_size(sizes) == coalesced_overhead(len(sizes)) + sum(sizes)``
    by construction — the byte-conservation auditor leans on this
    identity to reconcile the ``flock.message_bytes`` histogram against
    the coalesced request/byte counters.
    """
    if n_entries < 0:
        raise ValueError("negative entry count")
    return HEADER_BYTES + CANARY_BYTES + META_BYTES * n_entries
