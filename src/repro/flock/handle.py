"""The connection handle abstraction (paper §3).

A :class:`ConnectionHandle` gives application threads one logical
connection to a remote node while internally managing a *set* of RC QPs,
their request/response rings, combining queues, credit state, and the
thread→QP assignment that the sender-side scheduler maintains.  All
Table-2 APIs operate on a handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..sim import Event, Simulator
from ..verbs import QueuePair, Verb
from .credits import CreditState
from .message import RpcRequest
from .qp_scheduler import HoldLedger
from .ringbuf import RingBuffer, SenderView
from .tcq import CombiningQueue, PendingSend
from .thread_scheduler import ThreadStats

__all__ = ["MemOp", "ThreadState", "QpChannel", "ConnectionHandle"]


@dataclass
class MemOp:
    """A one-sided memory/atomic operation queued through FLock sync (§6).

    Unlike RPC requests these are not payload-coalesced: followers
    delegate *posting* to the leader, which links the work requests and
    rings one doorbell for the whole batch.
    """

    thread_id: int
    verb: Verb
    size: int
    remote_addr: int
    rkey: int
    compare: int = 0
    swap_or_add: int = 0
    payload: Any = None
    created_ns: float = 0.0

    @property
    def seq_id(self) -> int:  # uniform interface with RpcRequest for stats
        return -1


class ThreadState:
    """Per-application-thread bookkeeping inside a handle."""

    __slots__ = ("thread_id", "next_seq", "stats", "outstanding_per_qp",
                 "assigned_qp", "drain_events", "submit_lock")

    def __init__(self, thread_id: int, sim: Optional[Simulator] = None):
        self.thread_id = thread_id
        self.next_seq = 0
        self.stats = ThreadStats(thread_id)
        #: Outstanding requests per QP index — used to drain the old QP
        #: before migrating to a new one (paper §5.2).
        self.outstanding_per_qp: Dict[int, int] = {}
        self.assigned_qp: Optional[int] = None
        self.drain_events: Dict[int, Event] = {}
        #: OS threads are serial: coroutines of one thread submit one at a
        #: time, and a leader tenure blocks the thread until its message
        #: posts — which is why same-thread requests do not coalesce
        #: (paper §8.5.2).
        from ..sim import Resource  # local import avoids a cycle at load
        self.submit_lock = Resource(sim, 1) if sim is not None else None

    def allocate_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def inc_outstanding(self, qp_index: int) -> None:
        self.outstanding_per_qp[qp_index] = self.outstanding_per_qp.get(qp_index, 0) + 1

    def dec_outstanding(self, qp_index: int) -> None:
        n = self.outstanding_per_qp.get(qp_index, 0) - 1
        if n <= 0:
            self.outstanding_per_qp.pop(qp_index, None)
            ev = self.drain_events.pop(qp_index, None)
            if ev is not None and not ev.triggered:
                ev.succeed()
        else:
            self.outstanding_per_qp[qp_index] = n


class QpChannel:
    """One RC QP of a handle plus all its FLock-side state."""

    def __init__(
        self,
        sim: Simulator,
        index: int,
        client_qp: QueuePair,
        server_qp: QueuePair,
        request_ring: RingBuffer,
        response_ring: RingBuffer,
        sender_view: SenderView,
        tcq: CombiningQueue,
        credits: CreditState,
        ctrl_rkey: int,
        ctrl_addr: int,
    ):
        self.sim = sim
        self.index = index
        self.client_qp = client_qp
        self.server_qp = server_qp
        self.request_ring = request_ring
        self.response_ring = response_ring
        self.sender_view = sender_view
        self.tcq = tcq
        self.credits = credits
        #: Control region at the server for credit-renew write-with-imm.
        self.ctrl_rkey = ctrl_rkey
        self.ctrl_addr = ctrl_addr
        self.active = True
        #: Counter driving selective signaling (§7).
        self.posted_writes = 0

    def next_signaled(self, signal_every: int) -> bool:
        """Selective signaling: 1 signaled WR out of every N."""
        self.posted_writes += 1
        return self.posted_writes % max(1, signal_every) == 0


class ConnectionHandle:
    """One-to-one connectivity to a remote node over a pool of RC QPs."""

    def __init__(self, sim: Simulator, client_id: int, client_node, server_node):
        self.sim = sim
        self.client_id = client_id
        self.client_node = client_node
        self.server_node = server_node
        self.channels: List[QpChannel] = []
        self.threads: Dict[int, ThreadState] = {}
        self.thread_qp_map: Dict[int, int] = {}
        #: (thread_id, seq_id) -> (response event, qp index at send time).
        self.pending: Dict[tuple, tuple] = {}
        #: Memory regions attached via fl_attach_mreg (rkey -> region).
        self.attached_mrs: Dict[int, Any] = {}
        self.rpcs_completed = 0
        #: Deactivation windows per QP index — how long the receiver-side
        #: QP scheduler held each channel (feeds ``qp_hold`` wait edges).
        self.holds = HoldLedger()

    # -- threads ------------------------------------------------------------

    def thread(self, thread_id: int) -> ThreadState:
        state = self.threads.get(thread_id)
        if state is None:
            state = ThreadState(thread_id, self.sim)
            self.threads[thread_id] = state
        return state

    # -- QP selection ----------------------------------------------------------

    @property
    def active_indices(self) -> List[int]:
        return [ch.index for ch in self.channels if ch.active]

    def qp_for_thread(self, thread_id: int) -> QpChannel:
        """The channel the thread scheduler currently assigns this thread.

        Falls back to striping across active QPs for unmapped threads and
        repairs stale assignments pointing at deactivated QPs.
        """
        active = self.active_indices
        if not active:
            # Every QP deactivated: the scheduler guarantees at least one
            # QP per sender, so treat channel 0 as the dormant fallback.
            active = [0]
            self.channels[0].active = True
            self.channels[0].credits.active = True
            self.holds.release(0, self.sim.now)
        idx = self.thread_qp_map.get(thread_id)
        if idx is None or not self.channels[idx].active:
            idx = active[thread_id % len(active)]
            self.thread_qp_map[thread_id] = idx
        return self.channels[idx]

    def apply_assignment(self, mapping: Dict[int, int]) -> None:
        """Install a new thread→QP map from the thread scheduler."""
        for thread_id, qp_index in mapping.items():
            self.thread_qp_map[thread_id] = qp_index

    # -- active set management ----------------------------------------------------

    def apply_active_set(self, active: List[int], credit_batch: int) -> List[PendingSend]:
        """Activate/deactivate channels per the QP scheduler's decision.

        Returns the queued sends stranded on deactivated channels; the
        caller re-homes them via the current thread assignment.
        """
        active_set = set(active)
        stranded: List[PendingSend] = []
        now = self.sim.now
        for ch in self.channels:
            if ch.index in active_set:
                if not ch.active:
                    ch.active = True
                    ch.credits.reactivate(credit_batch)
                    self.holds.release(ch.index, now)
            elif ch.active:
                ch.active = False
                ch.credits.deactivate()
                self.holds.hold(ch.index, now)
                stranded.extend(ch.tcq.pending)
                ch.tcq.pending.clear()
        return stranded

    # -- completion plumbing ---------------------------------------------------------

    def register_pending(self, thread_id: int, seq_id: int, qp_index: int) -> Event:
        ev = Event(self.sim)
        self.pending[(thread_id, seq_id)] = (ev, qp_index)
        self.thread(thread_id).inc_outstanding(qp_index)
        return ev

    def complete_pending(self, thread_id: int, seq_id: int, payload) -> bool:
        entry = self.pending.pop((thread_id, seq_id), None)
        if entry is None:
            return False
        ev, qp_index = entry
        self.thread(thread_id).dec_outstanding(qp_index)
        self.rpcs_completed += 1
        ev.succeed(payload)
        return True

    # -- stats -------------------------------------------------------------------------

    def mean_coalescing_degree(self) -> float:
        sent = sum(ch.tcq.messages_sent for ch in self.channels)
        reqs = sum(ch.tcq.requests_sent for ch in self.channels)
        return (reqs / sent) if sent else 1.0

    def congestion_stats(self, fabric) -> dict:
        """Per-channel DCQCN state for this handle's client-side QPs.

        FLock's credit window and the fabric's rate limiter interact:
        credits bound *outstanding requests* per QP while DCQCN bounds
        the QP's *send rate*, so a throttled channel holds credits
        longer and the coalescer naturally batches more per doorbell.
        Empty when the congestion model (or DCQCN) is off.
        """
        if not getattr(fabric, "dcqcn_active", False):
            return {}
        stats = {}
        for ch in self.channels:
            key = (self.client_node.name, ch.client_qp.qpn)
            state = fabric._dcqcn.get(key)
            if state is None:
                continue
            snap = state.snapshot()
            snap["credits_outstanding"] = ch.credits.credits
            stats["qp%d" % ch.index] = snap
        return stats
