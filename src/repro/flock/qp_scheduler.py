"""Receiver-side QP scheduling logic (paper §5.1).

The server bounds the set of *active* QPs at ``MAX_AQP`` to keep the RNIC
connection cache warm, and divides that budget across senders by their
recent utilization:

    U_{i,j}  = sum of coalescing degrees reported in credit-renew
               requests on QP j of sender i since the last redistribution
    U_i      = sum over j of U_{i,j}
    AQP_i    = MAX_AQP * U_i / sum_k U_k     (if U_i > 0; else 1)

Dormant senders (no traffic in an interval) keep exactly one QP; a newly
joined sender gets the average allocation of functioning senders.  This
module holds the pure allocation math; the DES scheduler process that
applies it lives in :mod:`repro.flock.rpc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

__all__ = ["HoldLedger", "UtilizationTable", "compute_allocation"]


class UtilizationTable:
    """U_{i,j} accumulator between redistribution rounds."""

    def __init__(self):
        self._table: Dict[int, Dict[int, float]] = {}

    def report(self, client_id: int, qp_index: int, median_degree: int) -> None:
        """Record a credit-renew report (one per renewal request)."""
        if median_degree < 1:
            raise ValueError("coalescing degree is >= 1 by definition")
        per_qp = self._table.setdefault(client_id, {})
        per_qp[qp_index] = per_qp.get(qp_index, 0.0) + median_degree

    def ensure_client(self, client_id: int) -> None:
        self._table.setdefault(client_id, {})

    def per_client(self) -> Dict[int, float]:
        """U_i for every known sender (0.0 when dormant)."""
        return {cid: sum(per_qp.values()) for cid, per_qp in self._table.items()}

    def qp_utilization(self, client_id: int) -> Dict[int, float]:
        return dict(self._table.get(client_id, {}))

    def reset(self) -> None:
        for per_qp in self._table.values():
            per_qp.clear()


class HoldLedger:
    """Deactivation windows per QP — how long the scheduler held it.

    When a redistribution (or a declined renewal) deactivates a QP,
    requests already queued behind it are *held by the scheduler* until
    the QP is re-activated or the requests migrate.  The ledger records
    those windows so (a) the time shows up as ``qp_hold`` wait edges on
    the affected RPC spans, and (b) total scheduler-induced hold time is
    visible as a run statistic independent of tracing.
    """

    def __init__(self):
        self._since: Dict[Hashable, float] = {}
        self.holds = 0
        self.total_hold_ns = 0.0

    def hold(self, key: Hashable, now: float) -> None:
        """Mark ``key`` (a QP identity) deactivated at ``now``; keeps the
        original timestamp if the QP was already held."""
        self._since.setdefault(key, now)

    def held_since(self, key: Hashable) -> Optional[float]:
        """Start of the current hold window, or None if not held."""
        return self._since.get(key)

    def release(self, key: Hashable, now: float) -> float:
        """End the hold window; returns its length (0.0 if not held)."""
        t0 = self._since.pop(key, None)
        if t0 is None:
            return 0.0
        self.holds += 1
        held = now - t0
        self.total_hold_ns += held
        return held

    @property
    def active_holds(self) -> int:
        return len(self._since)


def compute_allocation(
    per_client_u: Mapping[int, float],
    max_aqp: int,
    qps_per_client: Mapping[int, int],
) -> Dict[int, int]:
    """Split the MAX_AQP budget across senders (paper's AQP_i formula).

    ``qps_per_client`` caps each sender at the QPs it actually owns.
    Every sender — functioning or dormant — keeps at least one QP for
    future communication.
    """
    if max_aqp < 1:
        raise ValueError("max_aqp must be >= 1")
    total_u = sum(u for u in per_client_u.values() if u > 0)
    alloc: Dict[int, int] = {}
    for cid, u in per_client_u.items():
        cap = max(1, qps_per_client.get(cid, 1))
        if total_u <= 0 or u <= 0:
            alloc[cid] = 1 if cap >= 1 else cap
        else:
            share = int(max_aqp * (u / total_u))
            alloc[cid] = max(1, min(cap, share))
    return alloc


def allocation_for_new_client(
    per_client_u: Mapping[int, float], max_aqp: int, cap: int
) -> int:
    """A newly joined sender gets the average allocation of functioning
    senders (paper §5.1)."""
    functioning = [u for u in per_client_u.values() if u > 0]
    if not functioning:
        return max(1, min(cap, max_aqp))
    avg = max_aqp // max(1, len(functioning))
    return max(1, min(cap, avg))
