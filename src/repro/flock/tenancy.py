"""Multi-tenant QP allocation (paper §9, future work).

The paper sketches multi-application support via "a central user-space
process that manages network resources and allocates them to application
processes as per their utilization", in the spirit of Snap.  This module
implements that sketch as a hierarchical allocation policy plugged into
the receiver-side QP scheduler:

1. the MAX_AQP budget is first split across *tenants* by weighted fair
   share with water-filling (an idle tenant's entitlement spills over to
   busy ones, but a busy tenant can never be pushed below its weighted
   share);
2. within each tenant, the paper's per-sender AQP formula (§5.1) divides
   the tenant's budget across its clients by utilization.

Attach a :class:`TenantManager` to ``FlockServer.tenancy`` and register
each client id under a tenant; unregistered clients fall into the
default tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from .qp_scheduler import compute_allocation

__all__ = ["Tenant", "TenantManager"]

DEFAULT_TENANT = "default"


@dataclass
class Tenant:
    """One application sharing the server's connection budget."""

    name: str
    weight: float = 1.0
    client_ids: List[int] = field(default_factory=list)

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")


class TenantManager:
    """Weighted-fair hierarchical splitter for the QP scheduler."""

    def __init__(self):
        self.tenants: Dict[str, Tenant] = {}
        self._tenant_of: Dict[int, str] = {}
        self.register_tenant(DEFAULT_TENANT, weight=1.0)
        #: Per-tenant budgets computed at the last redistribution.
        self.last_budgets: Dict[str, int] = {}

    # -- registration -------------------------------------------------------

    def register_tenant(self, name: str, weight: float = 1.0) -> Tenant:
        """Create (or reweight) a tenant."""
        tenant = self.tenants.get(name)
        if tenant is None:
            tenant = Tenant(name=name, weight=weight)
            self.tenants[name] = tenant
        else:
            if weight <= 0:
                raise ValueError("tenant weight must be positive")
            tenant.weight = weight
        return tenant

    def assign_client(self, client_id: int, tenant_name: str) -> None:
        """Place a client (connection handle) under a tenant."""
        if tenant_name not in self.tenants:
            raise KeyError("unknown tenant %r" % tenant_name)
        previous = self._tenant_of.get(client_id)
        if previous is not None:
            self.tenants[previous].client_ids.remove(client_id)
        self._tenant_of[client_id] = tenant_name
        self.tenants[tenant_name].client_ids.append(client_id)

    def tenant_of(self, client_id: int) -> str:
        return self._tenant_of.get(client_id, DEFAULT_TENANT)

    # -- allocation -----------------------------------------------------------

    def split(
        self,
        per_client_u: Mapping[int, float],
        max_aqp: int,
        qps_per_client: Mapping[int, int],
    ) -> Dict[int, int]:
        """Hierarchical replacement for :func:`compute_allocation`."""
        if max_aqp < 1:
            raise ValueError("max_aqp must be >= 1")
        # Group clients (unassigned ones land in the default tenant).
        groups: Dict[str, List[int]] = {}
        for client_id in per_client_u:
            groups.setdefault(self.tenant_of(client_id), []).append(client_id)

        # Demand per tenant: QPs its functioning clients could use, with
        # one QP floor per client (dormant senders keep one, §5.1).
        demand: Dict[str, int] = {}
        for name, clients in groups.items():
            total = 0
            for cid in clients:
                cap = max(1, qps_per_client.get(cid, 1))
                total += cap if per_client_u[cid] > 0 else 1
            demand[name] = max(len(clients), total if total else len(clients))

        budgets = self._water_fill(
            {name: self.tenants[name].weight if name in self.tenants else 1.0
             for name in groups},
            demand, max_aqp)
        self.last_budgets = dict(budgets)

        # Within each tenant, the paper's §5.1 formula.
        allocation: Dict[int, int] = {}
        for name, clients in groups.items():
            tenant_u = {cid: per_client_u[cid] for cid in clients}
            tenant_caps = {cid: qps_per_client.get(cid, 1) for cid in clients}
            allocation.update(compute_allocation(
                tenant_u, max(1, budgets[name]), tenant_caps))
        return allocation

    @staticmethod
    def _water_fill(weights: Mapping[str, float], demand: Mapping[str, int],
                    budget: int) -> Dict[str, int]:
        """Weighted max-min fair shares: satisfied tenants return their
        surplus, which is re-split among the still-hungry by weight."""
        remaining = dict(demand)
        allocation = {name: 0 for name in demand}
        pool = budget
        hungry = {name for name, d in remaining.items() if d > 0}
        while pool > 0 and hungry:
            round_pool = pool
            total_weight = sum(weights[name] for name in hungry)
            progress = False
            for name in sorted(hungry):
                if pool <= 0:
                    break
                share = max(1, int(round_pool * weights[name] / total_weight))
                grant = min(share, remaining[name], pool)
                if grant > 0:
                    allocation[name] += grant
                    remaining[name] -= grant
                    pool -= grant
                    progress = True
            hungry = {name for name, d in remaining.items() if d > 0}
            if not progress:
                break
        return allocation
