"""Sender-side thread scheduling (paper §5.2, Algorithm 1).

The client runs a dedicated scheduler thread that periodically remaps
application threads onto the currently *active* QPs.  Goals: (1) avoid
head-of-line blocking by not mixing large-payload threads with
small-payload ones on a QP — co-locating small payloads maximizes
coalescing; (2) spread load so every active QP moves a similar number of
bytes.

``assign_threads`` is the pure Algorithm 1; :class:`ThreadStats`
accumulates the per-thread statistics it sorts by.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim import percentile

__all__ = ["ThreadStats", "ThreadStatSnapshot", "assign_threads"]


class ThreadStats:
    """Per-thread request statistics since the last scheduling round."""

    __slots__ = ("thread_id", "sizes", "requests", "bytes_sent")

    def __init__(self, thread_id: int):
        self.thread_id = thread_id
        self.sizes: List[int] = []
        self.requests = 0
        self.bytes_sent = 0

    def record(self, size: int) -> None:
        self.sizes.append(size)
        self.requests += 1
        self.bytes_sent += size
        if len(self.sizes) > 8192:
            # Keep the recent window; the median barely moves and this
            # bounds memory when the scheduler is disabled (ablations).
            del self.sizes[:4096]

    def snapshot_and_reset(self) -> "ThreadStatSnapshot":
        snap = ThreadStatSnapshot(
            thread_id=self.thread_id,
            median_size=percentile(sorted(self.sizes), 50.0) if self.sizes else 0.0,
            requests=self.requests,
            bytes_sent=self.bytes_sent,
        )
        self.sizes = []
        self.requests = 0
        self.bytes_sent = 0
        return snap


@dataclass
class ThreadStatSnapshot:
    thread_id: int
    median_size: float
    requests: int
    bytes_sent: int

    @property
    def has_history(self) -> bool:
        return self.requests > 0


def assign_threads(
    snapshots: Sequence[ThreadStatSnapshot],
    active_qps: Sequence[int],
    rng: Optional[random.Random] = None,
    current: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Algorithm 1: map thread ids to active QP indices in O(n log n).

    Threads are sorted by (median request size, request count); a running
    byte quota (total bytes / active QPs) closes each QP once its assigned
    threads have moved roughly a fair share.  A *new* thread without any
    request statistics is assigned uniformly at random (paper: "the
    scheduler randomly decides the QP assignment initially"); a thread
    that merely sent nothing this interval keeps its current QP so an
    idle spell never forces a drain-and-migrate.
    """
    if not active_qps:
        raise ValueError("no active QPs to assign threads to")
    rng = rng or random.Random(0)
    current = current or {}
    active_set = set(active_qps)
    mapping: Dict[int, int] = {}

    with_history = [s for s in snapshots if s.has_history]
    without_history = [s for s in snapshots if not s.has_history]

    for snap in without_history:
        kept = current.get(snap.thread_id)
        if kept is not None and kept in active_set:
            mapping[snap.thread_id] = kept
        else:
            mapping[snap.thread_id] = active_qps[rng.randrange(len(active_qps))]

    if not with_history:
        return mapping

    # Algorithm 1, line 2: sort first by median request size, then by the
    # number of requests sent since last scheduling.  The request count
    # is bucketed to powers of two and ties break on thread id so that
    # statistically identical intervals produce *identical* assignments —
    # otherwise sampling noise reshuffles every thread each round and
    # the required drain-before-migrate (§5.2) stalls the pipeline.
    def sort_key(snap: ThreadStatSnapshot):
        bucket = 1 << (snap.requests.bit_length() - 1) if snap.requests else 0
        return (snap.median_size, bucket, snap.thread_id)

    ordered = sorted(with_history, key=sort_key)
    total_bytes = sum(s.bytes_sent for s in ordered)
    quota = total_bytes / len(active_qps) if total_bytes else 0.0

    # Quota packing produces *groups* of co-located threads; which
    # physical QP a group lands on is immaterial to Algorithm 1's goals,
    # so groups are then relabelled onto the QPs most of their members
    # already use — churn costs a drain-and-migrate per moved thread.
    groups: List[List[int]] = [[]]
    qp_load = 0.0
    for snap in ordered:
        qp_load += snap.bytes_sent
        groups[-1].append(snap.thread_id)
        if quota and qp_load >= quota and len(groups) < len(active_qps):
            groups.append([])
            qp_load = 0.0
    groups = [g for g in groups if g]

    free_qps = list(active_qps)
    for group in groups:
        votes: Dict[int, int] = {}
        for thread_id in group:
            qp = current.get(thread_id)
            if qp in free_qps:
                votes[qp] = votes.get(qp, 0) + 1
        if votes:
            chosen = max(sorted(votes), key=lambda q: votes[q])
        else:
            chosen = free_qps[0]
        free_qps.remove(chosen)
        for thread_id in group:
            mapping[thread_id] = chosen
    return mapping
