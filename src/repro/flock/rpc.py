"""FLock RPC engines: client send path, server dispatch, QP scheduling.

This module wires the pieces of §4-§5 together in virtual time:

* **Client** (:class:`FlockClient`): application threads submit requests
  into per-QP combining queues; a transient *leader* per QP coalesces
  them into one RDMA write (FLock synchronization, §4.2), manages
  credits, and reports coalescing degree.  A lightweight response
  dispatcher routes coalesced responses back to threads by (thread id,
  sequence id) (§4.3), and a thread-scheduler process remaps threads to
  active QPs (Algorithm 1, §5.2).
* **Server** (:class:`FlockServer`): per-core workers drain request
  rings, execute registered handlers, and coalesce responses back; a
  dedicated QP-scheduler thread grants/declines credit renewals and
  periodically redistributes active QPs across senders (§5.1), with
  grants piggybacked on response messages (§7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..config import CpuConfig, FlockConfig
from ..net.fabric import Fabric, Node
from ..sim import Event, Simulator, Store, TrackedStore, null_tracer
from ..verbs import (
    CompletionQueue,
    QueuePair,
    Transport,
    Verb,
    WorkRequest,
)
from .credits import CreditGrant, CreditState, RenewRequest
from .handle import ConnectionHandle, MemOp, QpChannel, ThreadState
from .message import (
    META_BYTES,
    CoalescedMessage,
    RpcRequest,
    RpcResponse,
    coalesced_size,
)
from .qp_scheduler import HoldLedger, UtilizationTable, compute_allocation
from .ringbuf import RingBuffer, SenderView
from .tcq import CombiningQueue, PendingSend
from .thread_scheduler import assign_threads

__all__ = ["FlockClient", "FlockServer", "ActiveSetUpdate", "RpcHandler"]

#: Wire sizes of control messages.
RENEW_BYTES = 24
GRANT_BYTES = 24
ACTIVE_SET_BYTES = 64

#: Handler signature: request -> (response size, response payload,
#: application CPU ns charged on the server core).
RpcHandler = Callable[[RpcRequest], Tuple[int, Any, float]]


@dataclass
class ActiveSetUpdate:
    """Server→client notification of the QP scheduler's new active set."""

    active_indices: List[int]
    credit_batch: int


class _ServerChannel:
    """Server-side state of one QP of one client handle."""

    __slots__ = ("index", "server_qp", "request_ring", "resp_rkey", "resp_addr",
                 "pending_grant", "active", "posted_writes", "responses_sent",
                 "messages_received", "queued_msgs", "response_accum",
                 "processing")

    def __init__(self, index: int, server_qp: QueuePair, request_ring: RingBuffer,
                 resp_rkey: int, resp_addr: int):
        self.index = index
        self.server_qp = server_qp
        self.request_ring = request_ring
        self.resp_rkey = resp_rkey
        self.resp_addr = resp_addr
        self.pending_grant = 0
        self.active = True
        self.posted_writes = 0
        self.responses_sent = 0
        self.messages_received = 0
        #: Messages routed to the worker but not yet processed; while
        #: more are queued, responses accumulate so the server coalesces
        #: them across request messages (§4.3: "RPC responses are also
        #: coalesced into larger messages").
        self.queued_msgs = 0
        self.response_accum: List[RpcResponse] = []
        #: True while a worker is between popping a message of this QP
        #: and deciding whether to flush — a response is imminent.
        self.processing = False


class _ServerHandle:
    """Server-side state of one connected client."""

    def __init__(self, client_id: int, client_name: str):
        self.client_id = client_id
        self.client_name = client_name
        self.channels: List[_ServerChannel] = []
        self.active_set: List[int] = []
        #: Requests received since the last redistribution — the paper's
        #: dormancy test is "does not issue any request within a
        #: scheduling interval", which must hold even before the sender's
        #: first credit renewal arrives.
        self.requests_in_interval = 0


#: Sentinel handler: requests for this RPC id are queued for the
#: application to pull with ``fl_recv_rpc`` and answer with
#: ``fl_send_res`` instead of running a registered function.
MANUAL_HANDLER = object()


class FlockServer:
    """The receiver: request dispatch, handlers, and QP scheduling."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cfg: FlockConfig, cpu: Optional[CpuConfig] = None,
                 n_workers: Optional[int] = None):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.cfg = cfg
        self.cpu = cpu or node.cpu_cfg
        self.handlers: Dict[int, RpcHandler] = {}
        #: Shared RCQ the QP scheduler polls for credit write-with-imms (§7).
        self.sched_cq = CompletionQueue(sim, name="sched-rcq")
        self.clients: Dict[int, _ServerHandle] = {}
        self._next_client_id = 0
        self.util = UtilizationTable()
        # One worker per core, one core reserved for the QP scheduler.
        self.n_workers = n_workers if n_workers is not None else max(1, len(node.cpu) - 1)
        self._inboxes: List[TrackedStore] = self._make_inboxes(self.n_workers)
        self._rings_per_worker = [0] * self.n_workers
        self._next_channel_rr = 0
        self.requests_handled = 0
        self.messages_handled = 0
        self.renewals_handled = 0
        self.redistributions = 0
        #: Requests awaiting application-driven dispatch (fl_recv_rpc).
        self.manual_inbox: Store = Store(sim)
        #: Attach a :class:`repro.sim.Tracer` to record scheduler events.
        self.tracer = null_tracer
        # Typed instruments (no-op unless telemetry installed on sim).
        metrics = sim.metrics
        self._m_requests = metrics.counter("flock.server.requests")
        self._m_messages = metrics.counter("flock.server.messages")
        self._m_renewals = metrics.counter("flock.server.renewals")
        self._m_grants_piggybacked = metrics.counter("flock.grants.piggybacked")
        self._m_grants_dedicated = metrics.counter("flock.grants.dedicated")
        self._m_grants_declined = metrics.counter("flock.grants.declined")
        self._m_redistributions = metrics.counter("flock.redistributions")
        self._m_resp_degree = metrics.histogram("flock.response_degree")
        #: Server-side view of scheduler holds: how long each (client,
        #: qp) pair spent deactivated between redistributions.
        self.hold_ledger = HoldLedger()
        self._m_hold_ns = metrics.counter("flock.qp_hold_ns")
        if metrics.enabled:
            metrics.gauge("flock.active_qps",
                          fn=lambda: self.total_active_qps,
                          server=node.name)
        #: Occupancy tracker (cost observatory); cached like the metric
        #: instruments.  Active-QP budget occupancy is set at both
        #: mutation sites (registration, redistribution).
        self._occ = sim.occupancy
        #: Optional :class:`repro.flock.tenancy.TenantManager` — when set,
        #: the QP budget is split hierarchically across tenants first
        #: (the §9 multi-application extension).
        self.tenancy = None
        self._started = False
        sim.register_component(self)

    # -- bootstrap -----------------------------------------------------------

    def _make_inboxes(self, n: int) -> List[TrackedStore]:
        """Worker inboxes with queue accounting when telemetry is live
        (the Little's-law auditor treats them as the server queue)."""
        track = self.sim.metrics.enabled
        return [TrackedStore(self.sim, track=track,
                             name="%s.inbox%d" % (self.node.name, i))
                for i in range(n)]

    def set_n_workers(self, n: int) -> None:
        """Resize the worker pool (before :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot resize a started server")
        self.n_workers = max(1, n)
        self._inboxes = self._make_inboxes(self.n_workers)
        self._rings_per_worker = [0] * self.n_workers

    def register_handler(self, rpc_id: int, handler: RpcHandler) -> None:
        """``fl_reg_handler``: install the function run for ``rpc_id``."""
        self.handlers[rpc_id] = handler

    def start(self) -> None:
        """Launch worker, scheduler, and redistribution processes."""
        if self._started:
            return
        self._started = True
        for idx in range(self.n_workers):
            self.sim.spawn(self._worker_loop(idx), name="flock-worker%d" % idx)
        self.sim.spawn(self._renewal_loop(), name="flock-qpsched")
        self.sim.spawn(self._redistribution_loop(), name="flock-redistribute")

    def accept(self, client_node: Node, n_qps: int, ring_slots: int):
        """Server half of ``fl_connect``: allocate QPs, rings, state.

        Returns (client_id, server handle) — the client builds the
        matching :class:`QpChannel` objects around them.  The initial
        active set already respects MAX_AQP: a new client gets the
        average allocation per connected sender (§5.1), so the server's
        NIC cache is never flooded by a bootstrap burst across every QP
        of every client.
        """
        n_existing = len(self.clients)
        client_id = self._next_client_id
        self._next_client_id += 1
        shandle = _ServerHandle(client_id, client_node.name)
        initial = min(n_qps, max(1, self.cfg.max_aqp // (n_existing + 1)))
        shandle.active_set = list(range(initial))
        self.clients[client_id] = shandle
        if self._occ is not None:
            self._occ.set_level("flock.active_qps", self.sim.now,
                                self.total_active_qps,
                                capacity=self.cfg.max_aqp)
        self.util.ensure_client(client_id)
        return client_id, shandle

    def create_server_qp(self) -> QueuePair:
        return QueuePair(self.sim, self.node, self.fabric, Transport.RC,
                         recv_cq=self.sched_cq)

    def attach_channel(self, shandle: _ServerHandle, schannel: _ServerChannel) -> None:
        """Route a new request ring into a worker inbox (round-robin)."""
        worker = self._next_channel_rr % self.n_workers
        self._next_channel_rr += 1
        self._rings_per_worker[worker] += 1
        inbox = self._inboxes[worker]

        def on_message(msg, _shandle=shandle, _schannel=schannel, _inbox=inbox):
            msg.arrived_ns = self.sim.now
            _schannel.queued_msgs += 1
            _inbox.try_put((_shandle, _schannel, msg))

        schannel.request_ring.on_message = on_message
        shandle.channels.append(schannel)

    # -- request processing ------------------------------------------------------

    def _execute(self, request: RpcRequest) -> Tuple[int, Any, float]:
        handler = self.handlers.get(request.rpc_id)
        if handler is None:
            raise KeyError("no handler registered for RPC id %d" % request.rpc_id)
        return handler(request)

    def _worker_loop(self, worker_idx: int) -> Generator[Event, None, None]:
        core = self.node.cpu[worker_idx]
        inbox = self._inboxes[worker_idx]
        cpu = self.cpu
        while True:
            shandle, schannel, msg = yield inbox.get()
            t_pop = self.sim.now
            schannel.messages_received += 1
            schannel.queued_msgs -= 1
            schannel.processing = True
            shandle.requests_in_interval += len(msg.entries)
            self.messages_handled += 1
            self._m_messages.inc()
            schannel.request_ring.consume(msg.total_bytes)
            n = len(msg.entries)
            # Network-stack CPU: detect the message (ring poll amortized
            # over the rings this worker scans) and decode each request.
            net_ns = (cpu.ring_poll_ns
                      + cpu.ring_scan_per_qp_ns * self._rings_per_worker[worker_idx]
                      + cpu.decode_ns * n)
            yield core.charge(net_ns, "net-poll")
            responses: List[RpcResponse] = []
            app_ns = 0.0
            for request in msg.entries:
                span = request.span
                if span is not None:
                    # Fold the shared hardware phases of the coalesced
                    # message into this RPC's own trace, then record the
                    # time it waited between ring landing and worker pop.
                    if msg.span is not None:
                        span.adopt(msg.span, claim=True)
                    span.add_phase("server_queue", msg.arrived_ns, t_pop)
                    span.wait("server_queue", msg.arrived_ns, t_pop)
                    span.open("server_handler", t_pop)
                if self.handlers.get(request.rpc_id) is MANUAL_HANDLER:
                    self.manual_inbox.try_put((shandle, schannel, request))
                    continue
                size, payload, cost = self._execute(request)
                app_ns += cost
                responses.append(RpcResponse(
                    thread_id=request.thread_id, seq_id=request.seq_id,
                    rpc_id=request.rpc_id, size=size, payload=payload,
                    span=span,
                ))
                self.requests_handled += 1
                self._m_requests.inc()
            if app_ns > 0:
                yield core.charge(app_ns, "app")
            t_handled = self.sim.now
            for response in responses:
                if response.span is not None:
                    response.span.close("server_handler", t_handled)
            schannel.response_accum.extend(responses)
            # §4.3: the server coalesces responses too.  While more
            # request messages for this QP are already queued, keep
            # accumulating; the last queued message flushes everything in
            # one RDMA write.
            if schannel.response_accum and (
                    schannel.queued_msgs == 0
                    or len(schannel.response_accum) >= self.cfg.max_combine):
                batch, schannel.response_accum = schannel.response_accum, []
                yield from self._flush_responses(core, shandle, schannel,
                                                 batch)
            schannel.processing = False

    def _flush_responses(self, core, shandle: _ServerHandle,
                         schannel: _ServerChannel,
                         responses: List[RpcResponse]) -> Generator[Event, None, None]:
        """Coalesce the responses of one request message into one RDMA
        write back to the client's response ring (§4.3)."""
        rmsg = CoalescedMessage(entries=responses)
        rmsg.piggyback_head = schannel.request_ring.head_bytes
        if schannel.pending_grant:
            rmsg.piggyback_credits = schannel.pending_grant
            schannel.pending_grant = 0
        yield core.charge(self.cpu.header_build_ns + self.cpu.mmio_ns, "net-send")
        self._m_resp_degree.observe(len(responses))
        t_post = self.sim.now
        if self.sim.spans.enabled:
            # Hardware-facing span for the response write; member RPC
            # spans adopt its phases/waits at client-side dispatch so
            # the response leg is attributable too.
            rmsg.span = self.sim.spans.begin(
                "flock.rsp", track="hw:%s" % self.node.name,
                t=t_post, degree=len(responses), bytes=rmsg.total_bytes)
        for response in responses:
            response.posted_ns = t_post
            if response.span is not None:
                # The response leg: server post → client-side completion.
                response.span.open("response", t_post)
        schannel.posted_writes += 1
        signaled = schannel.posted_writes % max(1, self.cfg.signal_every) == 0
        schannel.server_qp.post_send(WorkRequest(
            verb=Verb.WRITE, length=rmsg.total_bytes,
            remote_addr=schannel.resp_addr, rkey=schannel.resp_rkey,
            payload=rmsg, signaled=signaled, span=rmsg.span,
        ))
        schannel.responses_sent += len(responses)

    # -- QP scheduler: credit renewals (§5.1, §7) -----------------------------------

    def _renewal_loop(self) -> Generator[Event, None, None]:
        core = self.node.cpu[len(self.node.cpu) - 1]
        while True:
            wc = yield self.sched_cq.wait_pop()
            request = wc.payload
            if not isinstance(request, RenewRequest):
                continue
            yield core.charge(self.cpu.cq_poll_ns + 60.0, "net-sched")
            self.renewals_handled += 1
            self._m_renewals.inc()
            shandle = self.clients.get(request.client_id)
            if shandle is None:
                continue
            schannel = shandle.channels[request.qp_index]
            self.util.report(request.client_id, request.qp_index,
                             request.median_degree)
            if request.qp_index in shandle.active_set:
                if (schannel.queued_msgs > 0 or schannel.response_accum
                        or schannel.processing):
                    # Responses for queued requests will flush shortly —
                    # piggyback the grant on one of them (§5.1).
                    self.tracer.emit("grant_piggybacked",
                                     client=request.client_id,
                                     qp=request.qp_index)
                    self._m_grants_piggybacked.inc()
                    schannel.pending_grant += self.cfg.credit_batch
                    self.sim.spawn(
                        self._grant_watchdog(shandle, schannel),
                        name="grant-watchdog",
                    )
                else:
                    # Nothing to piggyback on: the sender is about to run
                    # dry, push a dedicated grant immediately.
                    self.tracer.emit("grant_dedicated",
                                     client=request.client_id,
                                     qp=request.qp_index)
                    self._m_grants_dedicated.inc()
                    yield from self._send_control(
                        schannel,
                        CreditGrant(qp_index=schannel.index,
                                    credits=self.cfg.credit_batch),
                        GRANT_BYTES,
                    )
            else:
                # Declined: deactivates the QP at the sender (§5.1).
                self.tracer.emit("credit_declined", client=request.client_id,
                                 qp=request.qp_index)
                self._m_grants_declined.inc()
                yield from self._send_control(
                    schannel, CreditGrant(qp_index=schannel.index, credits=0),
                    GRANT_BYTES,
                )

    def _grant_watchdog(self, shandle: _ServerHandle,
                        schannel: _ServerChannel) -> Generator[Event, None, None]:
        """Piggyback grants on responses (§5.1); if the QP goes quiet
        before a response flushes, push a dedicated grant message."""
        yield self.sim.timeout(1_000.0)
        if schannel.pending_grant:
            credits, schannel.pending_grant = schannel.pending_grant, 0
            yield from self._send_control(
                schannel, CreditGrant(qp_index=schannel.index, credits=credits),
                GRANT_BYTES,
            )

    def _send_control(self, schannel: _ServerChannel, payload,
                      nbytes: int) -> Generator[Event, None, None]:
        schannel.server_qp.post_send(WorkRequest(
            verb=Verb.WRITE, length=nbytes, remote_addr=schannel.resp_addr,
            rkey=schannel.resp_rkey, payload=payload, signaled=False,
        ))
        return
        yield  # pragma: no cover — generator marker

    # -- QP scheduler: periodic redistribution (§5.1) ---------------------------------

    def _redistribution_loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.cfg.sched_interval_ns)
            self._redistribute()

    def _redistribute(self) -> None:
        if not self.clients:
            return
        per_client = self.util.per_client()
        # Senders that issued requests but have not renewed credits yet
        # (e.g. right after bootstrap, with credits still unspent) are
        # *functioning*, not dormant: fold their observed request count
        # into the utilization signal at one renewal-equivalent per
        # credit batch.
        for cid, shandle in self.clients.items():
            if shandle.requests_in_interval > 0:
                per_client[cid] = (per_client.get(cid, 0.0)
                                   + shandle.requests_in_interval
                                   / max(1, self.cfg.credit_batch))
            shandle.requests_in_interval = 0
        qps_per_client = {cid: len(sh.channels) for cid, sh in self.clients.items()}
        if self.tenancy is not None:
            alloc = self.tenancy.split(per_client, self.cfg.max_aqp,
                                       qps_per_client)
        else:
            alloc = compute_allocation(per_client, self.cfg.max_aqp,
                                       qps_per_client)
        self.redistributions += 1
        self._m_redistributions.inc()
        for cid, shandle in self.clients.items():
            budget = alloc.get(cid, 1)
            if budget >= len(shandle.channels):
                new_set = list(range(len(shandle.channels)))
            else:
                # Keep the most-utilized QPs active; currently active QPs
                # win ties so the assignment is stable.
                per_qp = self.util.qp_utilization(cid)
                current = set(shandle.active_set)
                ranked = sorted(
                    range(len(shandle.channels)),
                    key=lambda j: (-per_qp.get(j, 0.0), j not in current, j),
                )
                new_set = sorted(ranked[:budget])
            if new_set != sorted(shandle.active_set):
                self.tracer.emit("qp_redistribution", client=cid,
                                 before=len(shandle.active_set),
                                 after=len(new_set))
                shandle.active_set = new_set
                now = self.sim.now
                for schannel in shandle.channels:
                    was_active = schannel.active
                    schannel.active = schannel.index in new_set
                    if was_active and not schannel.active:
                        self.hold_ledger.hold((cid, schannel.index), now)
                    elif schannel.active and not was_active:
                        held = self.hold_ledger.release(
                            (cid, schannel.index), now)
                        if held > 0:
                            self._m_hold_ns.inc(held)
                update = ActiveSetUpdate(active_indices=new_set,
                                         credit_batch=self.cfg.credit_batch)
                ctrl = shandle.channels[new_set[0]]
                self.sim.spawn(
                    self._send_control(ctrl, update, ACTIVE_SET_BYTES),
                    name="active-set",
                )
        if self._occ is not None:
            self._occ.set_level("flock.active_qps", self.sim.now,
                                self.total_active_qps,
                                capacity=self.cfg.max_aqp)
        self.util.reset()

    # -- introspection ---------------------------------------------------------------

    @property
    def total_active_qps(self) -> int:
        return sum(len(sh.active_set) for sh in self.clients.values())


class FlockClient:
    """The sender: connection handles, FLock synchronization, dispatch."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cfg: FlockConfig, cpu: Optional[CpuConfig] = None,
                 seed: int = 0):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.cfg = cfg
        self.cpu = cpu or node.cpu_cfg
        self.rng = random.Random(seed)
        self.handles: List[ConnectionHandle] = []
        #: Attach a :class:`repro.sim.Tracer` to record send-path events.
        self.tracer = null_tracer
        # Typed instruments (no-op unless telemetry installed on sim).
        metrics = sim.metrics
        self._m_rpcs = metrics.counter("flock.client.rpcs")
        self._m_messages = metrics.counter("flock.client.messages")
        self._m_rpcs_coalesced = metrics.counter("flock.client.rpcs_coalesced")
        self._m_rpc_bytes_coalesced = metrics.counter(
            "flock.client.rpc_bytes_coalesced")
        self._m_degree = metrics.histogram("flock.coalescing_degree")
        self._m_msg_bytes = metrics.histogram("flock.message_bytes")
        self._m_migrations = metrics.counter("flock.migrations")
        self._m_stranded = metrics.counter("flock.stranded_slots")
        self._m_renewals_sent = metrics.counter("flock.renewals_sent")
        self._dispatch_inbox: Store = Store(sim)
        #: Coalescing can be disabled for the Fig. 10 ablation.
        self.coalescing_enabled = True
        #: Thread scheduling can be disabled for the Fig. 11 ablation.
        self.thread_scheduling_enabled = True
        self._started = False
        sim.register_component(self)

    # -- connection setup (fl_connect / fl_attach_mreg) ---------------------------

    def connect(self, server: FlockServer, n_qps: Optional[int] = None) -> ConnectionHandle:
        """``fl_connect``: build a connection handle to ``server``."""
        n_qps = n_qps or self.cfg.qps_per_handle
        server.start()
        self.start()
        client_id, shandle = server.accept(self.node, n_qps, self.cfg.ring_slots)
        handle = ConnectionHandle(self.sim, client_id, self.node, server.node)
        resp_slots = 4 * self.cfg.credit_batch + 32
        for index in range(n_qps):
            client_qp = QueuePair(self.sim, self.node, self.fabric, Transport.RC)
            server_qp = server.create_server_qp()
            client_qp.connect(server_qp)
            # Request ring lives at the server; response ring at the client.
            req_region = server.node.memory.register(
                max(self.cfg.ring_bytes, self.cfg.ring_slots * 4096))
            request_ring = RingBuffer(self.sim, req_region, self.cfg.ring_slots,
                                      capacity_bytes=self.cfg.ring_bytes,
                                      name="reqring[c%d,q%d]" % (client_id, index))
            resp_region = self.node.memory.register(resp_slots * 4096)
            response_ring = RingBuffer(self.sim, resp_region, resp_slots,
                                       capacity_bytes=8 * self.cfg.ring_bytes,
                                       name="respring[c%d,q%d]" % (client_id, index))
            ctrl_region = server.node.memory.register(4096)
            channel = QpChannel(
                sim=self.sim, index=index, client_qp=client_qp,
                server_qp=server_qp, request_ring=request_ring,
                response_ring=response_ring,
                sender_view=SenderView(self.cfg.ring_bytes),
                tcq=CombiningQueue(self.cfg.max_combine),
                credits=CreditState(self.sim, self.cfg.credit_batch,
                                    self.cfg.credit_renew_threshold),
                ctrl_rkey=ctrl_region.rkey, ctrl_addr=ctrl_region.addr,
            )
            handle.channels.append(channel)
            schannel = _ServerChannel(index, server_qp, request_ring,
                                      resp_region.rkey, resp_region.addr)
            server.attach_channel(shandle, schannel)
            channel._schannel = schannel  # debugging/introspection only

            def on_response(msg, _handle=handle, _channel=channel):
                self._dispatch_inbox.try_put((_handle, _channel, msg))

            response_ring.on_message = on_response
        # Apply the server's initial MAX_AQP-respecting active set.
        for schannel in shandle.channels:
            schannel.active = schannel.index in shandle.active_set
        handle.apply_active_set(shandle.active_set, self.cfg.credit_batch)
        self.handles.append(handle)
        return handle

    def attach_mreg(self, handle: ConnectionHandle, length: int):
        """``fl_attach_mreg``: register a server-side region for memory
        operations through this handle."""
        region = handle.server_node.memory.register(length)
        handle.attached_mrs[region.rkey] = region
        return region

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.spawn(self._response_dispatcher(), name="flock-dispatch")
        self.sim.spawn(self._thread_scheduler_loop(), name="flock-threadsched")

    # -- the send path (fl_send_rpc / fl_recv_res) -----------------------------------

    def call(self, handle: ConnectionHandle, thread_id: int, rpc_id: int,
             size: int, payload: Any = None) -> Generator[Event, None, RpcResponse]:
        """Issue one RPC and wait for its response (send + recv fused,
        the way applications drive ``fl_send_rpc``/``fl_recv_res``)."""
        response_ev = yield from self.send_rpc(handle, thread_id, rpc_id, size, payload)
        response = yield response_ev
        return response

    def send_rpc(self, handle: ConnectionHandle, thread_id: int, rpc_id: int,
                 size: int, payload: Any = None) -> Generator[Event, None, Event]:
        """``fl_send_rpc``: submit a request; returns the response event
        (``fl_recv_res`` is waiting on it)."""
        state = handle.thread(thread_id)
        # Serialize submissions of this OS thread: its coroutines post one
        # at a time, and a leader tenure blocks the thread (§8.5.2).
        yield state.submit_lock.acquire()
        try:
            channel = handle.qp_for_thread(thread_id)
            yield from self._drain_for_migration(state, channel)
            channel = handle.qp_for_thread(thread_id)
            seq = state.allocate_seq()
            request = RpcRequest(thread_id=thread_id, seq_id=seq,
                                 rpc_id=rpc_id, size=size, payload=payload,
                                 created_ns=self.sim.now)
            self._m_rpcs.inc()
            if self.sim.spans.enabled:
                request.span = self.sim.spans.begin(
                    "rpc", track="%s/t%d" % (self.node.name, thread_id),
                    t=self.sim.now, rpc_id=rpc_id, size=size)
                # Time between submission and the leader collecting the
                # request into a coalesced message.
                request.span.open("client_queue", self.sim.now)
            response_ev = handle.register_pending(thread_id, seq, channel.index)
            state.stats.record(size)
            # Marshalling + copying into the combining buffer happens on
            # the application thread, in parallel with other followers
            # (§4.2).
            yield self.sim.timeout(self.cpu.marshal_ns
                                   + self.cpu.copy_ns_per_byte * size)
            slot = PendingSend(request, self.sim.now)
            slot.sent_event = Event(self.sim)
            if channel.tcq.enqueue(slot):
                # This thread is the leader: it is busy combining until
                # its coalesced message posts.
                self.sim.spawn(self._leader_cycles(handle, channel),
                               name="flock-leader")
                yield slot.sent_event
        finally:
            state.submit_lock.release()
        return response_ev

    def _drain_for_migration(self, state: ThreadState,
                             channel) -> Generator[Event, None, None]:
        """Before first use of a new QP, wait until every request sent on
        the previous QP has completed (§5.2)."""
        old = state.assigned_qp
        if old is not None and old != channel.index and state.outstanding_per_qp.get(old):
            ev = state.drain_events.get(old)
            if ev is None or ev.triggered:
                ev = Event(self.sim)
                state.drain_events[old] = ev
            yield ev
        state.assigned_qp = channel.index

    def _enqueue(self, handle: ConnectionHandle, channel, slot: PendingSend) -> None:
        if slot.sent_event is None:
            slot.sent_event = Event(self.sim)
        if channel.tcq.enqueue(slot):
            self.sim.spawn(self._leader_cycles(handle, channel), name="flock-leader")

    def _note_blocked(self, tcq, resource: str, t0: float) -> None:
        """Record a leader-level stall (out of credits, no ring space) as
        a wait edge on every request queued behind the leader.  Each
        request is only charged from the moment it enqueued."""
        if not self.sim.spans.enabled:
            return
        t1 = self.sim.now
        if t1 <= t0:
            return
        for slot in tcq.pending:
            span = getattr(slot.request, "span", None)
            if span is not None:
                span.wait(resource, max(t0, slot.enqueued_ns), t1)

    # -- FLock synchronization: the leader (§4.2) ------------------------------------

    def _leader_cycles(self, handle: ConnectionHandle,
                       channel) -> Generator[Event, None, None]:
        """Run combining cycles until the TCQ drains.  Each iteration is
        one (transient) leader tenure; continuing the loop models the
        MCS-style handoff to the next queued thread."""
        tcq = channel.tcq
        while True:
            if not channel.active:
                self._migrate_stranded(handle, channel)
                tcq.leader_active = False
                return
            rpc_pending = any(isinstance(s.request, RpcRequest) for s in tcq.pending)
            if rpc_pending and channel.credits.credits == 0:
                self._maybe_renew(handle, channel)
                wait_t0 = self.sim.now
                yield channel.credits.wait_for_credits()
                self._note_blocked(tcq, "credit_wait", wait_t0)
                continue
            if rpc_pending:
                first = next(s for s in tcq.pending
                             if isinstance(s.request, RpcRequest))
                first_bytes = coalesced_size([first.request.size])
                if not channel.sender_view.has_space(first_bytes):
                    # §4.1: the sender checks its cached copy of the
                    # remote Head and waits for free ring space
                    # (refreshed by heads piggybacked on responses).
                    wait_t0 = self.sim.now
                    yield channel.sender_view.wait_for_space(self.sim,
                                                             first_bytes)
                    self._note_blocked(tcq, "ring_space", wait_t0)
                    continue
            if rpc_pending and self.fabric.dcqcn_active:
                # DCQCN pacing meets FLock synchronization: when the
                # flow's rate was cut, the leader holds the doorbell for
                # the pacing clearance with the combining queue still
                # open — followers keep piling in, so congestion makes
                # coalescing *deepen* (fewer, larger messages into the
                # hot port) rather than throughput-collapse per message.
                state = self.fabric.dcqcn_for(self.node.name,
                                              channel.client_qp.qpn)
                delay = state.clearance(self.sim.now)
                if delay > 0:
                    wait_t0 = self.sim.now
                    yield self.sim.timeout(delay)
                    self._note_blocked(tcq, "ecn_throttle", wait_t0)
                    continue
            # The leader's combining window: while it sets up the header
            # and doorbell, concurrent followers copy their payloads into
            # the message (§4.2) — so the batch is taken AFTER the window,
            # including any arrivals during it.
            window_t0 = self.sim.now
            yield self.sim.timeout(self.cpu.header_build_ns
                                   + self.cpu.mmio_ns)
            limit = tcq.max_combine if self.coalescing_enabled else 1
            if rpc_pending:
                limit = min(limit, max(1, channel.credits.credits))
            byte_budget = min(self.cfg.max_combine_bytes,
                              channel.sender_view.available_bytes())
            batch = []
            n_rpc = 0
            wire = coalesced_size([])
            while tcq.pending and len(batch) < limit:
                nxt = tcq.pending[0]
                if isinstance(nxt.request, RpcRequest):
                    if n_rpc >= channel.credits.credits:
                        break
                    entry_bytes = META_BYTES + nxt.request.size
                    if n_rpc > 0 and wire + entry_bytes > byte_budget:
                        break  # coalesced message would outgrow the ring
                    wire += entry_bytes
                    n_rpc += 1
                batch.append(tcq.pending.popleft())
            if not batch:
                if not tcq.handoff():
                    return
                continue
            for slot in batch:
                slot.copied = True
            yield from self._post_batch(handle, channel, batch, window_t0)
            if not tcq.handoff():
                return

    def _post_batch(self, handle: ConnectionHandle, channel,
                    batch: List[PendingSend],
                    window_t0: Optional[float] = None) -> Generator[Event, None, None]:
        rpc_slots = [s for s in batch if isinstance(s.request, RpcRequest)]
        mem_slots = [s for s in batch if isinstance(s.request, MemOp)]
        # The header/doorbell window was charged before collection; what
        # remains is polling each follower's copy-completion flag.
        if len(batch) > 1:
            yield self.sim.timeout(20.0 * (len(batch) - 1))
        if rpc_slots:
            consumed = channel.credits.try_consume(len(rpc_slots))
            assert consumed, "leader batched more RPCs than credits"
            msg = CoalescedMessage(entries=[s.request for s in rpc_slots])
            msg.msg_id = channel.sender_view.allocate(msg.total_bytes)
            self._m_messages.inc()
            self._m_degree.observe(len(rpc_slots))
            self._m_rpcs_coalesced.inc(len(rpc_slots))
            self._m_rpc_bytes_coalesced.inc(
                sum(s.request.size for s in rpc_slots))
            self._m_msg_bytes.observe(msg.total_bytes)
            t_post = self.sim.now
            if self.sim.spans.enabled:
                # One hardware-facing span per coalesced message; member
                # RPC spans adopt its phases at the server.
                doorbell_t0 = window_t0 if window_t0 is not None else t_post
                msg.span = self.sim.spans.begin(
                    "flock.msg", track="hw:%s" % self.node.name,
                    t=doorbell_t0, qp=channel.index,
                    degree=len(rpc_slots), bytes=msg.total_bytes)
                msg.span.add_phase("doorbell_mmio", doorbell_t0, t_post)
                for slot in rpc_slots:
                    if slot.request.span is not None:
                        slot.request.span.close("client_queue", t_post)
            signaled = channel.next_signaled(self.cfg.signal_every)
            channel.client_qp.post_send(WorkRequest(
                verb=Verb.WRITE, length=msg.total_bytes,
                remote_addr=channel.request_ring.region.addr,
                rkey=channel.request_ring.region.rkey,
                payload=msg, signaled=signaled, span=msg.span,
            ))
            channel.tcq.record_message(len(rpc_slots))
            if self.tracer.enabled:
                self.tracer.emit("coalesced_message", qp=channel.index,
                                 degree=len(rpc_slots),
                                 bytes=msg.total_bytes)
        for slot in mem_slots:
            op: MemOp = slot.request
            signaled = channel.next_signaled(self.cfg.signal_every)
            done = channel.client_qp.post_send(WorkRequest(
                verb=op.verb, length=op.size, remote_addr=op.remote_addr,
                rkey=op.rkey, compare=op.compare, swap_or_add=op.swap_or_add,
                payload=op.payload, signaled=signaled,
            ))
            done.add_callback(slot_completion(slot))
        if mem_slots and not rpc_slots:
            # Coalescing degree for pure memory-op batches counts the
            # concurrent operations the leader posted (§6).
            channel.tcq.record_message(len(mem_slots))
        self._maybe_renew(handle, channel)
        for slot in batch:
            if not slot.sent_event.triggered:
                slot.sent_event.succeed()

    def _maybe_renew(self, handle: ConnectionHandle, channel) -> None:
        if channel.credits.needs_renewal():
            channel.credits.mark_renewal_sent()
            self._m_renewals_sent.inc()
            self.sim.spawn(self._send_renewal(handle, channel), name="flock-renew")

    def _send_renewal(self, handle: ConnectionHandle,
                      channel) -> Generator[Event, None, None]:
        """Write-with-imm credit request carrying the median coalescing
        degree since the last renewal (§5.1, §7)."""
        request = RenewRequest(client_id=handle.client_id,
                               qp_index=channel.index,
                               median_degree=channel.tcq.median_degree())
        yield self.sim.timeout(self.cpu.mmio_ns)
        channel.client_qp.post_send(WorkRequest(
            verb=Verb.WRITE_IMM, length=RENEW_BYTES,
            remote_addr=channel.ctrl_addr, rkey=channel.ctrl_rkey,
            payload=request, imm=channel.index, signaled=False,
        ))

    def _migrate_stranded(self, handle: ConnectionHandle, channel) -> None:
        """Re-home queued sends from a deactivated QP onto the threads'
        newly assigned QPs (§5.2)."""
        stranded = list(channel.tcq.pending)
        channel.tcq.pending.clear()
        if stranded:
            self._m_migrations.inc()
            self._m_stranded.inc(len(stranded))
            if self.tracer.enabled:
                self.tracer.emit("migration", qp=channel.index,
                                 stranded=len(stranded))
            if self.sim.spans.enabled:
                # The time between the scheduler deactivating this QP and
                # the migration is a scheduler-imposed hold on every
                # stranded request.
                now = self.sim.now
                held_since = handle.holds.held_since(channel.index)
                for slot in stranded:
                    span = getattr(slot.request, "span", None)
                    if span is not None:
                        t0 = max(slot.enqueued_ns,
                                 held_since if held_since is not None else now)
                        span.wait("qp_hold", t0, now)
        for slot in stranded:
            thread_id = slot.request.thread_id
            new_channel = handle.qp_for_thread(thread_id)
            entry = None
            if isinstance(slot.request, RpcRequest):
                entry = handle.pending.get((thread_id, slot.request.seq_id))
            if entry is not None:
                state = handle.thread(thread_id)
                state.dec_outstanding(channel.index)
                state.inc_outstanding(new_channel.index)
                handle.pending[(thread_id, slot.request.seq_id)] = (
                    entry[0], new_channel.index)
            self._enqueue(handle, new_channel, slot)

    # -- response dispatcher (§4.3) ------------------------------------------------

    def _response_dispatcher(self) -> Generator[Event, None, None]:
        """One lightweight thread relays responses across all QPs."""
        while True:
            handle, channel, msg = yield self._dispatch_inbox.get()
            if isinstance(msg, CoalescedMessage):
                channel.response_ring.consume(msg.total_bytes)
            elif isinstance(msg, CreditGrant):
                channel.response_ring.consume(GRANT_BYTES)
            else:
                channel.response_ring.consume(ACTIVE_SET_BYTES)
            if isinstance(msg, CreditGrant):
                yield self.sim.timeout(self.cpu.ring_poll_ns)
                channel.credits.on_grant(msg)
                if msg.credits <= 0:
                    channel.active = False
                    handle.holds.hold(channel.index, self.sim.now)
                    self._migrate_stranded(handle, channel)
                continue
            if isinstance(msg, ActiveSetUpdate):
                yield self.sim.timeout(self.cpu.ring_poll_ns)
                self._apply_active_set(handle, msg)
                continue
            yield self.sim.timeout(self.cpu.ring_poll_ns
                                   + 25.0 * len(msg.entries))
            channel.sender_view.observe_head(msg.piggyback_head)
            if msg.piggyback_credits:
                channel.credits.on_grant(CreditGrant(
                    qp_index=channel.index, credits=msg.piggyback_credits))
            t_done = self.sim.now
            for response in msg.entries:
                span = response.span
                if span is not None:
                    if msg.span is not None:
                        # Fold the response write's hardware phases and
                        # waits into the RPC span (claimed, so the
                        # message span is not double-counted).
                        span.adopt(msg.span, claim=True)
                    span.close("response", t_done)
                    span.finish(t_done)
                handle.complete_pending(response.thread_id, response.seq_id,
                                        response)

    def _apply_active_set(self, handle: ConnectionHandle,
                          update: ActiveSetUpdate) -> None:
        stranded = handle.apply_active_set(update.active_indices,
                                           update.credit_batch)
        # Threads mapped to deactivated QPs get re-striped immediately;
        # Algorithm 1 refines the mapping at the next scheduling tick.
        for thread_id, qp_index in list(handle.thread_qp_map.items()):
            if not handle.channels[qp_index].active:
                del handle.thread_qp_map[thread_id]
        for slot in stranded:
            new_channel = handle.qp_for_thread(slot.request.thread_id)
            self._enqueue(handle, new_channel, slot)

    # -- sender-side thread scheduler (§5.2) ------------------------------------------

    def _thread_scheduler_loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.cfg.thread_sched_interval_ns)
            if not self.thread_scheduling_enabled:
                continue
            for handle in self.handles:
                self.reschedule_threads(handle)

    def reschedule_threads(self, handle: ConnectionHandle) -> None:
        active = handle.active_indices
        if not active or not handle.threads:
            return
        snapshots = [state.stats.snapshot_and_reset()
                     for state in handle.threads.values()]
        mapping = assign_threads(snapshots, active, rng=self.rng,
                                 current=handle.thread_qp_map)
        handle.apply_assignment(mapping)


def slot_completion(slot: PendingSend):
    """Callback firing a memory-op slot's completion with its WC."""

    def _cb(event):
        response_ev = getattr(slot, "response_event", None)
        if response_ev is not None and not response_ev.triggered:
            response_ev.succeed(event.value)

    return _cb
