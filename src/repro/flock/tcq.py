"""FLock synchronization: the thread combining queue (paper §4.2).

Threads sharing a QP coordinate through a per-QP TCQ modelled on the MCS
queue lock: a thread atomically appends itself; if it lands at the head
it becomes the **leader**, otherwise a **follower** whose request will be
coalesced by the current leader.  The leader hands buffers to concurrent
followers, waits for their copy-completion flags, builds one coalesced
message, issues a single RDMA write, and passes leadership to the first
follower whose request did not fit (bounded combining guarantees leader
progress).

In the simulator the atomic swap is the (deterministic) append below, and
"concurrent" is literal: whatever is queued when the leader collects its
batch.  Leadership is transient exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..sim import percentile

__all__ = ["CombiningQueue", "PendingSend"]


class PendingSend:
    """One thread's queued send: the slot a follower hands to the leader."""

    __slots__ = ("request", "copied", "sent_event", "response_event", "enqueued_ns")

    def __init__(self, request, enqueued_ns: float):
        self.request = request
        self.copied = False
        #: Fired by the leader once the coalesced message containing this
        #: request has been posted (the follower resumes then).
        self.sent_event = None
        #: Memory operations only: fired with the verbs completion.
        self.response_event = None
        self.enqueued_ns = enqueued_ns


class CombiningQueue:
    """Per-QP MCS-style combining queue with bounded batches."""

    def __init__(self, max_combine: int):
        if max_combine < 1:
            raise ValueError("max_combine must be >= 1")
        self.max_combine = max_combine
        self.pending: Deque[PendingSend] = deque()
        self.leader_active = False
        #: Coalescing degrees of messages sent since the last credit
        #: renewal (the leader reports the median; §5.1).
        self.degrees_since_report: List[int] = []
        self.messages_sent = 0
        self.requests_sent = 0
        self.leader_cycles = 0

    # -- enqueue protocol ---------------------------------------------------

    def enqueue(self, slot: PendingSend) -> bool:
        """Atomic-swap append.  Returns True iff the caller is now leader
        (the TCQ tail was null, MCS-style)."""
        self.pending.append(slot)
        if not self.leader_active:
            self.leader_active = True
            return True
        return False

    # -- leader protocol -------------------------------------------------------

    def collect(self) -> List[PendingSend]:
        """Leader: take up to ``max_combine`` queued requests."""
        batch: List[PendingSend] = []
        while self.pending and len(batch) < self.max_combine:
            batch.append(self.pending.popleft())
        for slot in batch:
            slot.copied = True
        return batch

    def record_message(self, degree: int) -> None:
        self.degrees_since_report.append(degree)
        self.messages_sent += 1
        self.requests_sent += degree
        self.leader_cycles += 1

    def handoff(self) -> bool:
        """Leader finished a cycle.  True if leadership passes to the next
        queued thread (another cycle must run); False if the TCQ drained."""
        if self.pending:
            return True
        self.leader_active = False
        return False

    # -- metrics -------------------------------------------------------------

    def median_degree(self) -> int:
        """Median coalescing degree since the last report (>= 1), which the
        leader piggybacks on credit renewals as the QP contention metric."""
        if not self.degrees_since_report:
            return 1
        value = percentile(sorted(self.degrees_since_report), 50.0)
        self.degrees_since_report = []
        return max(1, int(round(value)))

    @property
    def mean_degree(self) -> float:
        if self.messages_sent == 0:
            return 1.0
        return self.requests_sent / self.messages_sent
