"""Credit-based load control (paper §5.1).

A credit is the right to send one RPC request on a QP.  The server hands
each QP ``C`` (default 32) credits at bootstrap; after a sender burns
half, the leader requests ``C`` more via RDMA write-with-imm so the other
half covers the renewal latency.  Declining a renewal deactivates the QP
on both ends — that is how the receiver-side QP scheduler shrinks a
sender's active set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque
from collections import deque

from ..obs import faults
from ..sim import Event, Simulator

__all__ = ["CreditState", "RenewRequest", "CreditGrant"]


@dataclass
class RenewRequest:
    """Sent client→server by write-with-imm (§7): asks for C more credits
    and reports the median coalescing degree since the last request."""

    client_id: int
    qp_index: int
    median_degree: int


@dataclass
class CreditGrant:
    """Server→client: renewed credits (0 means declined → deactivate)."""

    qp_index: int
    credits: int


class CreditState:
    """Client-side credit accounting for one QP."""

    def __init__(self, sim: Simulator, batch: int, renew_threshold: int):
        if batch < 1:
            raise ValueError("credit batch must be >= 1")
        if not 0 < renew_threshold <= batch:
            raise ValueError("renew threshold must be in (0, batch]")
        self.sim = sim
        self.batch = batch
        self.renew_threshold = renew_threshold
        self.credits = batch
        self.renew_outstanding = False
        self.active = True
        self._waiters: Deque[Event] = deque()
        self.renewals_requested = 0
        self.grants_received = 0
        self.declines_received = 0
        #: Credit-conservation ledger for the end-of-run auditor:
        #: issued (bootstrap batch + every grant/reactivation top-up)
        #: must equal consumed + the credits still outstanding.
        self.issued_total = batch
        self.consumed_total = 0
        #: Blocked-on-credits accounting: completely-dry waits and the
        #: total virtual time spent in them (causal wait edges are cut
        #: per queued request by the leader, which knows the spans).
        self.dry_waits = 0
        self.wait_ns = 0.0
        #: Cached ``sim.instrumented``: the wait-time accounting closure
        #: is only allocated when someone (auditor/telemetry) can see it.
        self._obs = sim.instrumented
        #: Occupancy tracker (cost observatory); cached like ``_obs``.
        #: All QPs' pools feed one aggregate available-credits level.
        self._occ = sim.occupancy
        if self._occ is not None:
            self._occ.add("flock.credits.available", sim.now, float(batch))
        sim.register_component(self)

    # -- consumption --------------------------------------------------------

    def try_consume(self, n: int = 1) -> bool:
        """Take ``n`` credits if available."""
        if self.credits >= n:
            self.credits -= n
            self.consumed_total += n
            if self._occ is not None:
                self._occ.add("flock.credits.available", self.sim.now,
                              -float(n))
            return True
        return False

    def needs_renewal(self) -> bool:
        """True when the renew request should be fired (half burnt, none
        outstanding, QP still active)."""
        return (
            self.active
            and not self.renew_outstanding
            and self.credits <= self.renew_threshold
        )

    def mark_renewal_sent(self) -> None:
        self.renew_outstanding = True
        self.renewals_requested += 1

    def wait_for_credits(self) -> Event:
        """Event fired on the next grant (sender ran completely dry)."""
        ev = Event(self.sim)
        self._waiters.append(ev)
        self.dry_waits += 1
        if self._obs:
            t0 = self.sim.now

            def _note(_ev: Event) -> None:
                self.wait_ns += self.sim.now - t0

            ev.add_callback(_note)
        return ev

    # -- grant handling ------------------------------------------------------

    def on_grant(self, grant: CreditGrant) -> None:
        self.renew_outstanding = False
        if grant.credits <= 0:
            self.declines_received += 1
            self.active = False
        else:
            self.grants_received += 1
            self.issued_total += grant.credits
            if not (faults.ACTIVE and "credits.drop_refill" in faults.ACTIVE):
                self.credits += grant.credits
                if self._occ is not None:
                    self._occ.add("flock.credits.available", self.sim.now,
                                  float(grant.credits))
        self._wake()

    def reactivate(self, credits: int) -> None:
        """QP scheduler re-activated this QP with a fresh credit batch."""
        self.active = True
        if credits > self.credits:
            self.issued_total += credits - self.credits
            if self._occ is not None:
                self._occ.add("flock.credits.available", self.sim.now,
                              float(credits - self.credits))
            self.credits = credits
        self.renew_outstanding = False
        self._wake()

    def deactivate(self) -> None:
        self.active = False
        self._wake()

    def _wake(self) -> None:
        while self._waiters:
            self._waiters.popleft().succeed()
