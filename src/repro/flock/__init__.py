"""FLock: scaling RDMA RPCs over shared reliable connections.

The paper's contribution: connection-handle multiplexing (§3), coalesced
leader-follower FLock synchronization (§4), and symbiotic send-recv
scheduling — receiver-side QP scheduling plus sender-side thread
scheduling (§5) — with memory/atomic verbs riding the same machinery (§6).
"""

from .api import FlockNode
from .credits import CreditGrant, CreditState, RenewRequest
from .handle import ConnectionHandle, MemOp, QpChannel, ThreadState
from .memops import MemoryOps
from .message import (
    CANARY_BYTES,
    HEADER_BYTES,
    META_BYTES,
    CoalescedMessage,
    RpcRequest,
    RpcResponse,
    coalesced_size,
)
from .qp_scheduler import UtilizationTable, compute_allocation
from .ringbuf import RingBuffer, RingOverflow, SenderView
from .rpc import ActiveSetUpdate, FlockClient, FlockServer
from .tcq import CombiningQueue, PendingSend
from .tenancy import Tenant, TenantManager
from .thread_scheduler import ThreadStatSnapshot, ThreadStats, assign_threads

__all__ = [
    "ActiveSetUpdate",
    "CANARY_BYTES",
    "CoalescedMessage",
    "CombiningQueue",
    "ConnectionHandle",
    "CreditGrant",
    "CreditState",
    "FlockClient",
    "FlockNode",
    "FlockServer",
    "HEADER_BYTES",
    "META_BYTES",
    "MemOp",
    "MemoryOps",
    "PendingSend",
    "QpChannel",
    "RenewRequest",
    "RingBuffer",
    "RingOverflow",
    "RpcRequest",
    "RpcResponse",
    "SenderView",
    "Tenant",
    "TenantManager",
    "ThreadState",
    "ThreadStatSnapshot",
    "ThreadStats",
    "UtilizationTable",
    "assign_threads",
    "coalesced_size",
    "compute_allocation",
]
