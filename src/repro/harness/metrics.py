"""Measurement utilities shared by every experiment.

Closed-loop workers record per-op latency into a :class:`Recorder` that
only counts completions inside the measurement window (after warmup);
throughput is completed ops per virtual second.  Everything reports in
the paper's units: **Mops** and **µs**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from ..obs.anomaly import detect_run_anomalies
from ..sim import Simulator, percentile, summarize_latencies

__all__ = ["Recorder", "RunResult", "host_block"]


def host_block(sim: Simulator) -> Dict[str, float]:
    """Host-cost summary of a finished run: wall-clock seconds, events
    fired, and events per host second.

    Profiler-independent and cheap (two clock reads per run), so every
    :class:`RunResult` carries it and the runstore can query
    ``fig2a.events_per_sec`` drift across commits.  Kept out of
    ``extras`` on purpose: host timings differ between a serial and a
    parallel run of the same figure, and ``extras`` is part of the
    jobs-invariance fingerprint.
    """
    wall_s = max(perf_counter() - sim.wall_start, 1e-9)
    events = sim.events_processed
    return {
        "wall_s": round(wall_s, 4),
        "events": events,
        "events_per_sec": round(events / wall_s, 1),
    }


class Recorder:
    """Collects completions that fall inside [start, end) virtual time."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.window_start: Optional[float] = None
        self.window_end: Optional[float] = None
        self.ops = 0
        self.latencies_ns: List[float] = []
        self.total_ops = 0
        #: Optional :class:`repro.obs.windows.SloTimeline` fed by
        #: :meth:`record` (passive — never schedules events).
        self.slo_timeline = None

    def open_window(self, start: float, end: float) -> None:
        if end <= start:
            raise ValueError("empty measurement window")
        self.window_start = start
        self.window_end = end

    def attach_slo(self, timeline) -> None:
        """Attach a windowed SLO timeline; every measured completion is
        also observed by the timeline, and :meth:`result` embeds its
        report as ``RunResult.slo``."""
        self.slo_timeline = timeline

    def record(self, started_ns: float, extra: float = 0.0) -> None:
        """Record one completed op that began at ``started_ns``."""
        self.total_ops += 1
        now = self.sim.now
        if self.window_start is None or not (self.window_start <= now < self.window_end):
            return
        self.ops += 1
        latency = now - started_ns + extra
        self.latencies_ns.append(latency)
        if self.slo_timeline is not None:
            self.slo_timeline.observe(now, latency)

    def result(self, **extras) -> "RunResult":
        if self.window_start is None:
            raise RuntimeError("measurement window was never opened")
        duration = self.window_end - self.window_start
        slo = (self.slo_timeline.report()
               if self.slo_timeline is not None else None)
        return RunResult(ops=self.ops, duration_ns=duration,
                         latency=summarize_latencies(self.latencies_ns),
                         extras=dict(extras), slo=slo,
                         anomalies=detect_run_anomalies(
                             slo, label=str(extras.get("system", ""))),
                         host=host_block(self.sim))

    def cdf_us(self, points: int = 20):
        """Latency CDF as (percentile, µs) pairs — Figs. 7/8-style curves."""
        if points < 2:
            raise ValueError("need at least two CDF points")
        if not self.latencies_ns:
            return []
        ordered = sorted(self.latencies_ns)
        return [(p, percentile(ordered, p) / 1e3)
                for p in (i * 100.0 / (points - 1) for i in range(points))]


@dataclass
class RunResult:
    """One experiment data point."""

    ops: int
    duration_ns: float
    latency: Dict[str, float]
    extras: Dict[str, object] = field(default_factory=dict)
    #: The :class:`repro.obs.Telemetry` active during the run (None when
    #: observability was not enabled) — holds spans and metric values.
    telemetry: Optional[object] = field(default=None, repr=False)
    #: End-of-run :class:`repro.obs.AuditReport` (None unless the run
    #: was audited via ``--audit`` / ``REPRO_AUDIT`` / ``audit=True``).
    audit_report: Optional[object] = field(default=None, repr=False)
    #: Windowed SLO timeline report (plain JSON-safe dict from
    #: :meth:`repro.obs.windows.SloTimeline.report`); None when no
    #: timeline was attached.  Unlike telemetry this survives the
    #: parallel executor's pickle boundary.
    slo: Optional[Dict[str, object]] = field(default=None, repr=False)
    #: Anomalies detected on the run's SLO timeline (plain dicts from
    #: :func:`repro.obs.anomaly.detect_run_anomalies`) — changepoints on
    #: per-window p99/goodput, counter bursts.  Empty when no timeline
    #: was attached or nothing fired.  Plain data: crosses the parallel
    #: executor's pickle boundary untouched, so the detected set is
    #: byte-identical for any ``--jobs`` count.
    anomalies: List[dict] = field(default_factory=list, repr=False)
    #: Host-cost block from :func:`host_block` — wall-clock seconds,
    #: events fired, events/sec.  Deliberately **not** part of the
    #: jobs-invariance fingerprint (host timings are machine- and
    #: scheduling-dependent); None only for hand-built results.
    host: Optional[Dict[str, float]] = field(default=None, repr=False)
    #: Cost-observatory report (plain dict from
    #: :meth:`repro.obs.simprof.SimProfile.report`, with the occupancy
    #: heatmap under ``"occupancy"`` when tracked); None unless the run
    #: was profiled via ``--profile`` / ``REPRO_PROFILE``.
    profile: Optional[Dict[str, object]] = field(default=None, repr=False)

    @property
    def mops(self) -> float:
        """Throughput in million ops per (virtual) second."""
        if self.duration_ns <= 0:
            return 0.0
        return self.ops / self.duration_ns * 1e3

    @property
    def median_us(self) -> float:
        return self.latency["median"] / 1e3

    @property
    def p99_us(self) -> float:
        return self.latency["p99"] / 1e3

    @property
    def p999_us(self) -> float:
        # .get: legacy latency dicts predate the p999 summary key.
        return self.latency.get("p999", 0.0) / 1e3

    def row(self) -> Dict[str, float]:
        return {
            "mops": round(self.mops, 3),
            "median_us": round(self.median_us, 2),
            "p99_us": round(self.p99_us, 2),
            "p999_us": round(self.p999_us, 2),
            "ops": self.ops,
        }

    def breakdown(self, name: Optional[str] = "rpc") -> Dict[str, Dict[str, float]]:
        """Phase-level latency breakdown of the run's spans.

        Returns ``{phase: {count, total_ns, mean_ns, max_ns, share}}``
        (see :meth:`repro.obs.SpanLog.breakdown`); empty when the run was
        not traced.
        """
        if self.telemetry is None:
            return {}
        return self.telemetry.breakdown(name)

    def __repr__(self) -> str:
        return ("RunResult(mops=%.3f, median=%.2fus, p99=%.2fus, ops=%d)"
                % (self.mops, self.median_us, self.p99_us, self.ops))
