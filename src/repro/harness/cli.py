"""Command-line experiment runner.

Regenerates any paper figure without pytest::

    python -m repro.harness.cli fig2a
    python -m repro.harness.cli fig6 --threads 1 8 32 --outstanding 1
    python -m repro.harness.cli fig14 --threads 4
    python -m repro.harness.cli list

Each command prints the same paper-style table the benchmark suite
produces.  Use ``--scale`` to lengthen measurement windows.

Observability flags (see ``docs/observability.md``)::

    python -m repro.harness.cli --breakdown fig2a
    python -m repro.harness.cli --trace fig6.trace.json fig6 --threads 8
    python -m repro.harness.cli --metrics fig2a.metrics.json fig2a

``--trace`` writes a Chrome trace-event file (load it at
``ui.perfetto.dev``), ``--metrics`` dumps every counter/gauge/histogram
(JSON, or CSV when the filename ends in ``.csv``), and ``--breakdown``
prints the phase-level latency table aggregated over all traced spans.

Causal critical-path attribution (``docs/observability.md``)::

    python -m repro.harness.cli --attribution fig2a
    python -m repro.harness.cli --attribution-json fig2a.attr.json fig2a
    python -m repro.harness.cli --critical-path fig2a.folded fig2a

``--attribution`` prints, per run, the blocked-time attribution table
over every traced RPC's critical path plus the what-if speedup upper
bound per resource.  ``--attribution-json`` writes the full report
(paths, shares, what-if bounds) as JSON; ``--critical-path`` writes the
critical paths as folded stacks for flamegraph.pl / speedscope (use
``-`` or no filename for stdout).

Auditing and paper-fidelity scorecards::

    python -m repro.harness.cli --audit fig2a
    python -m repro.harness.cli --scorecard out/ fig10
    python -m repro.harness.cli bench-compare --current out/

``--audit`` runs the end-of-run invariant auditors (Little's law, byte
and CQE conservation, credit accounting, ...) after every experiment and
raises on any violation.  ``--scorecard DIR`` writes a
``BENCH_<figure>.json`` scorecard per figure; ``bench-compare`` diffs a
directory of scorecards against the committed baselines in
``benchmarks/baselines`` and exits nonzero on regression.

Anomaly detection and explanations (``docs/observability.md``)::

    python -m repro.harness.cli explain fig2a
    python -m repro.harness.cli explain fig2a --json fig2a.anomalies.json
    python -m repro.harness.cli explain run:latest

``explain fig2a`` reruns the figure with spans on, auto-detects curve
cliffs/knees and per-window changepoints/counter bursts (no per-figure
thresholds), and explains each anomaly as a pre-vs-post attribution
diff — the ranked resource-shift table plus the what-if recovery bound
for the prime suspect.  ``explain run:N`` (or ``run:-1`` /
``run:latest``) explains the anomaly blocks a recorded run's
scorecards carry; ``runs diff A B`` additionally reports anomaly-set
drift (new / vanished / moved) between two runs.

Simulation cost observatory (``docs/observability.md``)::

    python -m repro.harness.cli --profile fig2a
    python -m repro.harness.cli profile --flame fig2a.folded fig2a
    python -m repro.harness.cli profile --census fig6.json fig6 --threads 8

``--profile`` (or the ``profile`` subcommand, which wraps any figure)
runs every simulation through the instrumented loop: wall-clock ns are
attributed to the owning component (fabric, switch, rnic, pcie, cq,
credits, timers, ...), scheduled/dispatched/cancelled events are
censused per virtual-time window, and resource occupancy (DMA engines,
PCIe slots, switch ports, credit pools, QP-scheduler slots) is tracked
as heatmap-ready per-window series.  Virtual-time results are
byte-identical to an unprofiled run.  ``--flame`` writes the host time
as folded stacks; ``--profile-json`` / ``--census`` write the full
report; ``--occupancy`` tracks occupancy without the profiler.  Every
run also records wall-clock seconds and events/sec (profiler-free), so
``runs query 'fig2a.events_per_sec < 2e6'`` can hunt host-cost drift.

Fabric congestion (``docs/network.md``)::

    python -m repro.harness.cli --congestion fig6 --threads 8
    python -m repro.harness.cli --congestion --pfc fig6 --threads 8
    python -m repro.harness.cli --audit incast --senders 12

``--congestion`` routes every transfer through the switched-fabric
model (finite per-port egress buffers, ECN marking, DCQCN rate control
on RC QPs); ``--pfc`` selects lossless PAUSE mode instead of tail drop.
The ``incast`` experiment runs its own congestion sweep internally and
ignores both flags for its baseline legs.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import List

from ..obs import (
    Explanation,
    RunStore,
    Scorecard,
    Telemetry,
    attribute,
    attribution_report,
    compare_dirs,
    current_telemetry,
    disable,
    enable,
    explain_changepoint,
    explain_sweep_anomalies,
    faults,
    folded_lines,
    folded_stacks,
    format_attribution,
    format_breakdown,
    format_explanation,
    load_scorecard,
    what_if_all,
    write_chrome_trace,
)
from ..config import (CONGESTION_ENV, FIDELITY_ENV, FIDELITY_MODES, PFC_ENV,
                      resolved_fidelity_mode)
from ..obs.audit import AUDIT_ENV
from ..obs.occupancy import OCCUPANCY_ENV
from ..obs.simprof import PROFILE_ENV
from .incastbench import IncastConfig, run_incast
from .indexbench import IndexBenchConfig, sweep_index
from .microbench import (
    MicrobenchConfig,
    bench_scale,
    run_erpc,
    run_flock,
    run_raw_reads,
    run_rc,
    run_ud_rpc,
    sweep_flock_vs_erpc,
    sweep_raw_reads,
    sweep_ud_rpc,
)
from ..search import (
    SearchConfig,
    explain_entry,
    format_entry,
    leaderboard_rows,
    run_search,
)
from ..search.objectives import OBJECTIVES
from .parallel import SweepPoint, default_jobs, run_sweep
from .scorecards import (
    scorecard_fig2a,
    scorecard_fig9,
    scorecard_fig10,
    scorecard_fig12,
    scorecard_fig14,
    scorecard_incast,
    scorecard_search,
    scorecards_fig6_7_8,
)
from .tables import latency_cells, latency_columns, print_table
from .txnbench import TxnBenchConfig, run_fasst_txn, run_flocktx, sweep_txn

#: Default committed-baseline directory for ``bench-compare``.
DEFAULT_BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "baselines")


def _emit_scorecard(args, sc) -> None:
    """Write a figure's scorecard when ``--scorecard DIR`` was given."""
    if not getattr(args, "scorecard", None):
        return
    sc.meta["bench_scale"] = bench_scale()
    sc.meta.setdefault("fidelity", resolved_fidelity_mode())
    path = sc.write(args.scorecard)
    print("wrote scorecard: %s (%s)" % (path,
                                        "PASS" if sc.passed else "FAIL"))


def _slo_label(key) -> str:
    """Stable label for a sweep key in the SLO timeline export."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def _collect_slo(args, results) -> None:
    """Gather each run's windowed SLO report for ``--slo-timeline``.

    ``results`` is a figure's sweep dict; values may be RunResults or
    one-level-nested dicts of RunResults (the index benchmark's shape).
    Entries without a timeline (derived floats, legacy results) are
    skipped.  Collection is cheap, so it runs regardless of the flag and
    :func:`main` decides whether to write the file.
    """
    blocks = getattr(args, "_slo_blocks", None)
    if blocks is None:
        blocks = args._slo_blocks = {}
    for key, value in results.items():
        slo = getattr(value, "slo", None)
        if slo is not None:
            blocks[_slo_label(key)] = slo
        elif isinstance(value, dict):
            for sub, nested in value.items():
                nslo = getattr(nested, "slo", None)
                if nslo is not None:
                    blocks[_slo_label(key) + "/" + str(sub)] = nslo
    _collect_profile(args, results)


def _collect_profile(args, results) -> None:
    """Gather each run's cost-observatory and host blocks.

    Piggybacks on :func:`_collect_slo` (every figure command calls it),
    so ``--profile`` / ``--flame`` / ``--profile-json`` work on all ten
    figure runners without per-command wiring.  Profile blocks only
    exist when profiling was enabled; host blocks always do.
    """
    pblocks = getattr(args, "_profile_blocks", None)
    if pblocks is None:
        pblocks = args._profile_blocks = {}
    hblocks = getattr(args, "_host_blocks", None)
    if hblocks is None:
        hblocks = args._host_blocks = {}

    def take(label, value):
        prof = getattr(value, "profile", None)
        if prof is not None:
            pblocks[label] = prof
        host = getattr(value, "host", None)
        if host is not None:
            hblocks[label] = host

    for key, value in results.items():
        take(_slo_label(key), value)
        if isinstance(value, dict):
            for sub, nested in value.items():
                take(_slo_label(key) + "/" + str(sub), nested)


def cmd_fig2a(args) -> None:
    """Fig 2(a): RC read scaling sweep."""
    results = sweep_raw_reads(args.qps, n_clients=args.clients,
                              outstanding_per_qp=2,
                              jobs=default_jobs(args.jobs))
    rows = [[qps, round(result.mops, 2), result.extras["qp_cache_miss"]]
            for qps, result in results.items()]
    print_table("Fig 2(a): RC read throughput vs #QPs",
                ["#QPs", "Mops", "cache miss"], rows)
    _collect_slo(args, results)
    _emit_scorecard(args, scorecard_fig2a(results))


def cmd_fig2b(args) -> None:
    """Fig 2(b): UD RPC sender sweep."""
    results = sweep_ud_rpc(args.senders, n_clients=args.clients,
                           jobs=default_jobs(args.jobs))
    rows = [[senders, round(result.mops, 2), result.extras["server_cpu"]]
            for senders, result in results.items()]
    print_table("Fig 2(b): UD RPC throughput vs #senders",
                ["#senders", "Mops", "server CPU"], rows)
    _collect_slo(args, results)


def cmd_fig6(args) -> None:
    """Figs 6-8: FLock vs eRPC thread sweep."""
    results = sweep_flock_vs_erpc(args.threads, n_clients=args.clients,
                                  outstanding=args.outstanding,
                                  jobs=default_jobs(args.jobs))
    rows = []
    for threads in args.threads:
        flock = results[("flock", args.outstanding, threads)]
        erpc = results[("erpc", args.outstanding, threads)]
        rows.append([threads, round(flock.mops, 2), round(erpc.mops, 2)]
                    + latency_cells(flock) + latency_cells(erpc))
    print_table("Figs 6/7/8: FLock vs eRPC (outstanding=%d)"
                % args.outstanding,
                ["threads", "FLock Mops", "eRPC Mops"]
                + latency_columns("FLock") + latency_columns("eRPC"), rows)
    _collect_slo(args, results)
    for sc in scorecards_fig6_7_8(results):
        _emit_scorecard(args, sc)


def cmd_fig9(args) -> None:
    """Fig 9: QP sharing approaches."""
    points = []
    for threads in args.threads:
        cfg = MicrobenchConfig(n_clients=args.clients,
                               threads_per_client=threads, outstanding=8)
        points.append(SweepPoint("fig9/flock/t=%d" % threads,
                                 run_flock, (cfg,)))
        for tpq in (1, 2, 4):
            points.append(SweepPoint(
                "fig9/rc%d/t=%d" % (tpq, threads), run_rc, (cfg,),
                {"threads_per_qp": tpq}))
    merged = iter(run_sweep(points, default_jobs(args.jobs)))
    results = {}
    rows = []
    for threads in args.threads:
        results[("flock", threads)] = next(merged)[1]
        results[("nosharing", threads)] = next(merged)[1]
        results[("farm2", threads)] = next(merged)[1]
        results[("farm4", threads)] = next(merged)[1]
        rows.append([threads,
                     round(results[("flock", threads)].mops, 2),
                     round(results[("nosharing", threads)].mops, 2),
                     round(results[("farm2", threads)].mops, 2),
                     round(results[("farm4", threads)].mops, 2)])
    print_table("Fig 9: sharing approaches",
                ["threads", "FLock", "no-share", "FaRM-2", "FaRM-4"], rows)
    _collect_slo(args, results)
    _emit_scorecard(args, scorecard_fig9(results))


def cmd_fig10(args) -> None:
    """Fig 10: coalescing on/off."""
    points = []
    for outstanding in args.outstanding_list:
        cfg = MicrobenchConfig(n_clients=args.clients,
                               threads_per_client=32,
                               outstanding=outstanding)
        points.append(SweepPoint("fig10/on/o=%d" % outstanding,
                                 run_flock, (cfg,)))
        points.append(SweepPoint("fig10/off/o=%d" % outstanding,
                                 run_flock, (cfg,),
                                 {"coalescing": False}))
    merged = iter(run_sweep(points, default_jobs(args.jobs)))
    results = {}
    rows = []
    for outstanding in args.outstanding_list:
        with_c = results[(True, outstanding)] = next(merged)[1]
        without_c = results[(False, outstanding)] = next(merged)[1]
        rows.append([outstanding, round(without_c.mops, 2),
                     round(with_c.mops, 2),
                     round(with_c.mops / max(without_c.mops, 1e-9), 2),
                     with_c.extras["mean_coalescing_degree"]])
    print_table("Fig 10: coalescing impact",
                ["outstanding", "off Mops", "on Mops", "speedup",
                 "reqs/msg"], rows)
    _collect_slo(args, results)
    _emit_scorecard(args, scorecard_fig10(results))


def cmd_fig14(args) -> None:
    """Figs 14/15: FLockTX vs FaSST transactions."""
    results = sweep_txn(args.threads, workload=args.workload,
                        jobs=default_jobs(args.jobs))
    rows = []
    for threads in args.threads:
        flock = results[("flocktx", threads)]
        fasst = results[("fasst", threads)]
        rows.append([threads, round(flock.mops, 3), round(fasst.mops, 3),
                     round(flock.p99_us, 1), round(flock.p999_us, 1),
                     round(fasst.p99_us, 1), round(fasst.p999_us, 1)])
    print_table("Figs 14/15: %s — FLockTX vs FaSST" % args.workload,
                ["threads", "FLockTX Mtxn/s", "FaSST Mtxn/s",
                 "FLockTX p99", "FLockTX p999", "FaSST p99", "FaSST p999"],
                rows)
    _collect_slo(args, results)
    builder = scorecard_fig14 if args.workload == "tatp" else None
    if builder is None:
        from .scorecards import scorecard_fig15
        builder = scorecard_fig15
    _emit_scorecard(args, builder(results))


def cmd_fig11(args) -> None:
    """Fig 11: sender-side thread scheduling under mixed payloads."""
    from ..config import FlockConfig
    from ..workloads import BimodalSize

    static_cfg = FlockConfig(max_aqp=100_000)
    points = []
    for size in args.sizes:
        cfg = MicrobenchConfig(
            n_clients=args.clients, threads_per_client=32, outstanding=8,
            sizegen=BimodalSize(n_threads=32, large_size=size))
        points.append(SweepPoint(
            "fig11/nosched/s=%d" % size, run_flock, (cfg,),
            {"qps_per_process": 16, "thread_scheduling": False,
             "flock_cfg": static_cfg}))
        points.append(SweepPoint(
            "fig11/sched/s=%d" % size, run_flock, (cfg,),
            {"qps_per_process": 16}))
    merged = iter(run_sweep(points, default_jobs(args.jobs)))
    rows = []
    results = {}
    for size in args.sizes:
        without = results[("nosched", size)] = next(merged)[1]
        with_sched = results[("sched", size)] = next(merged)[1]
        rows.append([size, round(without.mops, 2), round(with_sched.mops, 2),
                     round(with_sched.mops / max(without.mops, 1e-9), 2)])
    print_table("Fig 11: thread scheduling (90% 64B + 10% large)",
                ["large B", "no-sched Mops", "sched Mops", "speedup"], rows)
    _collect_slo(args, results)


def cmd_fig12(args) -> None:
    """Fig 12: node scalability with increasing client processes."""
    points = []
    for total in args.clients_list:
        procs = max(1, total // args.nodes)
        points.append(SweepPoint(
            "fig12/2t1q/c=%d" % total, run_flock,
            (MicrobenchConfig(n_clients=args.nodes,
                              processes_per_client=procs,
                              threads_per_client=2, outstanding=8),),
            {"qps_per_process": 1}))
        points.append(SweepPoint(
            "fig12/1t1q/c=%d" % total, run_flock,
            (MicrobenchConfig(n_clients=args.nodes,
                              processes_per_client=procs,
                              threads_per_client=1, outstanding=8),),
            {"qps_per_process": 1}))
    merged = iter(run_sweep(points, default_jobs(args.jobs)))
    results = {}
    rows = []
    for total in args.clients_list:
        shared = results[("2t1q", total)] = next(merged)[1]
        one = results[("1t1q", total)] = next(merged)[1]
        rows.append([total, round(one.mops, 2), round(shared.mops, 2),
                     round(shared.p99_us, 1), round(shared.p999_us, 1)])
    print_table("Fig 12: node scalability",
                ["#clients", "1t/1QP Mops", "2t/1QP Mops", "2t/1QP p99 us",
                 "2t/1QP p999 us"],
                rows)
    _collect_slo(args, results)
    _emit_scorecard(args, scorecard_fig12(results))


def cmd_fig16(args) -> None:
    """Figs 16-18: HydraList over FLock vs eRPC."""
    results = sweep_index(args.threads, n_clients=args.clients,
                          outstanding=args.outstanding,
                          jobs=default_jobs(args.jobs))
    rows = []
    for threads in args.threads:
        flock = results[("flock", threads)]
        erpc = results[("erpc", threads)]
        rows.append([threads, round(flock["total_mops"], 2),
                     round(erpc["total_mops"], 2),
                     round(flock["get"].median_us, 1),
                     round(erpc["get"].median_us, 1)])
    print_table("Figs 16-18: HydraList — FLock vs eRPC",
                ["threads", "FLock Mops", "eRPC Mops", "FLock get med",
                 "eRPC get med"], rows)
    _collect_slo(args, results)


def cmd_incast(args) -> None:
    """Extension: N→1 incast degradation under the congestion model."""
    cfg = IncastConfig(n_senders=args.senders,
                       threads_per_client=args.threads,
                       outstanding=args.outstanding)
    if args.pfc_incast:
        from dataclasses import replace
        cfg.congestion = replace(cfg.congestion, pfc=True)
    results = run_incast(cfg, jobs=default_jobs(args.jobs))
    rows = []
    for key in ("flock", "ud"):
        base = results["%s_base" % key]
        cong = results["%s_cong" % key]
        rows.append([key, round(base.mops, 2), round(cong.mops, 2),
                     round(results["%s_retention" % key], 3),
                     cong.extras.get("switch_drops", 0),
                     cong.extras.get("ecn_marks", 0),
                     cong.extras.get("pfc_pauses", 0)])
    print_table("Incast: %d senders x %d threads -> 1 server"
                % (args.senders, args.threads),
                ["system", "base Mops", "cong Mops", "retention",
                 "drops", "marks", "pauses"], rows)
    _collect_slo(args, results)
    _emit_scorecard(args, scorecard_incast(results))


def _search_summary_scorecard(result) -> Scorecard:
    """The light per-search scorecard recorded into run history, so
    ``runs query label=<search_id>`` / ``figure=search`` slice it."""
    sc = Scorecard("search", "scenario search: %s" % result.search_id)
    best = result.best
    sc.add_metric("best_score", best["score"] if best else 0.0,
                  better="info")
    sc.add_metric("n_evals", result.n_evals, better="info")
    sc.add_metric("n_dedup", result.n_dedup, better="info")
    sc.meta["search"] = {
        "search_id": result.search_id,
        "objective": result.objective,
        "seed": result.seed,
        "budget": result.budget,
        "leaderboard": [
            {"rank": rank, "fingerprint": e["fingerprint"],
             "score": e["score"]}
            for rank, e in enumerate(result.leaderboard[:10], start=1)],
    }
    return sc


def cmd_search(args) -> int:
    """Adversarial scenario search (see docs/search.md)."""
    cfg = SearchConfig(objective=args.objective, budget=args.budget,
                       seed=args.seed, jobs=default_jobs(args.jobs),
                       warmup=args.warmup, elites=args.elites)
    result = run_search(cfg, progress=print)
    columns, rows = leaderboard_rows(result, args.top)
    print_table("leaderboard: %s (%d evals, %d dedup)"
                % (result.search_id, result.n_evals, result.n_dedup),
                columns, rows)

    n_explain = (args.explain_top if args.explain_top is not None
                 else min(3, len(result.leaderboard)))
    details = []
    for rank, entry in enumerate(result.leaderboard[:n_explain], start=1):
        detail = explain_entry(entry, seed=cfg.seed)
        details.append(detail)
        print()
        print(format_entry(detail, rank))

    if args.json:
        payload = {"search": result.to_dict(), "explanations": details}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print()
        print("wrote search result: %s" % args.json)

    exported = []
    if args.export_scenario:
        name, _, rank_text = args.export_scenario.partition(":")
        rank = int(rank_text) if rank_text else 1
        if not 1 <= rank <= len(result.leaderboard):
            print("--export-scenario: rank %d out of range (1..%d)"
                  % (rank, len(result.leaderboard)))
            return 1
        if rank <= len(details):
            detail = details[rank - 1]
        else:
            detail = explain_entry(result.leaderboard[rank - 1],
                                   seed=cfg.seed)
        sc = scorecard_search(name, detail, objective=result.objective)
        sc.meta["bench_scale"] = bench_scale()
        sc.meta.setdefault("fidelity", resolved_fidelity_mode())
        path = sc.write(args.scorecard or ".")
        print("wrote scenario scorecard: %s (%s)"
              % (path, "PASS" if sc.passed else "FAIL"))
        exported.append(sc)

    if not args.no_record:
        try:
            rec = RunStore(args.store).record(
                [_search_summary_scorecard(result)] + exported,
                label=result.search_id,
                meta={"objective": result.objective, "seed": result.seed,
                      "budget": result.budget})
            print("recorded search run %d (label %s)"
                  % (rec.run_id, result.search_id))
        except OSError as exc:
            print("warning: could not record search run: %s" % exc)
    return 0


def _emit_attribution(args, telemetry) -> None:
    """Print per-run attribution tables and/or write the JSON report.

    Runs with no traced critical paths (nothing finished, tracing off for
    that runner) are skipped rather than printed empty.
    """
    report = {}
    for run_id in sorted(telemetry.spans.run_labels):
        label = telemetry.spans.run_labels[run_id]
        paths = telemetry.critical_paths(run=run_id)
        if not paths:
            continue
        if args.attribution:
            print()
            print(format_attribution(
                attribute(paths), bounds=what_if_all(paths),
                title="Critical-path attribution (%s)" % label))
        if args.attribution_json:
            report[label] = attribution_report(paths)
    if args.attribution_json:
        import json

        with open(args.attribution_json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote attribution report: %s (%d runs)"
              % (args.attribution_json, len(report)))


def _explain_figure(figure: str, meta: dict, telemetry):
    """Explanations for one figure's recorded anomaly block.

    Sweep anomalies join to the scorecard's ``meta["attribution"]``
    blocks through the stored x → run-label map; within-run anomalies
    (changepoints, counter bursts) are time-split against live critical
    paths when a spans-carrying telemetry is in hand, and degrade to a
    noted partial explanation for stored runs.
    """
    block = meta.get("anomalies") or {}
    attribution = meta.get("attribution") or {}
    labels = block.get("labels") or {}
    exps = explain_sweep_anomalies(block.get("sweep") or [],
                                   attribution, labels)
    rev = {}
    if telemetry is not None:
        rev = {label: rid for rid, label
               in telemetry.spans.run_labels.items()}
    for key in sorted(block.get("runs") or {}):
        run_label = labels.get(key, key)
        run_id = rev.get(run_label)
        for data in block["runs"][key]:
            if run_id is None:
                exps.append(Explanation(
                    anomaly=data, pre_label="", post_label="",
                    note="within-run attribution split needs live spans "
                         "(stored scorecards keep tables, not traces)"))
            else:
                exps.append(explain_changepoint(
                    data, telemetry.critical_paths(run=run_id),
                    label=run_label))
    return exps, block


def _emit_explanations(args, per_figure) -> int:
    """Print explanation blocks (and the ``--json`` report) per figure."""
    report = {}
    total = 0
    for figure in sorted(per_figure):
        exps, block = per_figure[figure]
        total += len(exps)
        print()
        print("=== %s: %d anomal%s ===" % (
            figure, len(exps), "y" if len(exps) == 1 else "ies"))
        if not exps:
            print("no anomalies detected")
        for exp in exps:
            print()
            print(format_explanation(exp))
        report[figure] = {"anomalies": block,
                          "explanations": [e.to_dict() for e in exps]}
    if getattr(args, "explain_json", None):
        with open(args.explain_json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print()
        print("wrote explanation report: %s (%d anomalies)"
              % (args.explain_json, total))
    return 0


def _explain_live_fig2a(args) -> int:
    """Run the Fig. 2a sweep with spans on and explain its anomalies."""
    prev = current_telemetry()
    own = prev is None or not getattr(prev, "wants_spans", False)
    tel = enable(Telemetry(wants_spans=True)) if own else prev
    try:
        # A spans-wanting telemetry forces run_sweep serial, so the
        # detected anomaly set is byte-identical for any --jobs count.
        results = sweep_raw_reads(args.qps, n_clients=args.clients,
                                  outstanding_per_qp=2,
                                  jobs=default_jobs(args.jobs))
        sc = scorecard_fig2a(results)
    finally:
        if own:
            if prev is not None:
                enable(prev)
            else:
                disable()
    _collect_slo(args, results)
    _emit_scorecard(args, sc)
    exps, block = _explain_figure("fig2a", sc.meta, tel)
    return _emit_explanations(args, {"fig2a": (exps, block)})


def _looks_like_run_ref(target: str) -> bool:
    """True when the explain target names a stored run, not a figure."""
    if target.startswith("run:") or target == "latest":
        return True
    try:
        int(target)
    except ValueError:
        return False
    return True


def _explain_stored(args) -> int:
    """Explain the anomaly blocks a recorded run's scorecards carry."""
    try:
        rec = _runstore(args).get(args.target)
    except KeyError as exc:
        print(exc.args[0])
        return 1
    print("explaining run %d (label=%s)" % (rec.run_id, rec.label or "-"))
    per_figure = {}
    for figure in rec.figures:
        meta = rec.scorecards[figure].get("meta", {})
        exps, block = _explain_figure(figure, meta, None)
        if block:
            per_figure[figure] = (exps, block)
    if not per_figure:
        print("run %d recorded no anomalies" % rec.run_id)
        return 0
    return _emit_explanations(args, per_figure)


def cmd_explain(args) -> int:
    """Detect-and-explain: live figure rerun or a stored run's blocks."""
    if _looks_like_run_ref(args.target):
        return _explain_stored(args)
    if args.target != "fig2a":
        print("explain: unsupported live target %r (live: fig2a; "
              "stored: run:N, run:-N, run:latest)" % args.target)
        return 1
    return _explain_live_fig2a(args)


def _emit_profile(args) -> None:
    """Print the cost-observatory summary and write ``--flame`` /
    ``--profile-json`` exports from the collected profile blocks."""
    blocks = getattr(args, "_profile_blocks", {})
    hosts = getattr(args, "_host_blocks", {})
    rows = []
    for label in sorted(blocks):
        rep = blocks[label]
        host = rep.get("host") or {}
        census = rep.get("census") or {}
        buckets = host.get("buckets") or []
        measure = (rep.get("phases") or {}).get("measure") or {}
        top = ("%s %.0f%%" % (buckets[0]["component"],
                              buckets[0]["share"] * 100.0)
               if buckets else "-")
        rows.append([label,
                     round(host.get("total_ns", 0) / 1e6, 2),
                     census.get("dispatched", "-"),
                     int(measure.get("events_per_sec") or 0) or "-",
                     census.get("dominant_component", "-"),
                     top])
    if rows:
        print()
        print_table("Cost observatory",
                    ["run", "host ms", "dispatched", "ev/s (measure)",
                     "top events", "top host time"], rows)
    if getattr(args, "flame", None):
        weights = {}
        for label, rep in blocks.items():
            for b in (rep.get("host") or {}).get("buckets", ()):
                key = "%s;%s;%s" % (label, b["component"], b["kind"])
                weights[key] = weights.get(key, 0.0) + b["ns"]
        with open(args.flame, "w") as fh:
            fh.write(folded_lines(weights))
        print("wrote host-time flamegraph: %s (%d frames)"
              % (args.flame, len(weights)))
    if getattr(args, "profile_json", None):
        with open(args.profile_json, "w") as fh:
            json.dump({"runs": blocks, "host": hosts}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote cost-observatory report: %s (%d runs)"
              % (args.profile_json, len(blocks)))


def cmd_profile(args) -> int:
    """Re-dispatch a figure run with the cost observatory on.

    ``repro profile --flame f.folded fig2a --qps 22 704`` is exactly
    ``repro --profile --flame f.folded fig2a --qps 22 704``; the
    subcommand exists so profiling any figure is one word, with the
    figure's own flags passed through verbatim.
    """
    rest = [a for a in args.rest if a != "--"]
    if not rest:
        print("profile: name a figure to profile (profile fig2a ...)")
        return 2
    os.environ[PROFILE_ENV] = "1"
    os.environ[OCCUPANCY_ENV] = "0" if args.no_occupancy else "1"
    argv = []
    if args.flame:
        argv += ["--flame", args.flame]
    if args.census:
        argv += ["--profile-json", args.census]
    return main(argv + rest)


def cmd_bench_compare(args) -> int:
    """Gate current scorecards against committed baselines."""
    report = compare_dirs(args.baseline, args.current, figures=args.figures)
    print(report.format())
    return 0 if report.ok else 1


def _runstore(args) -> RunStore:
    """The run store the ``runs`` subcommands operate on."""
    return RunStore(args.store)


def cmd_runs_list(args) -> int:
    """List every recorded run."""
    records = _runstore(args).list()
    if not records:
        print("run store is empty (%s)" % _runstore(args).path)
        return 0
    print_table("run history",
                ["id", "when", "label", "commit", "config", "figures",
                 "checks"],
                [rec.summary_row() for rec in records])
    return 0


def cmd_runs_show(args) -> int:
    """Show one run's scorecards in full."""
    try:
        rec = _runstore(args).get(args.ref)
    except KeyError as exc:
        print(exc.args[0])
        return 1
    head = rec.summary_row()
    print("run %s  %s  label=%s  commit=%s  config=%s" % (
        head[0], head[1], head[2], head[3], head[4]))
    for figure in rec.figures:
        print()
        print(rec.scorecard(figure).format())
    return 0


def cmd_runs_diff(args) -> int:
    """Diff run B against run A's tolerances; exit 1 on regression."""
    try:
        report = _runstore(args).diff(args.a, args.b)
    except KeyError as exc:
        print(exc.args[0])
        return 1
    print("runs diff %s -> %s" % (args.a, args.b))
    print(report.format())
    return 0 if report.ok else 1


def cmd_runs_record(args) -> int:
    """Record a directory of BENCH_*.json scorecards as one run."""
    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not paths:
        print("no BENCH_*.json scorecards in %s" % args.dir)
        return 1
    rec = _runstore(args).record([load_scorecard(p) for p in paths],
                                 label=args.label)
    print("recorded run %d: %d figure(s) (%s), config %s"
          % (rec.run_id, len(rec.figures), ", ".join(rec.figures),
             rec.fingerprint))
    return 0


def cmd_runs_query(args) -> int:
    """Filter run history by field and metric expressions."""
    matches = _runstore(args).query(args.exprs)
    if not matches:
        print("no runs match: %s" % " ".join(args.exprs))
        return 0
    print_table("runs matching: %s" % " ".join(args.exprs),
                ["id", "when", "label", "commit", "config", "figures",
                 "checks"],
                [rec.summary_row() for rec in matches])
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree: one subcommand per experiment."""
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate FLock paper experiments")
    parser.add_argument("--scale", type=float, default=None,
                        help="measurement-window multiplier")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan independent sweep points across N worker "
                             "processes (default: serial; REPRO_JOBS env "
                             "also sets it).  Results are byte-identical "
                             "to a serial run; observability flags force "
                             "serial execution — see docs/performance.md")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of every "
                             "traced RPC (open in ui.perfetto.dev)")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="write a metrics snapshot (JSON, or CSV when "
                             "the name ends in .csv)")
    parser.add_argument("--breakdown", action="store_true",
                        help="print the phase-level latency breakdown "
                             "after the experiment")
    parser.add_argument("--attribution", action="store_true",
                        help="print per-run critical-path attribution "
                             "tables with what-if speedup bounds")
    parser.add_argument("--attribution-json", metavar="FILE", default=None,
                        help="write the full attribution report (paths, "
                             "shares, what-if bounds) as JSON")
    parser.add_argument("--critical-path", metavar="FILE", nargs="?",
                        const="-", default=None,
                        help="write critical paths as folded stacks for "
                             "flamegraph.pl/speedscope (omit FILE or pass "
                             "- for stdout)")
    parser.add_argument("--audit", action="store_true",
                        help="run the end-of-run invariant auditors after "
                             "every experiment (fails on any violation)")
    parser.add_argument("--congestion", action="store_true",
                        help="run experiments on the switched-fabric "
                             "congestion model (finite egress buffers, "
                             "ECN/DCQCN) instead of the contention-free "
                             "fabric — see docs/network.md")
    parser.add_argument("--pfc", action="store_true",
                        help="with the congestion model, use lossless "
                             "PFC PAUSE instead of tail drop (implies "
                             "--congestion)")
    parser.add_argument("--fidelity", choices=list(FIDELITY_MODES),
                        default=None,
                        help="transport-model fidelity: 'packet' (the "
                             "calibrated stepped pipeline, default), "
                             "'fluid' (analytic O(1)-event transfers), or "
                             "'hybrid' (fluid with automatic packet-level "
                             "demotion at hotspots) — see docs/network.md")
    parser.add_argument("--scorecard", metavar="DIR", default=None,
                        help="write BENCH_<figure>.json paper-fidelity "
                             "scorecards into DIR")
    parser.add_argument("--slo-timeline", metavar="FILE", default=None,
                        help="write every run's windowed SLO timeline "
                             "(per-window p50/p99/p999, goodput, counter "
                             "deltas, threshold violations) as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="run the cost observatory: host-time "
                             "profiler + event census (and resource "
                             "occupancy unless REPRO_OCCUPANCY=0) — "
                             "virtual-time results are unchanged")
    parser.add_argument("--occupancy", action="store_true",
                        help="track resource occupancy timelines "
                             "(RNIC/PCIe/switch/credits/CQ) without the "
                             "host-time profiler")
    parser.add_argument("--flame", metavar="FILE", default=None,
                        help="write the profiled host time as folded "
                             "stacks for flamegraph.pl/speedscope "
                             "(implies --profile)")
    parser.add_argument("--profile-json", metavar="FILE", default=None,
                        help="write every run's cost-observatory report "
                             "(census, host buckets, occupancy heatmap) "
                             "as JSON (implies --profile)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig2a", help="RC read scaling (Fig 2a)")
    p.add_argument("--qps", type=int, nargs="+",
                   default=[22, 176, 704, 2816])
    p.add_argument("--clients", type=int, default=22)
    p.set_defaults(fn=cmd_fig2a)

    p = sub.add_parser("fig2b", help="UD RPC scaling (Fig 2b)")
    p.add_argument("--senders", type=int, nargs="+", default=[22, 352, 1408])
    p.add_argument("--clients", type=int, default=22)
    p.set_defaults(fn=cmd_fig2b)

    p = sub.add_parser("fig6", help="FLock vs eRPC (Figs 6-8)")
    p.add_argument("--threads", type=int, nargs="+", default=[1, 8, 16, 32])
    p.add_argument("--outstanding", type=int, default=1)
    p.add_argument("--clients", type=int, default=23)
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("fig9", help="sharing approaches (Fig 9)")
    p.add_argument("--threads", type=int, nargs="+", default=[8, 32])
    p.add_argument("--clients", type=int, default=23)
    p.set_defaults(fn=cmd_fig9)

    p = sub.add_parser("fig10", help="coalescing ablation (Fig 10)")
    p.add_argument("--outstanding-list", type=int, nargs="+",
                   default=[1, 4, 8])
    p.add_argument("--clients", type=int, default=23)
    p.set_defaults(fn=cmd_fig10)

    p = sub.add_parser("fig11", help="thread scheduling (Fig 11)")
    p.add_argument("--sizes", type=int, nargs="+", default=[512, 1024])
    p.add_argument("--clients", type=int, default=23)
    p.set_defaults(fn=cmd_fig11)

    p = sub.add_parser("fig12", help="node scalability (Fig 12)")
    p.add_argument("--clients-list", type=int, nargs="+",
                   default=[46, 184, 368])
    p.add_argument("--nodes", type=int, default=23)
    p.set_defaults(fn=cmd_fig12)

    p = sub.add_parser("fig14", help="transactions (Figs 14-15)")
    p.add_argument("--workload", choices=["tatp", "smallbank"],
                   default="tatp")
    p.add_argument("--threads", type=int, nargs="+", default=[2, 8])
    p.set_defaults(fn=cmd_fig14)

    p = sub.add_parser("fig16", help="HydraList (Figs 16-18)")
    p.add_argument("--threads", type=int, nargs="+", default=[8, 32])
    p.add_argument("--outstanding", type=int, default=8)
    p.add_argument("--clients", type=int, default=22)
    p.set_defaults(fn=cmd_fig16)

    p = sub.add_parser("incast", help="N->1 incast degradation: FLock "
                                      "vs UD under fabric congestion")
    p.add_argument("--senders", type=int, default=12)
    p.add_argument("--threads", type=int, default=6)
    p.add_argument("--outstanding", type=int, default=2)
    p.add_argument("--pfc-incast", action="store_true",
                   help="run the congested legs in lossless PFC mode")
    p.set_defaults(fn=cmd_incast)

    p = sub.add_parser(
        "profile",
        help="run any figure with the cost observatory on "
             "(profile --flame f.folded fig2a --qps 22 704)")
    p.add_argument("--flame", metavar="FILE", default=None,
                   help="write the host-time flamegraph (folded stacks)")
    p.add_argument("--census", metavar="FILE", default=None,
                   help="write the full cost-observatory JSON report")
    p.add_argument("--no-occupancy", action="store_true",
                   help="skip the resource-occupancy tracker")
    p.add_argument("rest", nargs=argparse.REMAINDER, metavar="FIGURE ...",
                   help="figure subcommand plus its own arguments, "
                        "passed through verbatim (fig2a --qps 22 704)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "explain",
        help="detect anomalies and explain them via attribution diffs "
             "(explain fig2a, explain run:4, explain run:latest)")
    p.add_argument("target",
                   help="a live figure (fig2a) or a stored run reference "
                        "(run:N, run:-N, run:latest)")
    p.add_argument("--qps", type=int, nargs="+",
                   default=[22, 176, 704, 2816],
                   help="fig2a sweep points for the live mode")
    p.add_argument("--clients", type=int, default=22)
    p.add_argument("--json", dest="explain_json", metavar="FILE",
                   default=None,
                   help="also write the anomaly + explanation report "
                        "as JSON")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="run-store directory for stored references "
                        "(default: benchmarks/runstore, or "
                        "REPRO_RUNSTORE_DIR)")
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("bench-compare",
                       help="compare BENCH_*.json scorecards against "
                            "committed baselines (exit 1 on regression)")
    p.add_argument("--baseline", default=DEFAULT_BASELINE_DIR,
                   help="baseline scorecard directory "
                        "(default: benchmarks/baselines)")
    p.add_argument("--current", required=True,
                   help="directory of freshly generated scorecards")
    p.add_argument("--figures", nargs="+", default=None,
                   help="restrict the comparison to these figures")
    p.set_defaults(fn=cmd_bench_compare)

    p = sub.add_parser(
        "search",
        help="adversarial scenario search: hunt workload/config points "
             "that maximize an anomaly objective (docs/search.md)")
    p.add_argument("--budget", type=int, default=24, metavar="N",
                   help="unique candidate evaluations (default 24)")
    p.add_argument("--seed", type=int, default=7,
                   help="root seed; the leaderboard is byte-identical "
                        "for a fixed (seed, budget, objective) at any "
                        "--jobs (default 7)")
    p.add_argument("--objective", default="tail_ratio",
                   help="objective spec: %s; attribution_shift takes an "
                        "optional :resource arg (default tail_ratio)"
                        % ", ".join(sorted(OBJECTIVES)))
    p.add_argument("--warmup", type=int, default=0, metavar="N",
                   help="random candidates before the climb "
                        "(default: a third of the budget)")
    p.add_argument("--elites", type=int, default=4, metavar="N",
                   help="frontier slots mutated per generation")
    p.add_argument("--top", type=int, default=10, metavar="K",
                   help="leaderboard rows to print (default 10)")
    p.add_argument("--explain-top", type=int, default=None, metavar="K",
                   help="entries to re-run traced and explain "
                        "(default: top 3)")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write the full result + explanations as JSON")
    p.add_argument("--export-scenario", metavar="NAME[:RANK]", default=None,
                   help="freeze the RANK-th candidate (default 1) as a "
                        "BENCH_search_<NAME>.json scorecard in the "
                        "--scorecard dir (default .)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="run-store directory for the search-history "
                        "record (default: benchmarks/runstore)")
    p.add_argument("--no-record", action="store_true",
                   help="skip recording the search into run history")
    p.set_defaults(fn=cmd_search)

    p = sub.add_parser("runs", help="queryable run history: list / show "
                                    "/ diff / record / query")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="run-store directory (default: "
                        "benchmarks/runstore, or REPRO_RUNSTORE_DIR)")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    rp = runs_sub.add_parser("list", help="list recorded runs")
    rp.set_defaults(fn=cmd_runs_list)

    rp = runs_sub.add_parser("show", help="print one run's scorecards")
    rp.add_argument("ref", help="run id (e.g. 4, run:4, run:-1, "
                                "run:latest)")
    rp.set_defaults(fn=cmd_runs_show)

    rp = runs_sub.add_parser(
        "diff", help="compare run B against run A's tolerances and "
                     "anomaly sets (exit 1 when B regresses)")
    rp.add_argument("a", help="baseline run id (run:N, run:-N, "
                              "run:latest)")
    rp.add_argument("b", help="candidate run id")
    rp.set_defaults(fn=cmd_runs_diff)

    rp = runs_sub.add_parser(
        "record", help="append a directory of BENCH_*.json scorecards "
                       "to the run history")
    rp.add_argument("dir", help="scorecard directory to record")
    rp.add_argument("--label", default="",
                    help="free-form label for the run")
    rp.set_defaults(fn=cmd_runs_record)

    rp = runs_sub.add_parser(
        "query", help="filter runs: label=nightly figure=fig2a "
                      "fig2a.peak_mops>40 ...")
    rp.add_argument("exprs", nargs="+", metavar="EXPR")
    rp.set_defaults(fn=cmd_runs_query)

    p = sub.add_parser("list", help="list available experiments")
    p.set_defaults(fn=lambda args: print("\n".join(
        sorted(c for c in sub.choices if c != "list"))))
    return parser


def main(argv: List[str] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    if args.audit:
        os.environ[AUDIT_ENV] = "1"
    if args.congestion:
        os.environ[CONGESTION_ENV] = "1"
    if args.pfc:
        os.environ[PFC_ENV] = "1"
    if args.fidelity:
        os.environ[FIDELITY_ENV] = args.fidelity
    if args.profile or args.flame or args.profile_json:
        os.environ[PROFILE_ENV] = "1"
        # Profiling brings occupancy along unless explicitly disabled.
        os.environ.setdefault(OCCUPANCY_ENV, "1")
    if args.occupancy:
        os.environ[OCCUPANCY_ENV] = "1"
    # Spans must accumulate in-process (forces sweeps serial); a
    # metrics-only run can keep --jobs parallelism because sketches and
    # counters merge exactly across workers.
    wants_spans = bool(args.trace or args.breakdown or args.attribution
                       or args.attribution_json or args.critical_path)
    observing = wants_spans or bool(args.metrics)
    telemetry = (enable(Telemetry(wants_spans=wants_spans))
                 if observing else None)
    injected_faults = faults.inject_from_env()
    if injected_faults:
        print("fault injection active: %s" % ", ".join(injected_faults))
    try:
        rc = args.fn(args) or 0
    finally:
        for name in injected_faults:
            faults.clear(name)
        disable()
    if getattr(args, "slo_timeline", None):
        blocks = getattr(args, "_slo_blocks", {})
        with open(args.slo_timeline, "w") as fh:
            json.dump(blocks, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote SLO timelines: %s (%d runs)"
              % (args.slo_timeline, len(blocks)))
    if getattr(args, "_profile_blocks", None):
        _emit_profile(args)
    if telemetry is not None:
        if args.breakdown:
            print()
            print(format_breakdown(telemetry.breakdown(),
                                   title="Latency breakdown (all spans)"))
        if args.attribution or args.attribution_json:
            _emit_attribution(args, telemetry)
        if args.critical_path:
            folded = folded_stacks(telemetry.critical_paths())
            if args.critical_path == "-":
                sys.stdout.write(folded)
            else:
                with open(args.critical_path, "w") as fh:
                    fh.write(folded)
                print("wrote folded stacks: %s (%d frames)"
                      % (args.critical_path, len(folded.splitlines())))
        if args.trace:
            write_chrome_trace(telemetry.spans, args.trace)
            print("wrote Chrome trace: %s (%d spans)"
                  % (args.trace, len(telemetry.spans.spans)))
        if args.metrics:
            text = (telemetry.registry.to_csv()
                    if args.metrics.endswith(".csv")
                    else telemetry.registry.to_json())
            with open(args.metrics, "w") as fh:
                fh.write(text)
            print("wrote metrics snapshot: %s" % args.metrics)
    return rc


if __name__ == "__main__":
    sys.exit(main())
