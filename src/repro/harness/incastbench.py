"""N→1 incast benchmark: FLock vs UD RPC under fabric congestion.

The experiment the congestion subsystem exists for: every sender targets
one receiver, so the switch's egress port toward the server becomes the
bottleneck.  Each system runs twice — once on the contention-free fabric
(its own baseline) and once with the switched-fabric model on — and the
headline number is *retention*: congested throughput over uncongested
throughput.  The expected shape (paper §4.1's motivation seen from the
fabric side) is that FLock retains more: coalescing puts ~an order of
magnitude fewer messages and fewer header bytes into the congested port,
RC absorbs tail drops as bounded hardware retransmissions, and DCQCN
paces senders before the queue overflows — while the UD baseline sends
one datagram per request, loses them to tail drops, and burns a full
application timeout per loss.

Request sizes default larger than the echo microbenchmarks (512 B): at
64 B the NIC message-rate limit, not the port, is the binding constraint
and no queue ever builds — see ``docs/network.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from ..baselines import UdEndpoint, UdRpcServer
from ..config import ClusterConfig, CongestionConfig, FlockConfig, NetConfig
from ..flock import FlockNode
from ..net import build_cluster
from ..sim import Simulator
from .metrics import Recorder, RunResult
from .microbench import (
    ECHO_RPC,
    _attach_profile,
    _echo_handler,
    _finish_audit,
    _install_observatory,
    _install_telemetry,
    _prepare_audit,
    _run_window,
    bench_scale,
)

__all__ = ["IncastConfig", "run_incast", "run_incast_flock", "run_incast_ud"]


@dataclass
class IncastConfig:
    """Knobs of the N→1 incast experiment."""

    #: Sender nodes, all targeting the single server (the paper's
    #: testbed shape: 23→1 at full fan-in; 16 keeps runs affordable).
    n_senders: int = 12
    threads_per_client: int = 6
    outstanding: int = 2
    #: RC QPs per FLock handle.  Small on purpose: threads must *share*
    #: QPs for the combiner to batch (degree ~ threads/QP), and a small
    #: flow count lets DCQCN converge (32 flows at the 1 Gbps floor fit
    #: under the 100 Gbps port; one flow per thread would not).
    qps_per_handle: int = 2
    #: Large enough that the egress port (12.5 B/ns), not the NIC
    #: message-rate cap, is the bottleneck under fan-in.
    req_size: int = 512
    resp_size: int = 64
    handler_ns: float = 100.0
    think_jitter_ns: float = 200.0
    warmup_ns: float = 300_000.0
    measure_ns: float = 500_000.0
    seed: int = 1
    #: UD applications must recover losses themselves, and kernel-bypass
    #: RTOs are coarse — eRPC's is 5 ms, orders beyond the fabric RTT.
    #: A worker whose request is tail-dropped stalls this long before
    #: retrying, which is the classic incast timeout collapse: the
    #: synchronized first burst overflows the shallow buffer and the
    #: victims sit out the rest of the window while the port idles.
    ud_timeout_ns: float = 5_000_000.0
    #: Template for the *congested* legs; the baseline legs force it off.
    #: ``honor_env`` is stripped either way so CLI env flags cannot turn
    #: the baseline legs congested mid-comparison.  The buffer is shallow
    #: (32 KB per port, Collie's anomaly regime) — the closed-loop
    #: inventory of this workload must exceed it, or nothing ever drops
    #: and the DCQCN-vs-no-congestion-control comparison has no teeth.
    congestion: CongestionConfig = field(
        default_factory=lambda: CongestionConfig(
            enabled=True, buffer_bytes=10_240,
            ecn_kmin_bytes=2_560, ecn_kmax_bytes=7_680,
            pfc_xoff_bytes=7_680, pfc_xon_bytes=2_560))

    def durations(self) -> tuple:
        scale = bench_scale()
        return self.warmup_ns * scale, self.measure_ns * scale

    def cluster(self, congested: bool) -> ClusterConfig:
        if congested:
            cong = replace(self.congestion, enabled=True, honor_env=False)
        else:
            cong = replace(self.congestion, enabled=False, pfc=False,
                           honor_env=False)
        return ClusterConfig(
            n_clients=self.n_senders, seed=self.seed,
            net=replace(NetConfig(), congestion=cong))


def _switch_extras(fabric) -> dict:
    """Congestion-side observables for the run's extras block."""
    sw = fabric.switch
    extras = {"fidelity": fabric.fidelity.mode}
    if fabric.fidelity_controller is not None:
        fid = fabric.fidelity_controller
        extras["fidelity_demotions"] = fid.demotions
        extras["fidelity_promotions"] = fid.promotions
        extras["fidelity_demoted_ports"] = sorted(
            name for name, st in fid.ports.items() if st.demotions)
    if sw is None:
        extras["congested"] = False
        return extras
    extras.update({
        "congested": True,
        "pfc": sw.cfg.pfc,
        "buffer_bytes": sw.cfg.buffer_bytes,
        "peak_port_depth_bytes": round(sw.peak_depth_bytes(), 1),
        "switch_drops": sw.total_drops,
        "ecn_marks": sw.total_ecn_marks,
        "pfc_pauses": sw.total_pause_events,
        "cnps": fabric.cnps_delivered,
    })
    return extras


def run_incast_flock(cfg: IncastConfig, *, congested: bool,
                     flock_cfg: Optional[FlockConfig] = None,
                     telemetry=None, audit: Optional[bool] = None
                     ) -> RunResult:
    """One FLock incast leg (all senders → one FLock server)."""
    sim = Simulator()
    label = "flock-incast %s" % ("cong" if congested else "base")
    tel = _install_telemetry(sim, telemetry, label)
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure)
    servers, clients, fabric = build_cluster(sim, cfg.cluster(congested))
    if flock_cfg is None:
        flock_cfg = FlockConfig(sched_interval_ns=150_000.0,
                                thread_sched_interval_ns=150_000.0)
    server = FlockNode(sim, servers[0], fabric, flock_cfg)
    server.fl_reg_handler(ECHO_RPC, _echo_handler(
        cfg.resp_size, cfg.handler_ns, sim, warmup + measure / 2))

    recorder = Recorder(sim)
    jitter_rng = random.Random(cfg.seed ^ 0x7EA)
    handles = []

    def worker(fnode, handle, thread_id, rng):
        while True:
            if cfg.think_jitter_ns > 0:
                yield sim.timeout(rng.random() * cfg.think_jitter_ns)
            started = sim.now
            yield from fnode.fl_call(handle, thread_id, ECHO_RPC,
                                     cfg.req_size)
            recorder.record(started)

    for c_idx, node in enumerate(clients):
        fnode = FlockNode(sim, node, fabric, flock_cfg,
                          seed=cfg.seed + c_idx * 131)
        handle = fnode.fl_connect(server, n_qps=cfg.qps_per_handle)
        handles.append(handle)
        for t_idx in range(cfg.threads_per_client):
            for _ in range(cfg.outstanding):
                rng = random.Random(jitter_rng.getrandbits(48))
                sim.spawn(worker(fnode, handle, t_idx, rng),
                          name="incast-worker")

    _run_window(sim, recorder, warmup, measure, fabric, profile=prof)
    degree = (sum(h.mean_coalescing_degree() for h in handles)
              / len(handles) if handles else 1.0)
    extras = _switch_extras(fabric)
    extras["throttled_qps"] = sum(
        1 for h in handles
        for st in h.congestion_stats(fabric).values() if st["cnps"] > 0)
    result = recorder.result(
        system="flock",
        mean_coalescing_degree=round(degree, 3),
        server_cpu=round(servers[0].cpu.utilization(), 3),
        events=sim.events_processed,
        **extras,
    )
    result.telemetry = tel
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


def run_incast_ud(cfg: IncastConfig, *, congested: bool,
                  telemetry=None, audit: Optional[bool] = None) -> RunResult:
    """One UD-RPC incast leg (the HERD/eRPC design point)."""
    sim = Simulator()
    label = "ud-incast %s" % ("cong" if congested else "base")
    tel = _install_telemetry(sim, telemetry, label)
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure)
    servers, clients, fabric = build_cluster(sim, cfg.cluster(congested))
    server = UdRpcServer(sim, servers[0], fabric)
    server.register_handler(ECHO_RPC, _echo_handler(
        cfg.resp_size, cfg.handler_ns, sim, warmup + measure / 2))

    recorder = Recorder(sim)
    jitter_rng = random.Random(cfg.seed ^ 0x7EA)
    endpoints = []
    endpoint_counter = [0]

    def worker(endpoint, server_qp, rng):
        while True:
            if cfg.think_jitter_ns > 0:
                yield sim.timeout(rng.random() * cfg.think_jitter_ns)
            started = sim.now
            response = yield from endpoint.call(server, server_qp, ECHO_RPC,
                                                cfg.req_size)
            if response is not None:
                recorder.record(started)

    for node in clients:
        for _t in range(cfg.threads_per_client):
            endpoint = UdEndpoint(sim, node, fabric,
                                  timeout_ns=cfg.ud_timeout_ns)
            server_qp = server.qp_for_client(endpoint_counter[0])
            endpoint_counter[0] += 1
            endpoints.append(endpoint)
            for _ in range(cfg.outstanding):
                rng = random.Random(jitter_rng.getrandbits(48))
                sim.spawn(worker(endpoint, server_qp, rng),
                          name="incast-worker")

    _run_window(sim, recorder, warmup, measure, fabric, profile=prof)
    extras = _switch_extras(fabric)
    result = recorder.result(
        system="ud-rpc",
        lost_requests=sum(e.lost_requests for e in endpoints),
        pending_reassembly_bytes=sum(e.reassembler.pending_bytes
                                     for e in endpoints),
        server_cpu=round(servers[0].cpu.utilization(), 3),
        events=sim.events_processed,
        **extras,
    )
    result.telemetry = tel
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


def run_incast(cfg: Optional[IncastConfig] = None, *, telemetry=None,
               audit: Optional[bool] = None, jobs: int = 1) -> dict:
    """The full four-leg comparison; returns results plus retentions.

    ``retention`` is congested throughput over the same system's
    uncongested throughput — the degradation measure the acceptance
    check ranks FLock vs UD on.  The four legs are independent
    simulations; ``jobs > 1`` fans them across worker processes with
    identical results (an explicit ``telemetry`` pins the run serial —
    spans must accumulate in this process).
    """
    from .parallel import SweepPoint, run_sweep
    cfg = cfg or IncastConfig()
    legs = [
        ("flock_base", run_incast_flock, False),
        ("flock_cong", run_incast_flock, True),
        ("ud_base", run_incast_ud, False),
        ("ud_cong", run_incast_ud, True),
    ]
    points = [
        SweepPoint("incast/%s" % name, fn, (cfg,),
                   {"congested": congested, "telemetry": telemetry,
                    "audit": audit})
        for name, fn, congested in legs]
    merged = run_sweep(points, jobs if telemetry is None else 1)
    results = {name: result
               for (name, _fn, _c), (_key, result) in zip(legs, merged)}
    results["flock_retention"] = (
        results["flock_cong"].mops / max(results["flock_base"].mops, 1e-9))
    results["ud_retention"] = (
        results["ud_cong"].mops / max(results["ud_base"].mops, 1e-9))
    return results
