"""Parallel sweep executor: fan independent figure points across workers.

Every figure in the reproduction is a *sweep*: a list of independent
(config → RunResult) evaluations whose only shared state is the printed
table at the end.  Each point is a pure function of its arguments and
the inherited environment (``REPRO_BENCH_SCALE``, ``REPRO_AUDIT``, ...):
all randomness comes from seeds carried in the config (or derived via
:meth:`repro.sim.rand.Streams.child` from the point's stable identity),
never from global state.  That purity is the whole contract — it is what
makes ``--jobs N`` output byte-identical to a serial run, regardless of
worker count, scheduling order, or machine.

:func:`run_sweep` is the single entry point.  It takes an ordered list
of :class:`SweepPoint`\\ s and returns their results *in input order*:

* ``jobs <= 1`` (or a single point): run serially in-process — this is
  exactly the code path the pre-parallel harness used, kept as the
  reference semantics.
* ``jobs > 1``: fan the points over a ``multiprocessing`` pool.  Workers
  inherit the environment, execute points with ``chunksize=1`` (sweep
  points have wildly different costs — Fig. 2a's 2816-QP point dwarfs
  its 22-QP point), and ship back :class:`repro.harness.metrics.RunResult`
  payloads (including audit reports) by pickling.

Two deliberate guard rails:

* **Span observability forces serial.**  Spans accumulate in the
  process-wide :func:`repro.obs.current_telemetry` and only exist in
  the process that recorded them; results computed in a worker would
  leave their traces behind.  Rather than silently dropping spans,
  ``run_sweep`` detects a spans-wanting telemetry and runs the sweep
  serially.  A *metrics-only* telemetry
  (``Telemetry(wants_spans=False)``, what the CLI builds for a bare
  ``--metrics``) keeps ``--jobs`` parallelism: every point — serial or
  parallel alike — runs against a fresh per-point registry whose
  exported state (integer counters, exactly-mergeable quantile
  sketches) is folded into the parent registry *in input order*, so the
  merged snapshot is byte-identical for any worker count.
* **Span telemetry never crosses the process boundary.**  Worker
  results are scrubbed (`RunResult.telemetry` is per-process and
  unpicklable); audit reports, SLO timelines, and registry states are
  plain data and travel intact.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..obs import Telemetry, current_telemetry, disable, enable
from .metrics import RunResult

__all__ = ["SweepPoint", "run_sweep", "default_jobs"]

#: Environment override for the default worker count (used by tests and
#: CI to exercise the parallel path without threading a flag through).
JOBS_ENV = "REPRO_JOBS"


@dataclass
class SweepPoint:
    """One independent evaluation in a figure sweep.

    ``key`` is the point's stable identity — it names the point in the
    merged result list and is the natural argument to
    ``Streams.child(key)`` for sweeps that derive per-point seed streams
    rather than carrying explicit seeds in their configs.  ``fn`` must be
    a module-level callable (it crosses the process boundary by pickle).
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def default_jobs(requested: int = None) -> int:
    """Resolve the worker count: explicit flag > env > serial."""
    if requested is not None:
        return max(1, requested)
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def _scrub(result: Any) -> Any:
    """Strip per-process telemetry handles before pickling a result.

    Results can be bare :class:`RunResult`\\ s or containers of them (the
    incast and index sweeps return dicts mixing results with scalars).
    """
    if isinstance(result, RunResult):
        result.telemetry = None
        return result
    if isinstance(result, dict):
        return {k: _scrub(v) for k, v in result.items()}
    if isinstance(result, (list, tuple)):
        return type(result)(_scrub(v) for v in result)
    return result


def _run_point(point: SweepPoint) -> Tuple[str, Any]:
    """Worker-side shim: evaluate one point, return (key, result)."""
    return point.key, _scrub(point.run())


def _run_point_fresh(point: SweepPoint) -> Tuple[str, Any, dict]:
    """Evaluate one point against a fresh metrics-only telemetry.

    The point runs with its own registry regardless of which process
    (and in pooled runs, which reused worker) executes it, and the
    registry's exported state travels home with the result.  Folding
    the states in input order makes the parent's merged registry a pure
    function of the point list — the ``--jobs N`` byte-identity
    contract, extended to metrics.  The previously current telemetry is
    restored afterwards (workers are reused across points; leaking a
    point's registry into the next would double-count).
    """
    prev = current_telemetry()
    fresh = enable(Telemetry(wants_spans=False))
    try:
        key, result = _run_point(point)
    finally:
        if prev is not None:
            enable(prev)
        else:
            disable()
    return key, result, fresh.registry.export_state()


def run_sweep(points: Sequence[SweepPoint], jobs: int = 1
              ) -> List[Tuple[str, Any]]:
    """Evaluate every point; return ``[(key, result), ...]`` in input
    order — identical for any ``jobs``."""
    points = list(points)
    jobs = default_jobs(jobs)
    tel = current_telemetry()
    if tel is not None and not getattr(tel, "wants_spans", True):
        return _run_sweep_metrics_only(points, jobs, tel)
    if jobs > 1 and tel is not None:
        # Spans must accumulate in this process; see module docs.
        jobs = 1
    if jobs <= 1 or len(points) <= 1:
        return [(p.key, p.run()) for p in points]
    with _pool(jobs, len(points)) as pool:
        return pool.map(_run_point, points, chunksize=1)


def _run_sweep_metrics_only(points: List[SweepPoint], jobs: int,
                            tel) -> List[Tuple[str, Any]]:
    """The metrics-only sweep path: per-point fresh registries, merged
    into ``tel.registry`` in input order — serial and parallel runs are
    byte-identical (see :func:`_run_point_fresh`)."""
    if jobs <= 1 or len(points) <= 1:
        evaluated = [_run_point_fresh(p) for p in points]
    else:
        with _pool(jobs, len(points)) as pool:
            evaluated = pool.map(_run_point_fresh, points, chunksize=1)
    out = []
    for key, result, state in evaluated:
        tel.registry.merge_state(state)
        out.append((key, result))
    return out


def _pool(jobs: int, n_points: int):
    """A worker pool sized for the sweep.

    fork shares the warmed-up interpreter and environment on the
    platforms CI runs on; spawn is the portable fallback and works
    because every SweepPoint is pickled either way.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context("spawn")
    return ctx.Pool(processes=min(jobs, n_points))
