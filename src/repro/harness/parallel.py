"""Parallel sweep executor: fan independent figure points across workers.

Every figure in the reproduction is a *sweep*: a list of independent
(config → RunResult) evaluations whose only shared state is the printed
table at the end.  Each point is a pure function of its arguments and
the inherited environment (``REPRO_BENCH_SCALE``, ``REPRO_AUDIT``, ...):
all randomness comes from seeds carried in the config (or derived via
:meth:`repro.sim.rand.Streams.child` from the point's stable identity),
never from global state.  That purity is the whole contract — it is what
makes ``--jobs N`` output byte-identical to a serial run, regardless of
worker count, scheduling order, or machine.

:func:`run_sweep` is the single entry point.  It takes an ordered list
of :class:`SweepPoint`\\ s and returns their results *in input order*:

* ``jobs <= 1`` (or a single point): run serially in-process — this is
  exactly the code path the pre-parallel harness used, kept as the
  reference semantics.
* ``jobs > 1``: fan the points over a ``multiprocessing`` pool.  Workers
  inherit the environment, execute points with ``chunksize=1`` (sweep
  points have wildly different costs — Fig. 2a's 2816-QP point dwarfs
  its 22-QP point), and ship back :class:`repro.harness.metrics.RunResult`
  payloads (including audit reports) by pickling.

Two deliberate guard rails:

* **Observability forces serial.**  Spans and metrics accumulate in the
  process-wide :func:`repro.obs.current_telemetry`; results computed in
  a worker would leave their traces behind in that worker.  Rather than
  silently dropping spans, ``run_sweep`` detects live telemetry and runs
  the sweep serially (``--jobs`` still works for the common un-traced
  bench-gate runs, which is where the wall-clock pain is).
* **Telemetry never crosses the process boundary.**  Worker results are
  scrubbed (`RunResult.telemetry` is per-process and unpicklable); audit
  reports are plain data and travel intact.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..obs import current_telemetry
from .metrics import RunResult

__all__ = ["SweepPoint", "run_sweep", "default_jobs"]

#: Environment override for the default worker count (used by tests and
#: CI to exercise the parallel path without threading a flag through).
JOBS_ENV = "REPRO_JOBS"


@dataclass
class SweepPoint:
    """One independent evaluation in a figure sweep.

    ``key`` is the point's stable identity — it names the point in the
    merged result list and is the natural argument to
    ``Streams.child(key)`` for sweeps that derive per-point seed streams
    rather than carrying explicit seeds in their configs.  ``fn`` must be
    a module-level callable (it crosses the process boundary by pickle).
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def default_jobs(requested: int = None) -> int:
    """Resolve the worker count: explicit flag > env > serial."""
    if requested is not None:
        return max(1, requested)
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def _scrub(result: Any) -> Any:
    """Strip per-process telemetry handles before pickling a result.

    Results can be bare :class:`RunResult`\\ s or containers of them (the
    incast and index sweeps return dicts mixing results with scalars).
    """
    if isinstance(result, RunResult):
        result.telemetry = None
        return result
    if isinstance(result, dict):
        return {k: _scrub(v) for k, v in result.items()}
    if isinstance(result, (list, tuple)):
        return type(result)(_scrub(v) for v in result)
    return result


def _run_point(point: SweepPoint) -> Tuple[str, Any]:
    """Worker-side shim: evaluate one point, return (key, result)."""
    return point.key, _scrub(point.run())


def run_sweep(points: Sequence[SweepPoint], jobs: int = 1
              ) -> List[Tuple[str, Any]]:
    """Evaluate every point; return ``[(key, result), ...]`` in input
    order — identical for any ``jobs``."""
    points = list(points)
    jobs = default_jobs(jobs)
    if jobs > 1 and current_telemetry() is not None:
        # Spans/metrics must accumulate in this process; see module docs.
        jobs = 1
    if jobs <= 1 or len(points) <= 1:
        return [(p.key, p.run()) for p in points]
    # fork shares the warmed-up interpreter and environment on the
    # platforms CI runs on; spawn is the portable fallback and works
    # because every SweepPoint is pickled either way.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=min(jobs, len(points))) as pool:
        return pool.map(_run_point, points, chunksize=1)
