"""HydraList-over-RPC benchmarks (paper Figs. 16-18, §8.6).

A single server hosts a HydraList index; 22 client nodes issue 90 % get
and 10 % scan(64) queries over FLock or eRPC.  Scans reply with the
number of keys found as an 8-byte response, exactly as in the paper.
The index is real — lookups and scans run against the actual structure —
while the CPU charged to the server core comes from the index's cost
model, keeping virtual time faithful at simulation speed.

Population defaults to a scaled-down fraction of the paper's 32 M keys;
the cost model depends on the logarithm of the size, so the shape is
insensitive to the scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..apps.hydralist import HydraList
from ..baselines import ErpcEndpoint, ErpcServer
from ..config import ClusterConfig, FlockConfig
from ..flock import FlockNode
from ..net import build_cluster
from ..obs.windows import (attach_fidelity_sources, attach_switch_sources,
                           slo_timeline)
from ..sim import Simulator, Streams
from .metrics import Recorder, RunResult
from .microbench import (
    _attach_profile,
    _finish_audit,
    _install_observatory,
    _install_telemetry,
    _prepare_audit,
    bench_scale,
)

__all__ = ["IndexBenchConfig", "run_flock_index", "run_erpc_index",
           "sweep_index"]

RPC_GET = 21
RPC_SCAN = 22

#: 8 B keys and values (paper §8.6).
GET_REQ_BYTES = 16
GET_RESP_BYTES = 8
SCAN_REQ_BYTES = 24
SCAN_RESP_BYTES = 8


@dataclass
class IndexBenchConfig:
    n_clients: int = 22
    threads_per_client: int = 8
    outstanding: int = 1
    n_keys: int = 200_000
    scan_range: int = 64
    get_fraction: float = 0.90
    warmup_ns: float = 600_000.0
    measure_ns: float = 500_000.0
    seed: int = 11
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    def durations(self) -> tuple:
        scale = bench_scale()
        return self.warmup_ns * scale, self.measure_ns * scale


def build_index(cfg: IndexBenchConfig) -> HydraList:
    """Bulk-load the experiment's HydraList population."""
    index = HydraList(node_capacity=64)
    index.bulk_load((key, key * 3 + 1) for key in range(cfg.n_keys))
    return index


def _handlers(index: HydraList, cfg: IndexBenchConfig):
    def get_handler(request):
        key = request.payload
        value = index.get(key)
        return GET_RESP_BYTES, value, index.get_cost_ns()

    def scan_handler(request):
        start_key = request.payload
        found = index.scan(start_key, cfg.scan_range)
        return SCAN_RESP_BYTES, len(found), index.scan_cost_ns(len(found))

    return get_handler, scan_handler


def _run(sim: Simulator, cfg: IndexBenchConfig, recorders: Dict[str, Recorder],
         fabric=None, profile=None):
    warmup, measure = cfg.durations()
    for recorder in recorders.values():
        recorder.open_window(warmup, warmup + measure)
        timeline = slo_timeline(warmup, warmup + measure)
        if fabric is not None:
            attach_switch_sources(timeline, fabric)
            attach_fidelity_sources(timeline, fabric)
        recorder.attach_slo(timeline)
    if profile is not None:
        sim.run_profiled(profile, until=warmup + measure)
    else:
        sim.run(until=warmup + measure)


def _results(recorders: Dict[str, Recorder], sim: Simulator,
             system: str, telemetry=None, **extras) -> Dict[str, RunResult]:
    out = {}
    total_ops = 0
    duration = None
    for name, recorder in recorders.items():
        result = recorder.result(system=system, **extras)
        result.telemetry = telemetry
        out[name] = result
        total_ops += result.ops
        duration = result.duration_ns
    out["total_mops"] = total_ops / duration * 1e3 if duration else 0.0
    out["events"] = sim.events_processed
    return out


def run_flock_index(cfg: IndexBenchConfig,
                    flock_cfg: Optional[FlockConfig] = None,
                    telemetry=None,
                    audit: Optional[bool] = None) -> Dict[str, RunResult]:
    """90 % get / 10 % scan over FLock RPC."""
    sim = Simulator()
    tel = _install_telemetry(sim, telemetry, "flock-index")
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure)
    cluster = replace(cfg.cluster, n_clients=cfg.n_clients, seed=cfg.seed)
    servers, clients, fabric = build_cluster(sim, cluster)
    if flock_cfg is None:
        flock_cfg = FlockConfig(sched_interval_ns=150_000.0,
                                thread_sched_interval_ns=150_000.0)
    index = build_index(cfg)
    server = FlockNode(sim, servers[0], fabric, flock_cfg)
    get_handler, scan_handler = _handlers(index, cfg)
    server.fl_reg_handler(RPC_GET, get_handler)
    server.fl_reg_handler(RPC_SCAN, scan_handler)

    streams = Streams(cfg.seed)
    recorders = {"get": Recorder(sim), "scan": Recorder(sim)}

    def worker(fnode, handle, thread_id, rng):
        while True:
            key = rng.randrange(cfg.n_keys)
            started = sim.now
            if rng.random() < cfg.get_fraction:
                yield from fnode.fl_call(handle, thread_id, RPC_GET,
                                         GET_REQ_BYTES, key)
                recorders["get"].record(started)
            else:
                yield from fnode.fl_call(handle, thread_id, RPC_SCAN,
                                         SCAN_REQ_BYTES, key)
                recorders["scan"].record(started)

    for c_idx, node in enumerate(clients):
        fnode = FlockNode(sim, node, fabric, flock_cfg, seed=cfg.seed + c_idx)
        handle = fnode.fl_connect(server, n_qps=cfg.threads_per_client)
        for t_idx in range(cfg.threads_per_client):
            for k in range(cfg.outstanding):
                rng = streams.stream("hydra-%d-%d-%d" % (c_idx, t_idx, k))
                sim.spawn(worker(fnode, handle, t_idx, rng),
                          name="hydra-worker")

    _run(sim, cfg, recorders, fabric, profile=prof)
    out = _results(recorders, sim, "flock", telemetry=tel,
                   server_cpu=round(servers[0].cpu.utilization(), 3))
    _attach_profile(out["get"], sim, prof)
    _finish_audit(audited, sim, audit_reg, out["get"])
    return out


def run_erpc_index(cfg: IndexBenchConfig, *, telemetry=None,
                   audit: Optional[bool] = None) -> Dict[str, RunResult]:
    """90 % get / 10 % scan over eRPC."""
    sim = Simulator()
    tel = _install_telemetry(sim, telemetry, "erpc-index")
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure)
    cluster = replace(cfg.cluster, n_clients=cfg.n_clients, seed=cfg.seed)
    servers, clients, fabric = build_cluster(sim, cluster)
    index = build_index(cfg)
    server = ErpcServer(sim, servers[0], fabric)
    get_handler, scan_handler = _handlers(index, cfg)
    server.register_handler(RPC_GET, get_handler)
    server.register_handler(RPC_SCAN, scan_handler)

    streams = Streams(cfg.seed)
    recorders = {"get": Recorder(sim), "scan": Recorder(sim)}
    endpoint_counter = [0]

    def worker(endpoint, server_qp, rng):
        while True:
            key = rng.randrange(cfg.n_keys)
            started = sim.now
            if rng.random() < cfg.get_fraction:
                response = yield from endpoint.call(server, server_qp,
                                                    RPC_GET, GET_REQ_BYTES,
                                                    key)
                if response is not None:
                    recorders["get"].record(started)
            else:
                response = yield from endpoint.call(server, server_qp,
                                                    RPC_SCAN, SCAN_REQ_BYTES,
                                                    key)
                if response is not None:
                    recorders["scan"].record(started)

    for c_idx, node in enumerate(clients):
        for t_idx in range(cfg.threads_per_client):
            endpoint = ErpcEndpoint(sim, node, fabric)
            server_qp = server.qp_for_client(endpoint_counter[0])
            endpoint_counter[0] += 1
            for k in range(cfg.outstanding):
                rng = streams.stream("hydra-%d-%d-%d" % (c_idx, t_idx, k))
                sim.spawn(worker(endpoint, server_qp, rng),
                          name="hydra-worker")

    _run(sim, cfg, recorders, fabric, profile=prof)
    out = _results(recorders, sim, "erpc", telemetry=tel,
                   server_cpu=round(servers[0].cpu.utilization(), 3))
    _attach_profile(out["get"], sim, prof)
    _finish_audit(audited, sim, audit_reg, out["get"])
    return out


def sweep_index(threads_list, *, n_clients: int = 22, outstanding: int = 8,
                jobs: int = 1) -> dict:
    """Figs. 16-18: HydraList over FLock vs eRPC across a thread ramp.

    Returns ``{(system, threads): result-dict}``; each result dict is
    exactly what :func:`run_flock_index` / :func:`run_erpc_index` return.
    """
    from .parallel import SweepPoint, run_sweep
    points = []
    for threads in threads_list:
        cfg = IndexBenchConfig(n_clients=n_clients,
                               threads_per_client=threads,
                               outstanding=outstanding)
        points.append(SweepPoint(
            "fig16/flock/t=%d" % threads, run_flock_index, (cfg,)))
        points.append(SweepPoint(
            "fig16/erpc/t=%d" % threads, run_erpc_index, (cfg,)))
    merged = iter(run_sweep(points, jobs))
    results = {}
    for threads in threads_list:
        results[("flock", threads)] = next(merged)[1]
        results[("erpc", threads)] = next(merged)[1]
    return results
