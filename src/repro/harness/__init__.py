"""Experiment harness: per-figure runners, metrics, table formatting."""

from .incastbench import IncastConfig, run_incast, run_incast_flock, run_incast_ud
from .indexbench import (
    IndexBenchConfig,
    run_erpc_index,
    run_flock_index,
    sweep_index,
)
from .metrics import Recorder, RunResult
from .microbench import (
    MicrobenchConfig,
    bench_scale,
    run_erpc,
    run_flock,
    run_raw_reads,
    run_rc,
    run_ud_rpc,
    sweep_flock_vs_erpc,
    sweep_raw_reads,
    sweep_ud_rpc,
)
from .parallel import SweepPoint, default_jobs, run_sweep
from .scorecards import (
    scorecard_fidelity_ab,
    scorecard_fig2a,
    scorecard_fig9,
    scorecard_fig10,
    scorecard_fig11,
    scorecard_fig12,
    scorecard_fig14,
    scorecard_fig15,
    scorecard_incast,
    scorecards_fig6_7_8,
)
from .tables import format_table, print_table
from .txnbench import (
    TxnBenchConfig,
    build_txn_servers,
    run_fasst_txn,
    run_flocktx,
    sweep_txn,
)

__all__ = [
    "IncastConfig",
    "IndexBenchConfig",
    "MicrobenchConfig",
    "Recorder",
    "RunResult",
    "SweepPoint",
    "TxnBenchConfig",
    "bench_scale",
    "build_txn_servers",
    "default_jobs",
    "format_table",
    "print_table",
    "run_erpc",
    "run_erpc_index",
    "run_fasst_txn",
    "run_flock",
    "run_flock_index",
    "run_flocktx",
    "run_incast",
    "run_incast_flock",
    "run_incast_ud",
    "run_raw_reads",
    "run_rc",
    "run_sweep",
    "run_ud_rpc",
    "scorecard_fidelity_ab",
    "scorecard_fig2a",
    "scorecard_fig9",
    "scorecard_fig10",
    "scorecard_fig11",
    "scorecard_fig12",
    "scorecard_fig14",
    "scorecard_fig15",
    "scorecard_incast",
    "scorecards_fig6_7_8",
    "sweep_flock_vs_erpc",
    "sweep_index",
    "sweep_raw_reads",
    "sweep_txn",
    "sweep_ud_rpc",
]
