"""Paper-style table formatting for benchmark output.

Each benchmark prints the rows/series the corresponding paper figure
plots, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
evaluation section as text tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "latency_cells", "latency_columns",
           "print_table"]


def latency_columns(prefix: str = "") -> List[str]:
    """Column headers matching :func:`latency_cells` (med/p99/p999),
    optionally prefixed with a system name (``"FLock med"``, ...)."""
    pre = (prefix + " ") if prefix else ""
    return [pre + "med", pre + "p99", pre + "p999"]


def latency_cells(result, digits: int = 1) -> List[float]:
    """The median/p99/p999 (µs) cells of one run, rounded for tables.

    The tail column exists because the paper's headline claims are
    median/p99 but SLO regressions usually surface in the p999 first —
    every latency table carries all three.
    """
    return [round(result.median_us, digits),
            round(result.p99_us, digits),
            round(result.p999_us, digits)]


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table with a title rule."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(c)) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    header = sep.join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    lines.append(rule)
    return "\n".join(lines)


def print_table(title: str, columns: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Format with :func:`format_table` and print with a leading blank."""
    print("\n" + format_table(title, columns, rows))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.2f" % cell
    return str(cell)
