"""Paper-style table formatting for benchmark output.

Each benchmark prints the rows/series the corresponding paper figure
plots, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
evaluation section as text tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "print_table"]


def format_table(title: str, columns: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table with a title rule."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(c)) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    header = sep.join(str(c).ljust(widths[i]) for i, c in enumerate(columns))
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    lines.append(rule)
    return "\n".join(lines)


def print_table(title: str, columns: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Format with :func:`format_table` and print with a leading blank."""
    print("\n" + format_table(title, columns, rows))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.2f" % cell
    return str(cell)
