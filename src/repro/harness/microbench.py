"""Microbenchmark runners (paper Figs. 2, 6-12).

Each function builds a fresh cluster, spawns closed-loop client workers,
runs a warmup long enough for FLock's schedulers to converge, measures a
virtual-time window, and returns a :class:`RunResult` in paper units.

``REPRO_BENCH_SCALE`` (env var, default 1.0) multiplies the warmup and
measurement windows for longer, lower-variance runs.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..baselines import (
    ErpcEndpoint,
    ErpcServer,
    RcRpcClient,
    RcRpcServer,
    ReadClient,
    UdEndpoint,
    UdRpcServer,
)
from ..config import ClusterConfig, FlockConfig
from ..flock import FlockNode
from ..net import build_cluster
from ..obs import (
    AuditError,
    Registry,
    audit_enabled,
    current_telemetry,
    faults,
    run_audit,
)
from ..obs.anomaly import detect_run_anomalies
from ..obs.occupancy import OccupancyTracker, occupancy_enabled
from ..obs.simprof import SimProfile, profile_enabled
from ..obs.windows import (attach_fidelity_sources, attach_switch_sources,
                           slo_timeline)
from ..sim import Simulator
from ..workloads import FixedSize
from .metrics import Recorder, RunResult, host_block

__all__ = [
    "MicrobenchConfig",
    "bench_scale",
    "run_flock",
    "run_erpc",
    "run_rc",
    "run_raw_reads",
    "run_ud_rpc",
    "sweep_raw_reads",
    "sweep_ud_rpc",
    "sweep_flock_vs_erpc",
]

ECHO_RPC = 1


def bench_scale() -> float:
    """Duration multiplier from the REPRO_BENCH_SCALE environment var."""
    try:
        return max(0.1, float(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1.0


@dataclass
class MicrobenchConfig:
    """Shared knobs of the RPC microbenchmarks."""

    n_clients: int = 23
    threads_per_client: int = 16
    outstanding: int = 1
    #: Client processes per node (Fig. 12 runs up to 16).
    processes_per_client: int = 1
    req_size: int = 64
    resp_size: int = 64
    #: Server-side application work per request.
    handler_ns: float = 100.0
    #: Per-iteration client think-time jitter (uniform [0, x) ns): real
    #: application threads never re-issue in perfect lockstep, which
    #: keeps coalescing degrees realistic instead of phase-locked.
    think_jitter_ns: float = 300.0
    warmup_ns: float = 600_000.0
    measure_ns: float = 500_000.0
    seed: int = 1
    #: Optional per-thread size generator (Fig. 11); overrides req_size.
    sizegen: Optional[object] = None
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    def durations(self) -> tuple:
        scale = bench_scale()
        return self.warmup_ns * scale, self.measure_ns * scale

    def make_sizegen(self):
        return self.sizegen if self.sizegen is not None else FixedSize(self.req_size)


def _install_telemetry(sim: Simulator, telemetry, label: str):
    """Install the run's telemetry on ``sim`` before any component is
    built (components cache their instruments at construction time).

    An explicit ``telemetry=`` argument wins; otherwise the process-wide
    telemetry enabled via :func:`repro.obs.enable` (e.g. by CLI flags)
    is used.  Returns the installed :class:`repro.obs.Telemetry` or None.
    """
    tel = telemetry if telemetry is not None else current_telemetry()
    if tel is not None:
        tel.install(sim, label=label)
    return tel


def _prepare_audit(sim: Simulator, tel, audit: Optional[bool]):
    """Decide whether to audit this run, *before* the cluster is built.

    Returns ``(audited, registry)``.  The registry handed back is the one
    safe to cross-check against this sim's structural counters — None
    when the installed registry accumulated earlier runs (its counters
    are cumulative per registry, so only a fresh one is comparable).
    When auditing without telemetry, a bare :class:`repro.obs.Registry`
    is installed so counter cross-checks still run (no span overhead).
    """
    audited = audit if audit is not None else audit_enabled()
    if not audited:
        return False, None
    if getattr(sim.metrics, "enabled", False):
        fresh = tel is None or len(getattr(tel, "runs", ())) <= 1
        return True, (sim.metrics if fresh else None)
    registry = Registry()
    sim.metrics = registry
    return True, registry


def _finish_audit(audited: bool, sim: Simulator, registry,
                  result: RunResult) -> RunResult:
    """Run the end-of-run auditors and attach the report; raises
    :class:`repro.obs.AuditError` on any violation."""
    if audited:
        result.audit_report = run_audit(sim, registry)
        if not result.audit_report.ok:
            raise AuditError(result.audit_report)
    return result


#: ``bench.step_handler_cost`` multiplies the server handler cost by
#: this factor once virtual time passes ``step_at_ns`` — a manufactured
#: mid-run latency changepoint the anomaly detectors must catch (and CI
#: proves they do, while staying silent on the clean twin run).
STEP_FAULT_FACTOR = 25.0


def _echo_handler(resp_size: int, handler_ns: float, sim=None,
                  step_at_ns: Optional[float] = None):
    if (sim is not None and step_at_ns is not None
            and faults.is_active("bench.step_handler_cost")):
        def faulty_handler(request):
            if sim.now >= step_at_ns:
                return resp_size, None, handler_ns * STEP_FAULT_FACTOR
            return resp_size, None, handler_ns
        return faulty_handler

    def handler(request):
        return resp_size, None, handler_ns
    return handler


def _install_observatory(sim: Simulator, warmup: float, measure: float,
                         profile: Optional[bool] = None):
    """Arm the cost observatory for one run, *before* the cluster is
    built (components cache ``sim.occupancy`` at construction, exactly
    like telemetry).

    Occupancy tracking is governed by ``REPRO_OCCUPANCY``; profiling by
    the ``profile`` override or ``REPRO_PROFILE``.  Returns the run's
    :class:`repro.obs.simprof.SimProfile` or None.  Neither instrument
    schedules events or draws randomness, so arming them never changes
    simulation results.
    """
    if occupancy_enabled():
        sim.occupancy = OccupancyTracker(warmup, warmup + measure)
    want = profile if profile is not None else profile_enabled()
    return SimProfile(warmup, warmup + measure) if want else None


def _attach_profile(result: RunResult, sim: Simulator, prof) -> RunResult:
    """Finish the observatory instruments and hang their reports (plain
    JSON-safe dicts) on ``result.profile``."""
    occ = sim.occupancy
    if occ is not None:
        occ.finish(sim.now)
    if prof is not None:
        prof.finish(sim)
        report = prof.report()
        if occ is not None:
            report["occupancy"] = occ.report()
        result.profile = report
    elif occ is not None:
        result.profile = {"occupancy": occ.report()}
    return result


def _run_window(sim: Simulator, recorder: Recorder, warmup: float,
                measure: float, fabric=None, profile=None) -> None:
    """Open the measurement window, attach the run's SLO timeline (with
    switch counter sources when the fabric has a congestion switch), and
    drive the sim to the window's end.  The timeline is purely passive:
    it observes the recorder's completions without scheduling events or
    drawing randomness, so results are unchanged by its presence.  With
    a ``profile``, the instrumented :meth:`Simulator.run_profiled` loop
    is used instead of the fast path — same results, host-cost
    attribution on the side."""
    recorder.open_window(warmup, warmup + measure)
    timeline = slo_timeline(warmup, warmup + measure)
    if fabric is not None:
        attach_switch_sources(timeline, fabric)
        attach_fidelity_sources(timeline, fabric)
    recorder.attach_slo(timeline)
    if profile is not None:
        sim.run_profiled(profile, until=warmup + measure)
    else:
        sim.run(until=warmup + measure)


# ---------------------------------------------------------------------------
# FLock (Figs. 6-12)
# ---------------------------------------------------------------------------

def run_flock(cfg: MicrobenchConfig, *, qps_per_process: Optional[int] = None,
              coalescing: bool = True, thread_scheduling: bool = True,
              flock_cfg: Optional[FlockConfig] = None,
              telemetry=None, audit: Optional[bool] = None,
              profile: Optional[bool] = None) -> RunResult:
    """Closed-loop echo RPCs over FLock."""
    sim = Simulator()
    tel = _install_telemetry(sim, telemetry, "flock")
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure, profile)
    cluster = replace(cfg.cluster, n_clients=cfg.n_clients, seed=cfg.seed)
    servers, clients, fabric = build_cluster(sim, cluster)
    if flock_cfg is None:
        # Fast scheduler convergence for short measurement windows.
        flock_cfg = FlockConfig(sched_interval_ns=150_000.0,
                                thread_sched_interval_ns=150_000.0)
    server = FlockNode(sim, servers[0], fabric, flock_cfg)
    server.fl_reg_handler(ECHO_RPC, _echo_handler(
        cfg.resp_size, cfg.handler_ns, sim, warmup + measure / 2))

    recorder = Recorder(sim)
    sizegen = cfg.make_sizegen()
    n_qps = qps_per_process or cfg.threads_per_client
    handles = []
    client_nodes = []
    jitter_rng = random.Random(cfg.seed ^ 0x7EA)

    def worker(flock_client, handle, thread_id, rng):
        while True:
            if cfg.think_jitter_ns > 0:
                yield sim.timeout(rng.random() * cfg.think_jitter_ns)
            size = sizegen.next(thread_id)
            started = sim.now
            yield from flock_client.fl_call(handle, thread_id, ECHO_RPC, size)
            recorder.record(started)

    for c_idx, node in enumerate(clients):
        for p_idx in range(cfg.processes_per_client):
            fnode = FlockNode(sim, node, fabric, flock_cfg,
                              seed=cfg.seed + c_idx * 131 + p_idx)
            fnode.client.coalescing_enabled = coalescing
            fnode.client.thread_scheduling_enabled = thread_scheduling
            handle = fnode.fl_connect(server, n_qps=n_qps)
            handles.append(handle)
            client_nodes.append(fnode)
            for t_idx in range(cfg.threads_per_client):
                for _ in range(cfg.outstanding):
                    rng = random.Random(jitter_rng.getrandbits(48))
                    sim.spawn(worker(fnode, handle, t_idx, rng),
                              name="bench-worker")

    _run_window(sim, recorder, warmup, measure, fabric, profile=prof)
    degree = (sum(h.mean_coalescing_degree() for h in handles) / len(handles)
              if handles else 1.0)
    result = recorder.result(
        system="flock",
        mean_coalescing_degree=round(degree, 3),
        active_qps=server.server.total_active_qps,
        server_cpu=round(servers[0].cpu.utilization(), 3),
        server_net_frac=round(servers[0].cpu.network_fraction(), 3),
        qp_cache_miss=round(servers[0].rnic.qp_cache.stats.miss_ratio, 4),
        events=sim.events_processed,
    )
    result.telemetry = tel
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


# ---------------------------------------------------------------------------
# eRPC (Figs. 6-8, 16-18 baseline)
# ---------------------------------------------------------------------------

def run_erpc(cfg: MicrobenchConfig, *, telemetry=None,
             audit: Optional[bool] = None,
             profile: Optional[bool] = None) -> RunResult:
    """Closed-loop echo RPCs over the eRPC-like UD baseline."""
    sim = Simulator()
    tel = _install_telemetry(sim, telemetry, "erpc")
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure, profile)
    cluster = replace(cfg.cluster, n_clients=cfg.n_clients, seed=cfg.seed)
    servers, clients, fabric = build_cluster(sim, cluster)
    server = ErpcServer(sim, servers[0], fabric)
    server.register_handler(ECHO_RPC, _echo_handler(
        cfg.resp_size, cfg.handler_ns, sim, warmup + measure / 2))

    recorder = Recorder(sim)
    sizegen = cfg.make_sizegen()
    endpoint_counter = [0]

    jitter_rng = random.Random(cfg.seed ^ 0x7EA)

    def worker(endpoint, server_qp, thread_id, rng):
        while True:
            if cfg.think_jitter_ns > 0:
                yield sim.timeout(rng.random() * cfg.think_jitter_ns)
            size = sizegen.next(thread_id)
            started = sim.now
            response = yield from endpoint.call(server, server_qp, ECHO_RPC, size)
            if response is not None:
                recorder.record(started)

    for node in clients:
        for _p in range(cfg.processes_per_client):
            for t_idx in range(cfg.threads_per_client):
                endpoint = ErpcEndpoint(sim, node, fabric)
                server_qp = server.qp_for_client(endpoint_counter[0])
                endpoint_counter[0] += 1
                for _ in range(cfg.outstanding):
                    rng = random.Random(jitter_rng.getrandbits(48))
                    sim.spawn(worker(endpoint, server_qp, t_idx, rng),
                              name="erpc-worker")

    _run_window(sim, recorder, warmup, measure, fabric, profile=prof)
    result = recorder.result(
        system="erpc",
        server_cpu=round(servers[0].cpu.utilization(), 3),
        server_net_frac=round(servers[0].cpu.network_fraction(), 3),
        recv_drops=server.recv_drops,
        events=sim.events_processed,
    )
    result.telemetry = tel
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


# ---------------------------------------------------------------------------
# RC sharing baselines: no-sharing / FaRM-style spinlock (Fig. 9)
# ---------------------------------------------------------------------------

def run_rc(cfg: MicrobenchConfig, *, threads_per_qp: int = 1,
           telemetry=None, audit: Optional[bool] = None,
           profile: Optional[bool] = None) -> RunResult:
    """Closed-loop echo RPCs over RC write-based RPC without coalescing.

    ``threads_per_qp=1`` is the dedicated-QP (no sharing) config;
    2 or 4 is FaRM-like spinlock sharing.
    """
    sim = Simulator()
    tel = _install_telemetry(sim, telemetry, "rc-%dtpq" % threads_per_qp)
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure, profile)
    cluster = replace(cfg.cluster, n_clients=cfg.n_clients, seed=cfg.seed)
    servers, clients, fabric = build_cluster(sim, cluster)
    server = RcRpcServer(sim, servers[0], fabric)
    server.register_handler(ECHO_RPC, _echo_handler(
        cfg.resp_size, cfg.handler_ns, sim, warmup + measure / 2))

    recorder = Recorder(sim)
    sizegen = cfg.make_sizegen()

    jitter_rng = random.Random(cfg.seed ^ 0x7EA)

    def worker(rc_client, handle, thread_id, rng):
        while True:
            if cfg.think_jitter_ns > 0:
                yield sim.timeout(rng.random() * cfg.think_jitter_ns)
            size = sizegen.next(thread_id)
            started = sim.now
            yield from rc_client.call(handle, thread_id, ECHO_RPC, size)
            recorder.record(started)

    for node in clients:
        rc_client = RcRpcClient(sim, node, fabric)
        n_qps = max(1, (cfg.threads_per_client + threads_per_qp - 1)
                    // threads_per_qp)
        handle = rc_client.connect(server, n_qps=n_qps,
                                   threads_per_qp=threads_per_qp)
        for t_idx in range(cfg.threads_per_client):
            for _ in range(cfg.outstanding):
                rng = random.Random(jitter_rng.getrandbits(48))
                sim.spawn(worker(rc_client, handle, t_idx, rng),
                          name="rc-worker")

    _run_window(sim, recorder, warmup, measure, fabric, profile=prof)
    result = recorder.result(
        system="rc-%dtpq" % threads_per_qp,
        server_cpu=round(servers[0].cpu.utilization(), 3),
        qp_cache_miss=round(servers[0].rnic.qp_cache.stats.miss_ratio, 4),
        events=sim.events_processed,
    )
    result.telemetry = tel
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


# ---------------------------------------------------------------------------
# Motivation: raw RC reads (Fig. 2a) and UD RPC (Fig. 2b)
# ---------------------------------------------------------------------------

def run_raw_reads(total_qps: int, *, n_clients: int = 22, read_size: int = 16,
                  outstanding_per_qp: int = 4,
                  warmup_ns: float = 200_000.0,
                  measure_ns: float = 300_000.0,
                  cluster: Optional[ClusterConfig] = None,
                  telemetry=None, audit: Optional[bool] = None,
                  profile: Optional[bool] = None) -> RunResult:
    """16-byte RDMA reads over an increasing number of QPs."""
    sim = Simulator()
    tel = _install_telemetry(sim, telemetry, "rc-read qps=%d" % total_qps)
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    scale = bench_scale()
    warmup, measure = warmup_ns * scale, measure_ns * scale
    prof = _install_observatory(sim, warmup, measure, profile)
    cluster = replace(cluster or ClusterConfig(), n_clients=n_clients)
    servers, clients, fabric = build_cluster(sim, cluster)
    region = servers[0].memory.register(1 << 20)

    timeline = attach_fidelity_sources(
        attach_switch_sources(slo_timeline(warmup, warmup + measure), fabric),
        fabric)

    per_client = max(1, total_qps // n_clients)
    read_clients: List[ReadClient] = []
    for node in clients:
        rc = ReadClient(sim, node, fabric, servers[0], region,
                        n_qps=per_client, read_size=read_size,
                        outstanding_per_qp=outstanding_per_qp)
        # Raw reads have no Recorder; the passive completion hook feeds
        # the SLO timeline so Fig. 2a's cliff is visible *within* a run.
        rc.on_complete = lambda started, now: timeline.observe(
            now, now - started)
        rc.start()
        read_clients.append(rc)

    if prof is not None:
        sim.run_profiled(prof, until=warmup)
    else:
        sim.run(until=warmup)
    before = sum(rc.completed for rc in read_clients)
    if prof is not None:
        sim.run_profiled(prof, until=warmup + measure)
    else:
        sim.run(until=warmup + measure)
    after = sum(rc.completed for rc in read_clients)
    ops = after - before
    slo = timeline.report()
    result = RunResult(ops=ops, duration_ns=measure,
                       latency={"count": 0, "median": 0.0, "p99": 0.0,
                                "p999": 0.0, "mean": 0.0, "min": 0.0,
                                "max": 0.0},
                       extras={
                           "system": "rc-read",
                           "total_qps": per_client * n_clients,
                           "qp_cache_miss": round(
                               servers[0].rnic.qp_cache.stats.miss_ratio, 4),
                           "pcie_reads": servers[0].rnic.pcie.reads_issued,
                       },
                       telemetry=tel,
                       slo=slo,
                       anomalies=detect_run_anomalies(slo, label="rc-read"),
                       host=host_block(sim))
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


def run_ud_rpc(n_senders: int, *, n_clients: int = 22, req_size: int = 64,
               resp_size: int = 64, handler_ns: float = 100.0,
               outstanding: int = 2, warmup_ns: float = 200_000.0,
               measure_ns: float = 300_000.0,
               cluster: Optional[ClusterConfig] = None,
               telemetry=None, audit: Optional[bool] = None,
               profile: Optional[bool] = None) -> RunResult:
    """UD-based RPC with an increasing number of senders."""
    sim = Simulator()
    tel = _install_telemetry(sim, telemetry, "ud-rpc n=%d" % n_senders)
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    scale = bench_scale()
    warmup, measure = warmup_ns * scale, measure_ns * scale
    prof = _install_observatory(sim, warmup, measure, profile)
    cluster = replace(cluster or ClusterConfig(), n_clients=n_clients)
    servers, clients, fabric = build_cluster(sim, cluster)
    server = UdRpcServer(sim, servers[0], fabric)
    server.register_handler(ECHO_RPC, _echo_handler(
        resp_size, handler_ns, sim, warmup + measure / 2))

    recorder = Recorder(sim)

    def worker(endpoint, server_qp):
        while True:
            started = sim.now
            response = yield from endpoint.call(server, server_qp, ECHO_RPC,
                                                req_size)
            if response is not None:
                recorder.record(started)

    per_client = max(1, n_senders // n_clients)
    sender_idx = 0
    for node in clients:
        for _s in range(per_client):
            endpoint = UdEndpoint(sim, node, fabric)
            server_qp = server.qp_for_client(sender_idx)
            sender_idx += 1
            for _ in range(outstanding):
                sim.spawn(worker(endpoint, server_qp), name="ud-worker")

    _run_window(sim, recorder, warmup, measure, fabric, profile=prof)
    result = recorder.result(
        system="ud-rpc",
        n_senders=per_client * n_clients,
        server_cpu=round(servers[0].cpu.utilization(), 3),
        server_net_frac=round(servers[0].cpu.network_fraction(), 3),
        events=sim.events_processed,
    )
    result.telemetry = tel
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


# ---------------------------------------------------------------------------
# Sweeps: the figure-level fan-outs (parallelizable via --jobs)
# ---------------------------------------------------------------------------

def sweep_raw_reads(qps_list, *, n_clients: int = 22,
                    outstanding_per_qp: int = 4, jobs: int = 1) -> dict:
    """Fig. 2a's QP ramp as an ordered ``{qps: RunResult}`` sweep."""
    from .parallel import SweepPoint, run_sweep
    points = [
        SweepPoint("fig2a/qps=%d" % qps, run_raw_reads, (qps,),
                   {"n_clients": n_clients,
                    "outstanding_per_qp": outstanding_per_qp})
        for qps in qps_list]
    merged = run_sweep(points, jobs)
    return {qps: result for qps, (_key, result) in zip(qps_list, merged)}


def sweep_ud_rpc(senders_list, *, n_clients: int = 22, jobs: int = 1) -> dict:
    """Fig. 2b's sender ramp as an ordered ``{senders: RunResult}``."""
    from .parallel import SweepPoint, run_sweep
    points = [
        SweepPoint("fig2b/senders=%d" % n, run_ud_rpc, (n,),
                   {"n_clients": n_clients})
        for n in senders_list]
    merged = run_sweep(points, jobs)
    return {n: result for n, (_key, result) in zip(senders_list, merged)}


def sweep_flock_vs_erpc(threads_list, *, n_clients: int = 23,
                        outstanding: int = 1, jobs: int = 1) -> dict:
    """Figs. 6-8: both systems across a thread ramp.

    Returns ``{(system, outstanding, threads): RunResult}`` — the exact
    key shape :func:`repro.harness.scorecards.scorecards_fig6_7_8`
    consumes — with results identical to calling :func:`run_flock` /
    :func:`run_erpc` in a serial loop.
    """
    from .parallel import SweepPoint, run_sweep
    points = []
    for threads in threads_list:
        cfg = MicrobenchConfig(n_clients=n_clients,
                               threads_per_client=threads,
                               outstanding=outstanding)
        points.append(SweepPoint(
            "fig6/flock/t=%d" % threads, run_flock, (cfg,)))
        points.append(SweepPoint(
            "fig6/erpc/t=%d" % threads, run_erpc, (cfg,)))
    merged = iter(run_sweep(points, jobs))
    results = {}
    for threads in threads_list:
        results[("flock", outstanding, threads)] = next(merged)[1]
        results[("erpc", outstanding, threads)] = next(merged)[1]
    return results
