"""Scorecard builders: one per reproduced paper figure.

Each builder condenses a figure's sweep (the same result dictionaries
the benchmark suite produces) into a :class:`repro.obs.Scorecard` —
headline metrics with regression tolerances plus the figure's
qualitative *shape checks* (Fig. 2a's cliff past the QP-cache size,
Fig. 10's coalescing speedup growing with outstanding requests, ...).

Builders degrade gracefully: metrics and checks are only emitted for
sweep points actually present, so the CLI's reduced sweeps and the
benchmark suite's full sweeps both produce valid scorecards.  Only the
full-sweep scorecards are meant to be committed as baselines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..obs import Scorecard
from ..obs.anomaly import detect_sweep_anomalies
from ..obs.explain import attribution_blocks

__all__ = [
    "attach_anomalies",
    "attach_attribution",
    "attach_host",
    "attach_profile",
    "attach_slo",
    "scorecard_fig2a",
    "scorecards_fig6_7_8",
    "scorecard_fig9",
    "scorecard_fig10",
    "scorecard_fig11",
    "scorecard_fig12",
    "scorecard_fig14",
    "scorecard_fig15",
    "scorecard_fidelity_ab",
    "scorecard_incast",
    "scorecard_search",
]


def attach_attribution(sc: Scorecard, results: Iterable) -> None:
    """Attach per-run critical-path attribution blocks to a scorecard.

    For every distinct telemetry carried by the figure's results, each
    traced run contributes ``sc.meta["attribution"][run_label]`` with
    the number of critical paths, each resource's share of blocked time,
    and the what-if speedup upper bound per resource.  Untraced runs
    (``result.telemetry is None`` — the default benchmark path) leave
    the scorecard untouched, so committed baselines only gain the block
    when attribution was explicitly enabled.
    """
    seen = set()
    blocks: Dict[str, dict] = {}
    for result in results:
        tel = getattr(result, "telemetry", None)
        if tel is None or id(tel) in seen:
            continue
        seen.add(id(tel))
        blocks.update(attribution_blocks(tel))
    if blocks:
        sc.meta["attribution"] = blocks


def _slo_label(key) -> str:
    """Stable string label for a sweep key (tuples join with '/')."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def attach_slo(sc: Scorecard, results: Dict) -> None:
    """Attach per-run windowed SLO timelines to ``sc.meta["slo"]``.

    Every sweep point whose result carries a
    :attr:`repro.harness.metrics.RunResult.slo` report contributes
    ``sc.meta["slo"][label]`` — per-window p50/p99/p999 latency, goodput
    and counter deltas plus any threshold violation events — so a
    committed scorecard records the run's *trajectory*, not just its
    terminal aggregates.  Points without a timeline are skipped, and the
    block is omitted entirely when no point has one, leaving legacy
    scorecards byte-identical.
    """
    blocks: Dict[str, dict] = {}
    for key, result in results.items():
        slo = getattr(result, "slo", None)
        if slo is not None:
            blocks[_slo_label(key)] = slo
    if blocks:
        sc.meta["slo"] = blocks


def attach_host(sc: Scorecard, results: Dict) -> None:
    """Attach host-cost blocks to ``sc.meta["host"]``.

    Aggregates every sweep point's :attr:`RunResult.host` block
    (wall-clock seconds, events fired, events/sec) into figure totals
    plus a per-point ``"runs"`` map.  The top-level ``events_per_sec``
    is what ``runs query 'figX.events_per_sec < ...'`` resolves against
    (the runstore falls back to ``meta["host"]`` for names that are not
    gated metrics).  Host timings are machine-dependent, so this lives
    in ``meta`` — never as a gated metric — and the block is omitted
    entirely when no point carries one, keeping hand-built and legacy
    results byte-identical.
    """
    runs: Dict[str, dict] = {}
    for key, result in results.items():
        host = getattr(result, "host", None)
        if host is not None:
            runs[_slo_label(key)] = host
    if not runs:
        return
    wall = sum(block["wall_s"] for block in runs.values())
    events = sum(block["events"] for block in runs.values())
    sc.meta["host"] = {
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / max(wall, 1e-9), 1),
        "runs": runs,
    }


def attach_profile(sc: Scorecard, results: Dict) -> None:
    """Attach cost-observatory reports to ``sc.meta["profile"]``.

    Every sweep point whose result carries a
    :attr:`RunResult.profile` block (event census, host-time buckets,
    occupancy heatmap — see :mod:`repro.obs.simprof`) contributes
    ``sc.meta["profile"][label]``.  Omitted entirely when the run was
    not profiled, so default scorecards stay byte-identical.
    """
    blocks: Dict[str, dict] = {}
    for key, result in results.items():
        prof = getattr(result, "profile", None)
        if prof is not None:
            blocks[_slo_label(key)] = prof
    if blocks:
        sc.meta["profile"] = blocks


def attach_anomalies(sc: Scorecard, results: Dict,
                     sweep: Optional[List[dict]] = None,
                     labels: Optional[Dict[str, str]] = None) -> List[dict]:
    """Attach detected anomalies to ``sc.meta["anomalies"]``.

    The block has up to three parts: ``"sweep"`` — anomalies detected on
    the figure's headline curve (cliffs/knees, passed in by the builder
    that owns the curve); ``"runs"`` — each sweep point's within-run
    anomalies (:attr:`repro.harness.metrics.RunResult.anomalies`:
    changepoints, counter bursts), keyed by the point's label; and
    ``"labels"`` — a sweep-x → attribution-run-label map so a stored
    scorecard can be explained offline (``explain run:N`` joins sweep
    anomalies to ``meta["attribution"]`` through it).  Empty parts are
    omitted, and results without anomalies leave the scorecard
    untouched — legacy scorecards stay byte-identical.  Returns the
    sweep anomaly list for builders that also derive checks from it.
    """
    block: Dict[str, object] = {}
    if sweep:
        block["sweep"] = sweep
    runs = {}
    for key, result in results.items():
        found = getattr(result, "anomalies", None)
        if found:
            runs[_slo_label(key)] = found
    if runs:
        block["runs"] = runs
    if block and labels:
        block["labels"] = labels
    if block:
        sc.meta["anomalies"] = block
    return sweep or []


def _windowed_p99s(slo: Optional[dict]) -> List[float]:
    """The non-empty per-window p99s of one run's SLO report."""
    if not slo:
        return []
    return [row["p99_us"] for row in slo.get("windows", ())
            if row.get("p99_us") is not None]


def _fig2a_slo_check(sc: Scorecard, results: Dict[int, object],
                     qp_cache_entries: int) -> None:
    """Assert the windowed-SLO view of the cliff: per-window read p99 at
    a post-cliff point sits well above a pre-cliff point's — the
    timeline shows the transition, not just the end-of-run aggregate."""
    pre_pts = sorted(q for q in results
                     if q <= qp_cache_entries // 2
                     and _windowed_p99s(getattr(results[q], "slo", None)))
    post_pts = sorted(q for q in results
                      if q > qp_cache_entries
                      and _windowed_p99s(getattr(results[q], "slo", None)))
    if not pre_pts or not post_pts:
        return
    pre = _windowed_p99s(results[max(pre_pts)].slo)
    post = _windowed_p99s(results[max(post_pts)].slo)
    pre_p99 = sorted(pre)[len(pre) // 2]
    post_p99 = sorted(post)[len(post) // 2]
    sc.add_check(
        "slo_windows_show_cliff",
        post_p99 > 1.5 * pre_p99,
        "median per-window p99 at %d QPs (%.2fus) well above the "
        "pre-cliff %d-QP windows (%.2fus)"
        % (max(post_pts), post_p99, max(pre_pts), pre_p99))


def _fig2a_attribution_check(sc: Scorecard, qps_points: List[int],
                             qp_cache_entries: int) -> None:
    """When traced at full scale, assert the attribution narrative: the
    QP-cache PCIe stall is negligible before the cliff and the dominant
    critical-path resource after it."""
    from .microbench import bench_scale  # no cycle: microbench != scorecards

    blocks = sc.meta.get("attribution")
    if not blocks or bench_scale() != 1.0:
        return

    def shares_at(qps: int) -> Optional[Dict[str, float]]:
        return blocks.get("rc-read qps=%d" % qps, {}).get("shares")

    pre_pts = [q for q in qps_points if q <= qp_cache_entries // 2
               and shares_at(q)]
    post_pts = [q for q in qps_points if q > qp_cache_entries
                and shares_at(q)]
    if not pre_pts or not post_pts:
        return
    pre = shares_at(max(pre_pts))
    post = shares_at(max(post_pts))
    pcie_post = post.get("pcie_stall", 0.0)
    sc.add_check(
        "attribution_blames_qp_cache",
        pre.get("pcie_stall", 0.0) < 0.05
        and pcie_post > 0.35
        and pcie_post == max(post.values()),
        "pcie_stall <5%% of critical-path time at %d QPs, dominant "
        "(>35%%) at %d QPs" % (max(pre_pts), max(post_pts)))


#: Buckets that make up the wire data path — fabric-side event machinery
#: as opposed to timers, the kernel, or the application.  ``flow`` is
#: the fluid transport model's analytic fast path (net/flow.py,
#: net/fidelity.py).
_FABRIC_SIDE = ("fabric", "switch", "verbs", "rnic", "pcie", "cq", "flow")


def _fig2a_profile_check(sc: Scorecard, results: Dict[int, object]) -> None:
    """When profiled at full scale, assert the cost-observatory
    narrative: the event census of the highest-QP point is led by the
    fabric-side machinery — RC reads are wire transfers, so the verbs
    read pipeline and its transfer/completion plumbing own the event
    stream, not timers or the application."""
    from .microbench import bench_scale  # no cycle: microbench != scorecards

    if bench_scale() != 1.0:
        return
    profiled = {q: r.profile for q, r in results.items()
                if getattr(r, "profile", None)
                and "census" in getattr(r, "profile")}
    if not profiled:
        return
    q_hi = max(profiled)
    census = profiled[q_hi]["census"]
    comp = census.get("dominant_component", "none")
    share = census.get("dominant_share", 0.0)
    sc.add_check(
        "fabric_events_dominate",
        comp in _FABRIC_SIDE and share > 0.25,
        "event census at %d QPs: %s owns %.0f%% of measure-window "
        "dispatches" % (q_hi, comp, share * 100))


def scorecard_fig2a(results: Dict[int, object],
                    qp_cache_entries: int = 560) -> Scorecard:
    """Fig. 2(a): RC read throughput rises, plateaus around the QP-cache
    size, then collapses as the connection cache thrashes."""
    sc = Scorecard("fig2a", "RC read throughput vs #QPs")
    mops = {qps: r.mops for qps, r in results.items()}
    lo, hi = min(mops), max(mops)
    best = max(mops.values())
    peak_qps = max(mops, key=mops.get)
    sc.add_metric("peak_mops", best, better="higher", unit="Mops")
    sc.add_metric("peak_qps", peak_qps, better="info")
    sc.add_metric("rise_ratio", best / max(mops[lo], 1e-9),
                  better="higher", rtol=0.10)
    sc.add_metric("collapse_ratio", mops[hi] / max(best, 1e-9),
                  better="lower", rtol=0.10)
    plateau = [qps for qps, m in mops.items() if m >= 0.95 * best]
    if 176 in mops and 704 in mops:
        sc.add_check("plateau_covers_paper_window",
                     176 in plateau and 704 in plateau and max(plateau) <= 704,
                     "throughput peaks between 176 and 704 QPs")
    sc.add_check("rises_from_low_end", best > 1.3 * mops[lo],
                 "few QPs cannot saturate the RNIC")
    xs = sorted(mops)
    sweep = [a.to_dict() for a in detect_sweep_anomalies(
        xs, [mops[q] for q in xs],
        metric="mops", series="rc-read", figure="fig2a")]
    if hi > qp_cache_entries:
        # The generic detector replaces the old hand-coded threshold
        # (mops[hi] < 0.55 * best): the paper's cliff is reproduced iff
        # a detected throughput-drop cliff lands past the QP-cache size.
        sc.add_check(
            "detected_cliff_matches_paper",
            any(a["kind"] == "cliff" and a["direction"] == "drop"
                and a["x"] > qp_cache_entries for a in sweep),
            "the cliff detector locates a throughput collapse past the "
            "%d-entry QP cache (no per-figure threshold)"
            % qp_cache_entries)
        miss = {qps: r.extras.get("qp_cache_miss", 0.0)
                for qps, r in results.items()}
        sc.add_check("collapse_is_cache_thrash",
                     miss[hi] > miss[peak_qps],
                     "miss ratio grows from peak to collapse")
    attach_slo(sc, results)
    _fig2a_slo_check(sc, results, qp_cache_entries)
    attach_attribution(sc, results.values())
    _fig2a_attribution_check(sc, xs, qp_cache_entries)
    attach_host(sc, results)
    attach_profile(sc, results)
    _fig2a_profile_check(sc, results)
    attach_anomalies(sc, results, sweep=sweep,
                     labels={str(q): "rc-read qps=%d" % q for q in xs})
    return sc


def scorecards_fig6_7_8(results: Dict[tuple, object]) -> List[Scorecard]:
    """Figs. 6/7/8: FLock vs eRPC throughput / median / tail latency.

    ``results`` is keyed ``(system, outstanding, threads)`` like the
    benchmark sweep.
    """
    outs = sorted({k[1] for k in results})
    threads = sorted({k[2] for k in results})
    o_lo, t_hi = outs[0], threads[-1]

    fig6 = Scorecard("fig6", "FLock vs eRPC throughput")
    flock_hi = results[("flock", o_lo, t_hi)]
    erpc_hi = results[("erpc", o_lo, t_hi)]
    fig6.add_metric("flock_mops_t%d" % t_hi, flock_hi.mops,
                    better="higher", unit="Mops")
    fig6.add_metric("erpc_mops_t%d" % t_hi, erpc_hi.mops,
                    better="info", unit="Mops")
    fig6.add_metric("flock_over_erpc_t%d" % t_hi,
                    flock_hi.mops / max(erpc_hi.mops, 1e-9),
                    better="higher", rtol=0.10)
    if 16 in threads and 48 in threads:
        for o in outs:
            fig6.add_check(
                "erpc_saturates_o%d" % o,
                results[("erpc", o, 48)].mops
                < 1.2 * results[("erpc", o, 16)].mops,
                "eRPC 48-thread throughput barely above 16-thread")
        fig6.add_check(
            "flock_keeps_scaling",
            results[("flock", o_lo, 48)].mops
            > 1.3 * results[("flock", o_lo, 16)].mops,
            "FLock scales 16 -> 48 threads")
        for o in outs:
            fig6.add_check(
                "flock_wins_o%d" % o,
                all(results[("flock", o, t)].mops
                    > 1.2 * results[("erpc", o, t)].mops
                    for t in (16, 32, 48) if t in threads),
                "paper's 1.25-3.4x band at high thread counts")

    fig7 = Scorecard("fig7", "FLock vs eRPC median latency")
    fig8 = Scorecard("fig8", "FLock vs eRPC tail latency")
    t_ref = 32 if 32 in threads else t_hi
    flock32 = results[("flock", o_lo, t_ref)]
    erpc32 = results[("erpc", o_lo, t_ref)]
    fig7.add_metric("flock_median_us_t%d" % t_ref, flock32.median_us,
                    better="lower", unit="us")
    fig7.add_metric("erpc_over_flock_median_t%d" % t_ref,
                    erpc32.median_us / max(flock32.median_us, 1e-9),
                    better="higher", rtol=0.15)
    fig7.add_check("erpc_median_degrades",
                   erpc32.median_us > 1.6 * flock32.median_us,
                   "paper: ~2x worse eRPC median at 32 threads")
    fig8.add_metric("flock_p99_us_t%d" % t_ref, flock32.p99_us,
                    better="lower", unit="us")
    fig8.add_metric("erpc_over_flock_p99_t%d" % t_ref,
                    erpc32.p99_us / max(flock32.p99_us, 1e-9),
                    better="higher", rtol=0.15)
    fig8.add_check("erpc_tail_degrades",
                   erpc32.p99_us > 1.2 * flock32.p99_us,
                   "paper: ~1.5x worse eRPC p99 at 32 threads")
    attach_slo(fig6, results)
    attach_anomalies(fig6, results)
    attach_attribution(fig6, results.values())
    attach_host(fig6, results)
    attach_profile(fig6, results)
    return [fig6, fig7, fig8]


def scorecard_fig9(results: Dict[tuple, object]) -> Scorecard:
    """Fig. 9: QP-sharing approaches, keyed ``(system, threads)``."""
    sc = Scorecard("fig9", "QP sharing approaches")
    threads = sorted({k[1] for k in results})
    t_hi = threads[-1]
    flock = results[("flock", t_hi)]
    nosh = results[("nosharing", t_hi)]
    sc.add_metric("flock_mops_t%d" % t_hi, flock.mops,
                  better="higher", unit="Mops")
    sc.add_metric("flock_over_nosharing_t%d" % t_hi,
                  flock.mops / max(nosh.mops, 1e-9),
                  better="higher", rtol=0.10)
    for t in (1, 8):
        if ("flock", t) in results:
            sc.add_check(
                "parity_at_%d_threads" % t,
                results[("flock", t)].mops
                > 0.8 * results[("nosharing", t)].mops,
                "FLock matches no-sharing at low thread counts")
    if ("flock", 32) in results:
        sc.add_check("flock_wins_at_32",
                     results[("flock", 32)].mops
                     > 1.30 * results[("nosharing", 32)].mops,
                     "paper: +62% at 32 threads")
    if ("flock", 48) in results:
        sc.add_check("flock_wins_at_48",
                     results[("flock", 48)].mops
                     > 1.50 * results[("nosharing", 48)].mops,
                     "paper: +133% at 48 threads")
    for t in (32, 48):
        if ("farm2", t) in results:
            sc.add_check(
                "spinlock_no_better_t%d" % t,
                results[("farm2", t)].mops
                < 1.25 * results[("nosharing", t)].mops
                and results[("farm4", t)].mops
                < 1.25 * results[("nosharing", t)].mops,
                "FaRM-like sharing performs like no sharing")
    attach_slo(sc, results)
    attach_anomalies(sc, results)
    attach_attribution(sc, results.values())
    attach_host(sc, results)
    attach_profile(sc, results)
    return sc


def scorecard_fig10(results: Dict[tuple, object]) -> Scorecard:
    """Fig. 10: coalescing on/off, keyed ``(coalescing, outstanding)``."""
    sc = Scorecard("fig10", "Coalescing impact")
    outs = sorted({k[1] for k in results})

    def speedup(o):
        return (results[(True, o)].mops
                / max(results[(False, o)].mops, 1e-9))

    o_lo, o_hi = outs[0], outs[-1]
    sc.add_metric("speedup_o%d" % o_lo, speedup(o_lo),
                  better="higher", rtol=0.10)
    sc.add_metric("speedup_o%d" % o_hi, speedup(o_hi),
                  better="higher", rtol=0.10)
    sc.add_metric("coalesce_mops_o%d" % o_hi, results[(True, o_hi)].mops,
                  better="higher", unit="Mops")
    sc.add_metric(
        "degree_o%d" % o_hi,
        results[(True, o_hi)].extras.get("mean_coalescing_degree", 1.0),
        better="equal", rtol=0.20, unit="reqs/msg")
    sc.add_check("coalescing_always_wins",
                 all(speedup(o) > 1.02 for o in outs),
                 "coalescing never loses")
    sc.add_check("speedup_grows_with_outstanding",
                 speedup(o_hi) > speedup(o_lo),
                 "paper: 1.4x at 1 outstanding -> 1.7x at 8 (crossover)")
    if o_hi >= 8:
        sc.add_check("substantial_win_at_depth",
                     speedup(o_hi) > 1.4,
                     "paper's ~1.7x at 8 outstanding")
        degrees = [results[(True, o)].extras.get("mean_coalescing_degree",
                                                 1.0) for o in outs]
        sc.add_check("degree_grows", degrees[-1] > degrees[0]
                     and degrees[0] > 1.1 and degrees[-1] > 1.5,
                     "requests per message grow with outstanding")
    attach_slo(sc, results)
    attach_anomalies(sc, results)
    attach_attribution(sc, results.values())
    attach_host(sc, results)
    attach_profile(sc, results)
    return sc


def scorecard_fig11(results: Dict[tuple, object]) -> Scorecard:
    """Fig. 11: thread scheduling, keyed ``(large_size, scheduling)``
    with per-class summary dicts (the benchmark's ``run_point`` shape)."""
    sc = Scorecard("fig11", "Sender-side thread scheduling")
    sizes = sorted({k[0] for k in results})
    s_hi = sizes[-1]
    off, on = results[(s_hi, False)], results[(s_hi, True)]
    sc.add_metric("large_median_ratio_%dB" % s_hi,
                  on["large"]["median"] / max(off["large"]["median"], 1e-9),
                  better="lower", rtol=0.15)
    sc.add_metric("mops_ratio_%dB" % s_hi,
                  on["mops"] / max(off["mops"], 1e-9),
                  better="higher", rtol=0.10)
    sc.add_metric("mixed_qps_on_%dB" % s_hi, on["mixed_qps"],
                  better="lower", atol=4)
    sc.add_check("separates_size_classes",
                 all(results[(s, True)]["mixed_qps"]
                     < results[(s, False)]["mixed_qps"] / 2 for s in sizes),
                 "Algorithm 1 packs size classes onto disjoint QPs")
    sc.add_check("large_escapes_head_of_line",
                 all(results[(s, True)]["large"]["median"]
                     < 0.7 * results[(s, False)]["large"]["median"]
                     for s in sizes),
                 "large requests stop queueing behind combining pipelines")
    sc.add_check("throughput_not_sacrificed",
                 all(results[(s, True)]["mops"]
                     > 0.85 * results[(s, False)]["mops"] for s in sizes),
                 "scheduling costs at most a modest slice of throughput")
    return sc


def scorecard_fig12(results: Dict[tuple, object]) -> Scorecard:
    """Fig. 12: node scalability, keyed ``(config, total_clients)`` with
    configs ``1t1q`` / ``2t1q`` / ``2t2q``."""
    sc = Scorecard("fig12", "Node scalability")
    totals = sorted({k[1] for k in results})
    c_hi = totals[-1]
    shared = results[("2t1q", c_hi)]
    dedicated = results.get(("2t2q", c_hi))
    sc.add_metric("shared_mops_c%d" % c_hi, shared.mops,
                  better="higher", unit="Mops")
    if dedicated is not None:
        sc.add_metric("shared_over_dedicated_c%d" % c_hi,
                      shared.mops / max(dedicated.mops, 1e-9),
                      better="higher", rtol=0.10)
    if ("1t1q", 92) in results and ("1t1q", 368) in results:
        sc.add_check("single_thread_saturates",
                     results[("1t1q", 368)].mops
                     < 1.35 * results[("1t1q", 92)].mops,
                     "no coalescing means no further scaling")
    compare = [t for t in (92, 184, 368) if ("2t2q", t) in results]
    if compare:
        wins = sum(1 for t in compare
                   if results[("2t1q", t)].mops
                   > 1.05 * results[("2t2q", t)].mops)
        sc.add_check("shared_qp_beats_dedicated", wins >= len(compare) - 1,
                     "paper: +10-30% with half the QPs")
    attach_slo(sc, results)
    attach_anomalies(sc, results)
    attach_attribution(sc, results.values())
    attach_host(sc, results)
    attach_profile(sc, results)
    return sc


def _txn_scorecard(figure: str, title: str, results: Dict[tuple, object],
                   win_threads, win_ratio: float,
                   tail_thread: int) -> Scorecard:
    sc = Scorecard(figure, title)
    threads = sorted({k[1] for k in results})
    t_hi = threads[-1]
    flock = results[("flocktx", t_hi)]
    fasst = results[("fasst", t_hi)]
    sc.add_metric("flocktx_mtxn_t%d" % t_hi, flock.mops,
                  better="higher", unit="Mtxn/s")
    sc.add_metric("flocktx_over_fasst_t%d" % t_hi,
                  flock.mops / max(fasst.mops, 1e-9),
                  better="higher", rtol=0.10)
    sc.add_metric("flocktx_p99_t%d" % t_hi, flock.p99_us,
                  better="lower", unit="us")
    for t in win_threads:
        if ("flocktx", t) in results:
            sc.add_check(
                "flocktx_wins_t%d" % t,
                results[("flocktx", t)].mops
                > win_ratio * results[("fasst", t)].mops,
                "FLockTX ahead of FaSST by >= %.0f%%"
                % ((win_ratio - 1) * 100))
    t_tail = tail_thread if ("flocktx", tail_thread) in results else t_hi
    sc.add_check("flocktx_tail_lower_t%d" % t_tail,
                 results[("flocktx", t_tail)].p99_us
                 < results[("fasst", t_tail)].p99_us,
                 "FLockTX p99 below FaSST")
    sc.add_check("transactions_commit",
                 all(r.extras.get("committed", 0) > 0
                     for r in results.values()),
                 "every configuration commits work")
    attach_slo(sc, results)
    attach_anomalies(sc, results)
    attach_attribution(sc, results.values())
    attach_host(sc, results)
    attach_profile(sc, results)
    return sc


def scorecard_incast(results: Dict[str, object]) -> Scorecard:
    """Extension figure: N→1 incast degradation, FLock vs UD RPC.

    ``results`` is :func:`repro.harness.incastbench.run_incast`'s dict —
    four run results keyed ``{flock,ud}_{base,cong}`` plus the derived
    per-system retentions (congested / uncongested throughput).
    """
    sc = Scorecard("ext_incast", "N→1 incast under fabric congestion")
    flock_ret = results["flock_retention"]
    ud_ret = results["ud_retention"]
    sc.add_metric("flock_retention", flock_ret, better="higher", rtol=0.10)
    sc.add_metric("ud_retention", ud_ret, better="info")
    sc.add_metric("flock_over_ud_retention",
                  flock_ret / max(ud_ret, 1e-9),
                  better="higher", rtol=0.15)
    sc.add_metric("flock_cong_mops", results["flock_cong"].mops,
                  better="higher", unit="Mops")
    sc.add_metric("ud_cong_mops", results["ud_cong"].mops,
                  better="info", unit="Mops")
    sc.add_check(
        "flock_degrades_less", flock_ret > ud_ret,
        "FLock retains strictly more of its uncongested throughput: "
        "DCQCN paces the RC flows before the shallow buffer overflows "
        "and RC absorbs residual drops as bounded retransmits, while "
        "the UD baseline loses its synchronized first burst and stalls "
        "a coarse application timeout per loss")
    cong = results["flock_cong"].extras
    buffer_bytes = cong.get("buffer_bytes", 0)
    peaks = [r.extras.get("peak_port_depth_bytes", 0.0)
             for r in (results["flock_cong"], results["ud_cong"])]
    sc.add_check(
        "queue_depth_bounded",
        buffer_bytes > 0 and all(p <= buffer_bytes + 1e-6 for p in peaks),
        "peak egress-queue depth stays within the %d-byte buffer"
        % buffer_bytes)
    sc.add_check(
        "ecn_marks_present",
        cong.get("ecn_marks", 0) > 0 and cong.get("cnps", 0) > 0,
        "the congested FLock leg produced ECN marks and delivered CNPs")
    sc.add_check(
        "baselines_unaffected",
        not results["flock_base"].extras.get("congested", True)
        and not results["ud_base"].extras.get("congested", True),
        "baseline legs ran on the contention-free fabric")
    # Hybrid-fidelity runs export their demotion/promotion transitions
    # so CI can assert that demotion stayed confined to the hot port.
    fid = {leg: {k: results[leg].extras[k]
                 for k in ("fidelity_demotions", "fidelity_promotions",
                           "fidelity_demoted_ports")
                 if k in results[leg].extras}
           for leg in ("flock_base", "flock_cong", "ud_base", "ud_cong")}
    if any(fid.values()):
        sc.meta["fidelity_transitions"] = fid
    attach_slo(sc, results)
    attach_anomalies(sc, results)
    attach_attribution(sc, (results["flock_base"], results["flock_cong"],
                            results["ud_base"], results["ud_cong"]))
    attach_host(sc, results)
    attach_profile(sc, results)
    return sc


def scorecard_fig14(results: Dict[tuple, object]) -> Scorecard:
    """Fig. 14: TATP — FLockTX vs FaSST, keyed ``(system, threads)``."""
    return _txn_scorecard("fig14", "TATP transactions", results,
                          win_threads=(8, 16), win_ratio=1.4,
                          tail_thread=16)


def scorecard_fig15(results: Dict[tuple, object]) -> Scorecard:
    """Fig. 15: Smallbank — FLockTX vs FaSST, keyed ``(system, threads)``."""
    return _txn_scorecard("fig15", "Smallbank transactions", results,
                          win_threads=(4, 8), win_ratio=1.15,
                          tail_thread=1)


def scorecard_search(name: str, evaluation: Dict, *, objective: str = "",
                     description: str = "",
                     expected_top_resource: Optional[str] = None,
                     expect_anomaly_records: bool = True,
                     max_goodput_retained: Optional[float] = None
                     ) -> Scorecard:
    """A search-discovered anomaly scenario as a permanent gate.

    ``evaluation`` is the traced+explained form of one search candidate
    (:func:`repro.search.report.explain_entry`): both legs' headline
    numbers, the detector's anomaly records, and the baseline->scenario
    attribution shift.  The gate pins the *pathology*: the two legs'
    throughputs, the goodput collapse and tail inflation that made the
    candidate score, the anomaly count, and the prime-suspect resource
    of the attribution shift.  A code change that silently heals (or
    worsens) the found cliff trips the baseline comparison.

    ``expect_anomaly_records=False`` is for *steady-state* pathologies
    (e.g. a sustained PFC pause storm): the within-run detectors key on
    mid-run transitions, so a uniformly-bad window legitimately has no
    records — the collapse bound (``max_goodput_retained``) carries the
    anomaly assertion instead.
    """
    sc = Scorecard("search_%s" % name,
                   description or "search-discovered anomaly: %s" % name)
    base = evaluation.get("baseline", {})
    cong = evaluation.get("scenario", {})
    sc.add_metric("baseline_mops", base.get("mops", 0.0),
                  better="higher", rtol=0.05, unit="Mops")
    sc.add_metric("scenario_mops", cong.get("mops", 0.0),
                  better="equal", rtol=0.10, unit="Mops")
    sc.add_metric("goodput_retained",
                  evaluation.get("goodput_retained", 0.0),
                  better="equal", rtol=0.10, atol=0.02)
    sc.add_metric("tail_ratio", evaluation.get("tail_ratio", 0.0),
                  better="equal", rtol=0.20)
    sc.add_metric("scenario_p99_us", cong.get("p99_us", 0.0),
                  better="equal", rtol=0.20, unit="us")
    if "score" in evaluation:
        sc.add_metric("score", evaluation["score"], better="info")

    anomalies = evaluation.get("anomalies", {})
    n_anomalies = sum(len(v) for v in anomalies.values())
    sc.add_metric("n_anomalies", n_anomalies, better="info")
    if expect_anomaly_records:
        sc.add_check("anomaly_detected", n_anomalies > 0,
                     "the detectors flag the scenario (%d anomaly "
                     "record(s))" % n_anomalies)
    if max_goodput_retained is not None:
        retained = evaluation.get("goodput_retained", 1.0)
        sc.add_check(
            "goodput_collapses",
            retained <= max_goodput_retained,
            "the scenario keeps <= %.0f%% of its uncongested goodput "
            "(got %.1f%%)" % (100 * max_goodput_retained, 100 * retained))

    shifts = evaluation.get("shift", [])
    top = evaluation.get("top_resource")
    top_delta = shifts[0]["delta"] if shifts else 0.0
    sc.add_check(
        "attribution_shift_present",
        bool(top) and top_delta >= 0.05,
        "critical-path attribution moves >= 5%% of blocked-time share "
        "between the legs (top: %s %+.3f)" % (top, top_delta))
    if expected_top_resource is not None:
        # Membership among the strong gainers, not strict rank-1: two
        # co-moving resources (queue + throttle) may swap closely-ranked
        # deltas without changing the pathology's identity.
        suspects = [row["resource"] for row in shifts[:3]
                    if row["delta"] >= 0.05]
        sc.add_check(
            "expected_suspect",
            expected_top_resource in suspects,
            "%s gains >= 5%% share (top gainers: %s)"
            % (expected_top_resource, ", ".join(suspects) or "none"))

    sc.meta["search"] = {
        "objective": objective,
        "fingerprint": evaluation.get("fingerprint", ""),
        "point": evaluation.get("point", {}),
        "shift": shifts,
        "top_resource": top,
    }
    if anomalies:
        sc.meta["anomalies"] = {"runs": anomalies}
    if evaluation.get("explanations"):
        sc.meta["explanations"] = evaluation["explanations"]
    if evaluation.get("attribution"):
        sc.meta["attribution"] = evaluation["attribution"]
    return sc


def scorecard_fidelity_ab(packet, fluid, rtol: float = 0.25) -> Scorecard:
    """A/B agreement scorecard: a figure run under the fluid transport
    model against the same figure under the packet model.

    Accepts :class:`Scorecard` instances or their ``to_dict()`` /
    ``BENCH_*.json`` dict forms (the CI smoke job loads both legs from
    disk).  The contract is *shape agreement*, not byte equality: every
    shape check present in both legs must resolve the same way, and
    every gated metric must agree within ``max(rtol, metric rtol)`` —
    the fluid model is an approximation, so it gets at least the
    baseline-comparison tolerance, never a tighter one.
    """
    if not isinstance(packet, Scorecard):
        packet = Scorecard.from_dict(packet)
    if not isinstance(fluid, Scorecard):
        fluid = Scorecard.from_dict(fluid)
    if packet.figure != fluid.figure:
        raise ValueError("A/B legs are different figures: %s vs %s"
                         % (packet.figure, fluid.figure))
    sc = Scorecard(packet.figure + "-fidelity-ab",
                   "fluid vs packet agreement: " + packet.figure)
    sc.meta["figure"] = packet.figure
    sc.meta["packet_fidelity"] = packet.meta.get("fidelity", "packet")
    sc.meta["fluid_fidelity"] = fluid.meta.get("fidelity", "fluid")

    p_checks = {c.name: c.passed for c in packet.checks}
    f_checks = {c.name: c.passed for c in fluid.checks}
    common = sorted(set(p_checks) & set(f_checks))
    disagreements = [name for name in common
                     if p_checks[name] != f_checks[name]]
    sc.add_check(
        "shape_checks_agree",
        not disagreements,
        ("all %d common shape checks resolve identically" % len(common))
        if not disagreements else
        "legs disagree on: " + ", ".join(disagreements))
    failed_packet = sorted(n for n, ok in p_checks.items() if not ok)
    sc.add_check(
        "packet_leg_passes", not failed_packet,
        "packet-model leg fails: " + ", ".join(failed_packet)
        if failed_packet else "the calibrated leg holds its own shape")

    diffs: Dict[str, dict] = {}
    over = []
    worst_name, worst_rel = "", 0.0
    for m in packet.metrics:
        if m.better == "info":
            continue
        fm = fluid.metric(m.name)
        if fm is None:
            continue
        denom = max(abs(m.value), m.atol, 1e-9)
        rel = abs(fm.value - m.value) / denom
        tol = max(rtol, m.rtol)
        diffs[m.name] = {"packet": m.value, "fluid": fm.value,
                         "rel_diff": round(rel, 6), "tol": tol}
        if rel > tol:
            over.append("%s (%.1f%% > %.0f%%)" % (m.name, 100 * rel,
                                                  100 * tol))
        if rel > worst_rel:
            worst_name, worst_rel = m.name, rel
    sc.add_check(
        "gated_metrics_within_tolerance", not over,
        ("all %d gated metrics agree (worst: %s at %.1f%%)"
         % (len(diffs), worst_name or "n/a", 100 * worst_rel))
        if not over else "out of tolerance: " + ", ".join(over))
    sc.add_metric("compared_metrics", len(diffs), better="info")
    sc.add_metric("max_rel_diff", worst_rel, better="info")
    sc.meta["metric_diffs"] = diffs
    return sc
