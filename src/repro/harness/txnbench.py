"""FLockTX vs FaSST transaction benchmarks (paper Figs. 14-15, §8.5).

Topology per the paper: 3 server nodes with 3-way primary-backup
replication (each server is primary for one partition and backup for the
other two) and 20 client nodes.  Each client thread runs a pool of
coroutines that submit transactions concurrently — hiding network
latency the way FaSST does.  For FaSST fidelity, each client thread
peers with one server thread (its UD QP); FLockTX lets the QP scheduler
multiplex threads over at most MAX_AQP connections.

Population sizes default to a scaled-down fraction of the paper's (1 M
subscribers / 100 k accounts per thread) so a full sweep runs in
minutes; shapes are population-insensitive because contention is ruled
by the *skew*, which is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..apps.kvstore import KvPartition, partition_of, replicas_of
from ..apps.txn import (
    Coordinator,
    FasstTxTransport,
    FlockTxTransport,
    TxnOutcome,
    TxnServer,
)
from ..baselines import FasstEndpoint, FasstServer
from ..config import ClusterConfig, FlockConfig
from ..flock import FlockNode
from ..net import build_cluster
from ..sim import Simulator, Streams
from ..workloads import SmallbankWorkload, TatpWorkload
from .metrics import Recorder, RunResult
from .microbench import (
    _attach_profile,
    _finish_audit,
    _install_observatory,
    _install_telemetry,
    _prepare_audit,
    _run_window,
    bench_scale,
)

__all__ = ["TxnBenchConfig", "run_flocktx", "run_fasst_txn",
           "build_txn_servers", "sweep_txn"]


@dataclass
class TxnBenchConfig:
    """Knobs of the transaction experiments."""

    workload: str = "tatp"  # "tatp" | "smallbank"
    n_clients: int = 20
    n_servers: int = 3
    threads_per_client: int = 4
    #: Concurrent transactions per thread (paper: 19 submit coroutines).
    coroutines_per_thread: int = 19
    #: Scaled-down population (paper: 1M subscribers / 100k accounts).
    subscribers_per_server: int = 60_000
    accounts_per_thread: int = 2_000
    warmup_ns: float = 800_000.0
    measure_ns: float = 800_000.0
    seed: int = 7
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    def durations(self) -> tuple:
        scale = bench_scale()
        return self.warmup_ns * scale, self.measure_ns * scale

    def n_keys(self) -> int:
        if self.workload == "tatp":
            return self.n_servers * self.subscribers_per_server
        n_accounts = max(4, self.accounts_per_thread * self.threads_per_client)
        return 2 * n_accounts

    def make_workload(self, rng):
        if self.workload == "tatp":
            return TatpWorkload(self.n_servers, rng,
                                subscribers_per_server=self.subscribers_per_server)
        if self.workload == "smallbank":
            n_accounts = max(4, self.accounts_per_thread * self.threads_per_client)
            return SmallbankWorkload(n_accounts, rng)
        raise ValueError("unknown workload %r" % self.workload)


def build_txn_servers(cfg: TxnBenchConfig, server_nodes) -> List[TxnServer]:
    """Partitioned, 3-way-replicated stores + TxnServer per node."""
    n = cfg.n_servers
    # copies[(partition, server)] -> KvPartition instance on that server.
    copies: Dict[tuple, KvPartition] = {}
    for p in range(n):
        for s in replicas_of(p, n):
            region = None
            if s == p:
                # Primary publishes version words for one-sided validation.
                region = server_nodes[s].memory.register(
                    (cfg.n_keys() + 1024) * 8)
            copies[(p, s)] = KvPartition(p, region=region)
    # Populate every copy identically.
    for key in range(cfg.n_keys()):
        p = partition_of(key, n)
        for s in replicas_of(p, n):
            copies[(p, s)].load([(key, 0)])
    servers = []
    for s in range(n):
        primary = copies[(s, s)]
        replicas = {p: copies[(p, s)] for p in range(n)
                    if (p, s) in copies}
        servers.append(TxnServer(s, primary, replicas))
    return servers


def _spawn_coordinators(sim, cfg: TxnBenchConfig, recorder: Recorder,
                        make_transport, streams: Streams,
                        coordinators: List[Coordinator]) -> None:
    """Client side shared by both systems."""
    coord_id = [0]

    def coroutine(coordinator, workload):
        for txn in workload:
            started = sim.now
            outcome = yield from coordinator.run(txn)
            if outcome == TxnOutcome.COMMITTED:
                recorder.record(started)

    for c_idx in range(cfg.n_clients):
        for t_idx in range(cfg.threads_per_client):
            transport = make_transport(c_idx, t_idx)
            coordinator = Coordinator(transport, cfg.n_servers,
                                      coordinator_id=coord_id[0])
            coord_id[0] += 1
            coordinators.append(coordinator)
            for k in range(cfg.coroutines_per_thread):
                rng = streams.stream("wl-%d-%d-%d" % (c_idx, t_idx, k))
                workload = cfg.make_workload(rng)
                sim.spawn(coroutine(coordinator, iter(workload)),
                          name="txn-coroutine")


def _result(recorder: Recorder, coordinators: List[Coordinator],
            sim: Simulator, **extras) -> RunResult:
    committed = sum(c.committed for c in coordinators)
    aborted = sum(c.aborted for c in coordinators)
    lost = sum(c.lost for c in coordinators)
    total = max(1, committed + aborted + lost)
    return recorder.result(
        committed=committed, aborted=aborted, lost=lost,
        abort_rate=round(aborted / total, 4),
        loss_rate=round(lost / total, 6),
        events=sim.events_processed,
        **extras,
    )


def run_flocktx(cfg: TxnBenchConfig,
                flock_cfg: Optional[FlockConfig] = None,
                telemetry=None, audit: Optional[bool] = None) -> RunResult:
    """FLockTX: the transaction protocol over FLock RPC + fl_read."""
    sim = Simulator()
    tel = _install_telemetry(sim, telemetry, "flocktx")
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure)
    cluster = replace(cfg.cluster, n_clients=cfg.n_clients,
                      n_servers=cfg.n_servers, seed=cfg.seed)
    server_hw, client_hw, fabric = build_cluster(sim, cluster)
    if flock_cfg is None:
        flock_cfg = FlockConfig(sched_interval_ns=150_000.0,
                                thread_sched_interval_ns=150_000.0)
    txn_servers = build_txn_servers(cfg, server_hw)
    flock_servers = []
    version_rkeys: Dict[int, int] = {}
    for s in range(cfg.n_servers):
        fnode = FlockNode(sim, server_hw[s], fabric, flock_cfg)
        # Paper §8.5.2: "each client and server use an equal number of
        # threads" — the server-side worker pool matches, for both
        # systems, rather than using every core.
        fnode.server.set_n_workers(cfg.threads_per_client)
        txn_servers[s].bind(fnode.fl_reg_handler)
        flock_servers.append(fnode)
        version_rkeys[s] = txn_servers[s].primary.region.rkey

    streams = Streams(cfg.seed)
    recorder = Recorder(sim)
    coordinators: List[Coordinator] = []
    client_fnodes = []
    for c_idx in range(cfg.n_clients):
        fnode = FlockNode(sim, client_hw[c_idx], fabric, flock_cfg,
                          seed=cfg.seed + c_idx)
        handles = {s: fnode.fl_connect(flock_servers[s],
                                       n_qps=cfg.threads_per_client)
                   for s in range(cfg.n_servers)}
        client_fnodes.append((fnode, handles))

    def make_transport(c_idx, t_idx):
        fnode, handles = client_fnodes[c_idx]
        return FlockTxTransport(fnode, handles, version_rkeys, t_idx)

    _spawn_coordinators(sim, cfg, recorder, make_transport, streams,
                        coordinators)
    _run_window(sim, recorder, warmup, measure, fabric, profile=prof)
    result = _result(recorder, coordinators, sim, system="flocktx",
                     server_cpu=round(server_hw[0].cpu.utilization(), 3))
    result.telemetry = tel
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


def run_fasst_txn(cfg: TxnBenchConfig, *, telemetry=None,
                  audit: Optional[bool] = None) -> RunResult:
    """The same protocol over FaSST-style UD RPCs (two-sided only)."""
    sim = Simulator()
    tel = _install_telemetry(sim, telemetry, "fasst")
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure)
    cluster = replace(cfg.cluster, n_clients=cfg.n_clients,
                      n_servers=cfg.n_servers, seed=cfg.seed)
    server_hw, client_hw, fabric = build_cluster(sim, cluster)
    txn_servers = build_txn_servers(cfg, server_hw)
    fasst_servers = []
    for s in range(cfg.n_servers):
        fsrv = FasstServer(sim, server_hw[s], fabric,
                           n_workers=max(cfg.threads_per_client, 1))
        txn_servers[s].bind(fsrv.register_handler)
        fsrv.start()
        fasst_servers.append(fsrv)

    streams = Streams(cfg.seed)
    recorder = Recorder(sim)
    coordinators: List[Coordinator] = []

    def make_transport(c_idx, t_idx):
        endpoint = FasstEndpoint(sim, client_hw[c_idx], fabric)
        servers = {
            s: (fasst_servers[s], fasst_servers[s].qps[t_idx
                                                       % len(fasst_servers[s].qps)])
            for s in range(cfg.n_servers)
        }
        return FasstTxTransport(endpoint, servers)

    _spawn_coordinators(sim, cfg, recorder, make_transport, streams,
                        coordinators)
    _run_window(sim, recorder, warmup, measure, fabric, profile=prof)
    result = _result(recorder, coordinators, sim, system="fasst",
                     server_cpu=round(server_hw[0].cpu.utilization(), 3),
                     recv_drops=sum(f.recv_drops for f in fasst_servers))
    result.telemetry = tel
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


def sweep_txn(threads_list, *, workload: str = "tatp", jobs: int = 1) -> dict:
    """Figs. 14/15: FLockTX vs FaSST across a thread ramp.

    Returns ``{(system, threads): RunResult}`` with the key shape the
    fig14/fig15 scorecards consume; ``jobs > 1`` fans the independent
    points across workers with identical results.
    """
    from .parallel import SweepPoint, run_sweep
    points = []
    for threads in threads_list:
        cfg = TxnBenchConfig(workload=workload, threads_per_client=threads)
        points.append(SweepPoint(
            "fig14/flocktx/%s/t=%d" % (workload, threads),
            run_flocktx, (cfg,)))
        points.append(SweepPoint(
            "fig14/fasst/%s/t=%d" % (workload, threads),
            run_fasst_txn, (cfg,)))
    merged = iter(run_sweep(points, jobs))
    results = {}
    for threads in threads_list:
        results[("flocktx", threads)] = next(merged)[1]
        results[("fasst", threads)] = next(merged)[1]
    return results
