"""Calibration constants for the simulated RDMA stack.

All times are **nanoseconds**, all sizes **bytes**, all rates **per ns**.
The defaults are calibrated so the motivation experiments (paper Fig. 2)
land in the same regime as the paper's ConnectX-5 measurements: RC read
throughput peaking around 40 Mops in the 176-704 QP window and collapsing
beyond it, and UD RPC saturating near 30 Mops on server CPU.

Every experiment builds its own config objects, so benchmarks can ablate a
single constant without touching global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NicConfig", "CpuConfig", "NetConfig", "FlockConfig", "ClusterConfig"]

GBPS = 1.0 / 8.0  # bytes per ns per Gbps

#: Paper Table 1 / §8.1: MTU used across all nodes.
DEFAULT_MTU = 4096

#: Paper §2.1: maximum RC/UC message size is 2 GB.
RC_MAX_MSG = 2 * 1024 * 1024 * 1024


@dataclass
class NicConfig:
    """RNIC model parameters (one per node).

    The connection-state cache (QP context + MTT/MPT) is the crux of the
    paper's motivation: once the working set of QPs exceeds
    ``qp_cache_entries``, every touched QP costs a PCIe fetch that stalls
    one of ``miss_slots`` pipeline slots for ``cache_miss_ns``.
    """

    #: Messages/ns the RNIC can process per direction (42 Mops = ConnectX-5
    #: small-message regime as observed in Fig. 2a's peak).
    message_rate: float = 42e-3
    #: Burst allowance for the rate limiter (messages).
    message_burst: float = 32.0
    #: QP contexts the NIC cache holds before thrashing (Fig. 2a knee).
    qp_cache_entries: int = 560
    #: PCIe round trip to fetch evicted QP state (paper §2.2: "several
    #: microseconds" worst case; 750 ns models a warm host cache line).
    cache_miss_ns: float = 750.0
    #: Concurrent in-flight cache-miss fetches the NIC pipeline sustains.
    miss_slots: int = 8
    #: Memory-translation entries cached (MTT/MPT); a miss costs the same
    #: PCIe fetch.  Large enough by default that only experiments that
    #: register many regions exercise it.
    mtt_cache_entries: int = 4096
    #: Fixed per-message NIC latency (DMA setup, pipeline traversal).
    base_latency_ns: float = 250.0
    #: Extra latency for generating a completion entry (DMA write of CQE).
    cqe_dma_ns: float = 30.0


@dataclass
class CpuConfig:
    """Per-node CPU cost model.

    These constants charge virtual time for the software operations the
    paper identifies as the UD bottleneck (§2.2: ``ibv_post_recv`` recycle
    and ``ibv_poll_cq``) and for FLock's cheaper memory polling.
    """

    cores: int = 32
    #: Cost of one MMIO doorbell (posting a work request batch).
    mmio_ns: float = 90.0
    #: Successful completion-queue poll (per CQE reaped).
    cq_poll_ns: float = 60.0
    #: Recycling one UD receive buffer (ibv_post_recv).
    ud_recv_recycle_ns: float = 150.0
    #: Per-message UD header/transport processing in software (eRPC-style
    #: reliability + congestion control bookkeeping).
    ud_sw_transport_ns: float = 350.0
    #: Detecting one coalesced message by polling a ring buffer (FLock).
    ring_poll_ns: float = 80.0
    #: Additional scan cost per extra ring buffer a server worker watches
    #: (the no-sharing config polls many more rings; §8.3.1).
    ring_scan_per_qp_ns: float = 6.0
    #: Decoding one request out of a coalesced message.
    decode_ns: float = 40.0
    #: Copying payload into a combining buffer, per byte.
    copy_ns_per_byte: float = 0.035
    #: Fixed per-request client-side send-path cost (marshalling).
    marshal_ns: float = 45.0
    #: Building a coalesced message header + canary.
    header_build_ns: float = 50.0


@dataclass
class NetConfig:
    """Fabric model: 100 Gbps links through a single switch."""

    bandwidth_bytes_per_ns: float = 100 * GBPS
    #: One-way propagation incl. switch traversal.
    propagation_ns: float = 600.0
    #: Wire overhead per packet (RoCEv2 headers + FCS).
    per_packet_header_bytes: int = 60
    mtu: int = DEFAULT_MTU
    #: Jitter bound for UD packet delivery (models possible reordering).
    ud_jitter_ns: float = 120.0


@dataclass
class FlockConfig:
    """FLock protocol parameters (paper §4-§6 defaults)."""

    #: Maximum QPs the receiver keeps active (paper: 256).
    max_aqp: int = 256
    #: Credits granted per batch (paper: C = 32).
    credit_batch: int = 32
    #: Renew when remaining credits drop to half the batch.
    credit_renew_threshold: int = 16
    #: Bound on requests a leader coalesces per cycle (leader progress).
    max_combine: int = 16
    #: Bound on the wire size of one coalesced message.
    max_combine_bytes: int = 4096
    #: QP scheduler redistribution interval.
    sched_interval_ns: float = 1_000_000.0
    #: Sender-side thread scheduler interval.
    thread_sched_interval_ns: float = 1_000_000.0
    #: Ring buffer capacity per QP, in coalesced messages.
    ring_slots: int = 128
    #: Ring buffer capacity per QP, in bytes (the Fig. 5 ring is a
    #: contiguous byte buffer, so large payloads consume more of it).
    ring_bytes: int = 16384
    #: QPs created per connection handle (the pool multiplexed by FLock).
    qps_per_handle: int = 64
    #: Selective signaling: one signaled WR out of N.
    signal_every: int = 16


@dataclass
class ClusterConfig:
    """A full experiment topology plus all hardware configs."""

    n_clients: int = 23
    n_servers: int = 1
    seed: int = 1
    nic: NicConfig = field(default_factory=NicConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    net: NetConfig = field(default_factory=NetConfig)
    flock: FlockConfig = field(default_factory=FlockConfig)
