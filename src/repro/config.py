"""Calibration constants for the simulated RDMA stack.

All times are **nanoseconds**, all sizes **bytes**, all rates **per ns**.
The defaults are calibrated so the motivation experiments (paper Fig. 2)
land in the same regime as the paper's ConnectX-5 measurements: RC read
throughput peaking around 40 Mops in the 176-704 QP window and collapsing
beyond it, and UD RPC saturating near 30 Mops on server CPU.

Every experiment builds its own config objects, so benchmarks can ablate a
single constant without touching global state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

__all__ = [
    "NicConfig",
    "CpuConfig",
    "CongestionConfig",
    "FidelityConfig",
    "NetConfig",
    "FlockConfig",
    "ClusterConfig",
    "FIDELITY_MODES",
    "resolved_fidelity_mode",
]

GBPS = 1.0 / 8.0  # bytes per ns per Gbps

#: Environment variables that opt harness runs into the switched-fabric
#: congestion model (the CLI's ``--congestion`` / ``--pfc`` flags set
#: them); resolved by :meth:`CongestionConfig.resolved`.
CONGESTION_ENV = "REPRO_CONGESTION"
PFC_ENV = "REPRO_PFC"

#: Environment variable selecting the fabric transport-model fidelity
#: (the CLI's ``--fidelity`` flag sets it); resolved by
#: :meth:`FidelityConfig.resolved`.
FIDELITY_ENV = "REPRO_FIDELITY"

#: Valid transport-model fidelity modes, in increasing abstraction:
#: ``packet`` steps every pipeline stage as events (the calibrated
#: default), ``fluid`` advances whole transfers analytically, ``hybrid``
#: runs fluid with automatic per-port demotion to packet at hotspots.
FIDELITY_MODES = ("packet", "fluid", "hybrid")


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in (
        "", "0", "false", "no", "off")


def resolved_fidelity_mode(default: str = "packet") -> str:
    """The fidelity mode a default-config run would resolve to.

    Used by scorecard/bench stamping so run artifacts record which
    transport model produced them even when the experiment never touched
    the config objects directly (the ``REPRO_FIDELITY`` path).
    """
    raw = os.environ.get(FIDELITY_ENV, "").strip().lower()
    return raw if raw in FIDELITY_MODES else default


def _require(cond: bool, msg: str) -> None:
    """Config-construction invariant; raises ValueError on violation.

    The scenario search mutates these knobs programmatically, so every
    constructor-reachable field that can brick a run (zero-sized cache,
    inverted PFC thresholds, negative costs) is validated here rather
    than failing deep inside the simulator.
    """
    if not cond:
        raise ValueError(msg)

#: Paper Table 1 / §8.1: MTU used across all nodes.
DEFAULT_MTU = 4096

#: Paper §2.1: maximum RC/UC message size is 2 GB.
RC_MAX_MSG = 2 * 1024 * 1024 * 1024


@dataclass
class NicConfig:
    """RNIC model parameters (one per node).

    The connection-state cache (QP context + MTT/MPT) is the crux of the
    paper's motivation: once the working set of QPs exceeds
    ``qp_cache_entries``, every touched QP costs a PCIe fetch that stalls
    one of ``miss_slots`` pipeline slots for ``cache_miss_ns``.
    """

    #: Messages/ns the RNIC can process per direction (42 Mops = ConnectX-5
    #: small-message regime as observed in Fig. 2a's peak).
    message_rate: float = 42e-3
    #: Burst allowance for the rate limiter (messages).
    message_burst: float = 32.0
    #: QP contexts the NIC cache holds before thrashing (Fig. 2a knee).
    qp_cache_entries: int = 560
    #: PCIe round trip to fetch evicted QP state (paper §2.2: "several
    #: microseconds" worst case; 750 ns models a warm host cache line).
    cache_miss_ns: float = 750.0
    #: Concurrent in-flight cache-miss fetches the NIC pipeline sustains.
    miss_slots: int = 8
    #: Memory-translation entries cached (MTT/MPT); a miss costs the same
    #: PCIe fetch.  Large enough by default that only experiments that
    #: register many regions exercise it.
    mtt_cache_entries: int = 4096
    #: Fixed per-message NIC latency (DMA setup, pipeline traversal).
    base_latency_ns: float = 250.0
    #: Extra latency for generating a completion entry (DMA write of CQE).
    cqe_dma_ns: float = 30.0

    def __post_init__(self):
        _require(self.message_rate > 0, "message_rate must be > 0")
        _require(self.message_burst > 0, "message_burst must be > 0")
        _require(self.qp_cache_entries >= 1, "qp_cache_entries must be >= 1")
        _require(self.mtt_cache_entries >= 1, "mtt_cache_entries must be >= 1")
        _require(self.miss_slots >= 1, "miss_slots must be >= 1")
        _require(self.cache_miss_ns >= 0, "cache_miss_ns must be >= 0")
        _require(self.base_latency_ns >= 0, "base_latency_ns must be >= 0")
        _require(self.cqe_dma_ns >= 0, "cqe_dma_ns must be >= 0")


@dataclass
class CpuConfig:
    """Per-node CPU cost model.

    These constants charge virtual time for the software operations the
    paper identifies as the UD bottleneck (§2.2: ``ibv_post_recv`` recycle
    and ``ibv_poll_cq``) and for FLock's cheaper memory polling.
    """

    cores: int = 32
    #: Cost of one MMIO doorbell (posting a work request batch).
    mmio_ns: float = 90.0
    #: Successful completion-queue poll (per CQE reaped).
    cq_poll_ns: float = 60.0
    #: Recycling one UD receive buffer (ibv_post_recv).
    ud_recv_recycle_ns: float = 150.0
    #: Per-message UD header/transport processing in software (eRPC-style
    #: reliability + congestion control bookkeeping).
    ud_sw_transport_ns: float = 350.0
    #: Detecting one coalesced message by polling a ring buffer (FLock).
    ring_poll_ns: float = 80.0
    #: Additional scan cost per extra ring buffer a server worker watches
    #: (the no-sharing config polls many more rings; §8.3.1).
    ring_scan_per_qp_ns: float = 6.0
    #: Decoding one request out of a coalesced message.
    decode_ns: float = 40.0
    #: Copying payload into a combining buffer, per byte.
    copy_ns_per_byte: float = 0.035
    #: Fixed per-request client-side send-path cost (marshalling).
    marshal_ns: float = 45.0
    #: Building a coalesced message header + canary.
    header_build_ns: float = 50.0

    def __post_init__(self):
        _require(self.cores >= 1, "cores must be >= 1")
        for name in ("mmio_ns", "cq_poll_ns", "ud_recv_recycle_ns",
                     "ud_sw_transport_ns", "ring_poll_ns",
                     "ring_scan_per_qp_ns", "decode_ns", "copy_ns_per_byte",
                     "marshal_ns", "header_build_ns"):
            _require(getattr(self, name) >= 0, "%s must be >= 0" % name)


@dataclass
class CongestionConfig:
    """Switched-fabric congestion model (RoCE on a shallow-buffer ToR).

    Off by default: the contention-free point-to-point fabric is what
    every committed figure baseline was calibrated against.  When
    enabled, every transfer crosses a per-destination egress port with a
    finite output buffer served at link rate; queue buildup triggers
    ECN marking (RED-style) and a DCQCN rate limiter per RC QP, or —
    with ``pfc`` — lossless PAUSE propagation with head-of-line blocking.
    Thresholds are bytes of egress-queue depth.
    """

    enabled: bool = False
    #: Per-egress-port output buffer (shallow ToR class, per port).
    buffer_bytes: int = 131_072
    #: RED/ECN marking ramp: mark probability rises linearly from 0 at
    #: ``ecn_kmin_bytes`` to ``ecn_pmax`` at ``ecn_kmax_bytes`` (and is 1
    #: beyond it) — the DCQCN paper's Kmin/Kmax/Pmax.  Pmax is small as
    #: in real deployments: per-packet CNPs at queue depths the fabric
    #: can absorb would collapse sender rates far below the port rate.
    ecn_kmin_bytes: int = 32_768
    ecn_kmax_bytes: int = 98_304
    ecn_pmax: float = 0.05
    #: Priority flow control: pause the upstream sender when a port
    #: crosses ``pfc_xoff_bytes``, resume below ``pfc_xon_bytes``.
    #: Lossless — the buffer stretches into headroom instead of dropping.
    pfc: bool = False
    pfc_xoff_bytes: int = 98_304
    pfc_xon_bytes: int = 32_768
    #: DCQCN sender reaction (per RC QP): rate cut on CNP, then fast
    #: recovery / additive increase / hyper increase.  Timers are scaled
    #: to the simulator's sub-millisecond measurement windows.
    dcqcn_enabled: bool = True
    #: EWMA gain for the congestion estimate alpha.
    dcqcn_g: float = 1.0 / 16.0
    #: Minimum gap between consecutive rate cuts.
    dcqcn_rate_decrease_interval_ns: float = 8_000.0
    #: Interval between rate-increase stages while no CNP arrives.
    dcqcn_recovery_interval_ns: float = 4_000.0
    #: Fast-recovery stages (Rc converges back toward Rt) before
    #: additive increase begins.
    dcqcn_fast_recovery_steps: int = 3
    #: Additive / hyper rate-increase steps (bytes per ns).
    dcqcn_rate_ai_bytes_per_ns: float = 5 * GBPS
    dcqcn_rate_hai_bytes_per_ns: float = 25 * GBPS
    #: Floor for the per-QP sending rate.
    dcqcn_min_rate_bytes_per_ns: float = 1 * GBPS
    #: When False, the ``REPRO_CONGESTION``/``REPRO_PFC`` environment
    #: overrides are ignored — experiment runners that sweep congestion
    #: on/off inside one process set this so CLI flags cannot leak into
    #: their baseline legs.
    honor_env: bool = True

    def __post_init__(self):
        _require(self.buffer_bytes >= 1, "buffer_bytes must be >= 1")
        # Kmin/Kmax may exceed the buffer (that just disables marking for
        # the lossy queue), but the ramp itself must be ordered.
        _require(0 < self.ecn_kmin_bytes <= self.ecn_kmax_bytes,
                 "need 0 < ecn_kmin_bytes <= ecn_kmax_bytes")
        _require(0.0 <= self.ecn_pmax <= 1.0, "ecn_pmax must be in [0, 1]")
        _require(0 < self.pfc_xon_bytes <= self.pfc_xoff_bytes,
                 "need 0 < pfc_xon_bytes <= pfc_xoff_bytes")
        _require(self.dcqcn_g > 0, "dcqcn_g must be > 0")
        _require(self.dcqcn_rate_decrease_interval_ns > 0,
                 "dcqcn_rate_decrease_interval_ns must be > 0")
        _require(self.dcqcn_recovery_interval_ns > 0,
                 "dcqcn_recovery_interval_ns must be > 0")
        _require(self.dcqcn_fast_recovery_steps >= 0,
                 "dcqcn_fast_recovery_steps must be >= 0")
        _require(self.dcqcn_rate_ai_bytes_per_ns > 0,
                 "dcqcn_rate_ai_bytes_per_ns must be > 0")
        _require(self.dcqcn_rate_hai_bytes_per_ns > 0,
                 "dcqcn_rate_hai_bytes_per_ns must be > 0")
        _require(self.dcqcn_min_rate_bytes_per_ns > 0,
                 "dcqcn_min_rate_bytes_per_ns must be > 0")

    def resolved(self) -> "CongestionConfig":
        """Apply the CLI environment overrides (unless ``honor_env`` is
        False): ``REPRO_CONGESTION=1`` enables the switch model,
        ``REPRO_PFC=1`` additionally selects lossless PAUSE mode."""
        if not self.honor_env:
            return self
        enabled = self.enabled or _env_truthy(CONGESTION_ENV)
        pfc = self.pfc or _env_truthy(PFC_ENV)
        if pfc:
            enabled = True
        if enabled == self.enabled and pfc == self.pfc:
            return self
        return replace(self, enabled=enabled, pfc=pfc)


@dataclass
class FidelityConfig:
    """Transport-model fidelity for the fabric message path.

    ``packet`` (the default) steps every transfer through the full
    event pipeline — tx_process, loss gauntlet, switch traversal,
    propagation, rx_process — exactly as every committed baseline was
    calibrated.  ``fluid`` completes an uncontended transfer in O(1)
    events using analytic NIC/wire/propagation time with identical
    byte/packet/message ledgers.  ``hybrid`` runs fluid by default and
    demotes individual egress ports to the packet model while they are
    *hot* (queue depth, fresh ECN marks / PFC pauses / tail drops, or a
    saturated state-fetch pipeline at the destination NIC), promoting
    them back after a hysteresis quiet period.
    """

    mode: str = "packet"
    #: Hybrid demotion: a port is hot when its egress backlog reaches
    #: this fraction of the ECN Kmin threshold (marking — the first
    #: nonlinearity — starts at Kmin, so 1.0 demotes exactly when the
    #: fluid model would otherwise have to approximate marking).
    demote_depth_frac: float = 1.0
    #: Hybrid demotion: the destination NIC's state-fetch pipeline is
    #: thrashing when PCIe outstanding reads (or the equivalent analytic
    #: backlog) reach this fraction of the NIC's miss slots.  The
    #: default is 2× the slot count so a one-off burst of compulsory
    #: cold-cache misses does not read as thrash — sustained thrashing
    #: keeps the fetch pipeline persistently oversubscribed and clears
    #: the bar regardless.
    thrash_outstanding_frac: float = 2.0
    #: Hysteresis: a demoted port must stay quiet (no hot signal) this
    #: long before it is promoted back to the fluid model.
    promote_quiet_ns: float = 100_000.0
    #: When False, the ``REPRO_FIDELITY`` environment override is
    #: ignored — A/B runners that sweep fidelity inside one process set
    #: this so CLI flags cannot leak into their legs.
    honor_env: bool = True

    def __post_init__(self):
        _require(self.mode in FIDELITY_MODES,
                 "mode must be one of %s" % (FIDELITY_MODES,))
        _require(self.demote_depth_frac > 0,
                 "demote_depth_frac must be > 0")
        _require(self.thrash_outstanding_frac > 0,
                 "thrash_outstanding_frac must be > 0")
        _require(self.promote_quiet_ns >= 0,
                 "promote_quiet_ns must be >= 0")

    def resolved(self) -> "FidelityConfig":
        """Apply the ``REPRO_FIDELITY`` environment override (unless
        ``honor_env`` is False).  Unknown values raise rather than
        silently running the wrong model."""
        if not self.honor_env:
            return self
        raw = os.environ.get(FIDELITY_ENV, "").strip().lower()
        if not raw or raw == self.mode:
            return self
        _require(raw in FIDELITY_MODES,
                 "%s=%r is not one of %s" % (FIDELITY_ENV, raw,
                                             FIDELITY_MODES))
        return replace(self, mode=raw)


@dataclass
class NetConfig:
    """Fabric model: 100 Gbps links through a single switch."""

    bandwidth_bytes_per_ns: float = 100 * GBPS
    #: One-way propagation incl. switch traversal.
    propagation_ns: float = 600.0
    #: Wire overhead per packet (RoCEv2 headers + FCS).
    per_packet_header_bytes: int = 60
    mtu: int = DEFAULT_MTU
    #: Jitter bound for UD packet delivery (models possible reordering).
    ud_jitter_ns: float = 120.0
    #: Switched-fabric congestion model (default off: point-to-point).
    congestion: CongestionConfig = field(default_factory=CongestionConfig)
    #: Transport-model fidelity (default: the calibrated packet model).
    fidelity: FidelityConfig = field(default_factory=FidelityConfig)

    def __post_init__(self):
        _require(self.bandwidth_bytes_per_ns > 0,
                 "bandwidth_bytes_per_ns must be > 0")
        _require(self.propagation_ns >= 0, "propagation_ns must be >= 0")
        _require(self.per_packet_header_bytes >= 0,
                 "per_packet_header_bytes must be >= 0")
        _require(self.mtu >= 1, "mtu must be >= 1")
        _require(self.ud_jitter_ns >= 0, "ud_jitter_ns must be >= 0")


@dataclass
class FlockConfig:
    """FLock protocol parameters (paper §4-§6 defaults)."""

    #: Maximum QPs the receiver keeps active (paper: 256).
    max_aqp: int = 256
    #: Credits granted per batch (paper: C = 32).
    credit_batch: int = 32
    #: Renew when remaining credits drop to half the batch.
    credit_renew_threshold: int = 16
    #: Bound on requests a leader coalesces per cycle (leader progress).
    max_combine: int = 16
    #: Bound on the wire size of one coalesced message.
    max_combine_bytes: int = 4096
    #: QP scheduler redistribution interval.
    sched_interval_ns: float = 1_000_000.0
    #: Sender-side thread scheduler interval.
    thread_sched_interval_ns: float = 1_000_000.0
    #: Ring buffer capacity per QP, in coalesced messages.
    ring_slots: int = 128
    #: Ring buffer capacity per QP, in bytes (the Fig. 5 ring is a
    #: contiguous byte buffer, so large payloads consume more of it).
    ring_bytes: int = 16384
    #: QPs created per connection handle (the pool multiplexed by FLock).
    qps_per_handle: int = 64
    #: Selective signaling: one signaled WR out of N.
    signal_every: int = 16

    def __post_init__(self):
        _require(self.max_aqp >= 1, "max_aqp must be >= 1")
        _require(self.credit_batch >= 1, "credit_batch must be >= 1")
        _require(0 <= self.credit_renew_threshold <= self.credit_batch,
                 "need 0 <= credit_renew_threshold <= credit_batch")
        _require(self.max_combine >= 1, "max_combine must be >= 1")
        _require(self.max_combine_bytes >= 1, "max_combine_bytes must be >= 1")
        _require(self.sched_interval_ns > 0, "sched_interval_ns must be > 0")
        _require(self.thread_sched_interval_ns > 0,
                 "thread_sched_interval_ns must be > 0")
        _require(self.ring_slots >= 1, "ring_slots must be >= 1")
        _require(self.ring_bytes >= 1, "ring_bytes must be >= 1")
        _require(self.qps_per_handle >= 1, "qps_per_handle must be >= 1")
        _require(self.signal_every >= 1, "signal_every must be >= 1")


@dataclass
class ClusterConfig:
    """A full experiment topology plus all hardware configs."""

    n_clients: int = 23
    n_servers: int = 1
    seed: int = 1
    nic: NicConfig = field(default_factory=NicConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    net: NetConfig = field(default_factory=NetConfig)
    flock: FlockConfig = field(default_factory=FlockConfig)

    def __post_init__(self):
        _require(self.n_clients >= 1, "n_clients must be >= 1")
        _require(self.n_servers >= 1, "n_servers must be >= 1")
