"""Smallbank: write-intensive banking OLTP benchmark (paper §8.5.2).

The paper's setup: 100,000 accounts per server thread, "85% of
transactions updating keys", and a skew where "4% of the total accounts
are accessed by 90% of transactions".  We implement the six classic
Smallbank transaction types with a mix that yields exactly 85% writers:

=================  =====  ======================================
transaction         mix    footprint
=================  =====  ======================================
balance             15 %   read 2 (checking + savings)
deposit-checking    15 %   write 1
transact-savings    15 %   write 1
amalgamate          15 %   read 1 + write 2
write-check         25 %   read 1 + write 1
send-payment        15 %   write 2
=================  =====  ======================================
"""

from __future__ import annotations

import random
from typing import Iterator

from ..apps.txn import Transaction
from ..sim import HotColdGenerator

__all__ = ["SmallbankWorkload", "ACCOUNTS_PER_THREAD"]

ACCOUNTS_PER_THREAD = 100_000


class SmallbankWorkload:
    """Transaction generator with the paper's Smallbank configuration."""

    def __init__(self, n_accounts: int, rng: random.Random,
                 hot_fraction: float = 0.04, hot_access: float = 0.90):
        if n_accounts < 4:
            raise ValueError("need at least 4 accounts")
        self.n_accounts = n_accounts
        self.rng = rng
        self.keygen = HotColdGenerator(n_accounts, hot_fraction, hot_access,
                                       rng=rng)
        self._next_value = 0

    # Account rows: checking = 2*acct, savings = 2*acct + 1.
    def _checking(self, acct: int) -> int:
        return 2 * acct

    def _savings(self, acct: int) -> int:
        return 2 * acct + 1

    def _acct(self) -> int:
        return self.keygen.next()

    def _acct_pair(self):
        a = self._acct()
        b = self._acct()
        while b == a:
            b = self._acct()
        return a, b

    def _value(self) -> int:
        self._next_value += 1
        return self._next_value

    def next_txn(self) -> Transaction:
        r = self.rng.random()
        if r < 0.15:  # balance
            acct = self._acct()
            return Transaction(reads=[self._checking(acct),
                                      self._savings(acct)])
        if r < 0.30:  # deposit-checking
            return Transaction(writes=[(self._checking(self._acct()),
                                        self._value())])
        if r < 0.45:  # transact-savings
            return Transaction(writes=[(self._savings(self._acct()),
                                        self._value())])
        if r < 0.60:  # amalgamate: drain savings+checking of A into B
            a, b = self._acct_pair()
            return Transaction(reads=[self._savings(a)],
                               writes=[(self._checking(a), self._value()),
                                       (self._checking(b), self._value())])
        if r < 0.85:  # write-check
            acct = self._acct()
            return Transaction(reads=[self._savings(acct)],
                               writes=[(self._checking(acct), self._value())])
        # send-payment
        a, b = self._acct_pair()
        return Transaction(writes=[(self._checking(a), self._value()),
                                   (self._checking(b), self._value())])

    def __iter__(self) -> Iterator[Transaction]:
        while True:
            yield self.next_txn()
