"""YCSB core workloads (extension beyond the paper's evaluation).

The standard cloud-serving benchmark mixes, with the usual zipfian
(θ=0.99) request distribution:

======  =========================  ==============
 mix     operations                 archetype
======  =========================  ==============
  A      50 % read / 50 % update    session store
  B      95 % read /  5 % update    photo tagging
  C      100 % read                 profile cache
  D      95 % read /  5 % insert    status feed (latest-biased reads)
======  =========================  ==============

Used by ``benchmarks/test_ext_ycsb.py`` to compare FLock and eRPC on a
plain remote key-value service — the workload most readers will reach
for first even though the paper does not include it.
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

from ..sim import ZipfGenerator

__all__ = ["YcsbWorkload", "READ", "UPDATE", "INSERT"]

READ = "read"
UPDATE = "update"
INSERT = "insert"

_MIXES = {
    "A": ((READ, 0.5), (UPDATE, 0.5)),
    "B": ((READ, 0.95), (UPDATE, 0.05)),
    "C": ((READ, 1.0),),
    "D": ((READ, 0.95), (INSERT, 0.05)),
}


class YcsbWorkload:
    """Generator of (operation, key) pairs for one YCSB core mix."""

    def __init__(self, mix: str, n_keys: int, rng: random.Random,
                 theta: float = 0.99):
        mix = mix.upper()
        if mix not in _MIXES:
            raise ValueError("unknown YCSB mix %r (have A-D)" % mix)
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.mix = mix
        self.rng = rng
        self.n_keys = n_keys
        self._inserted = 0
        self.keygen = ZipfGenerator(n_keys, theta=theta, rng=rng)
        self._ops, self._weights = zip(*_MIXES[mix])

    def next_op(self) -> Tuple[str, int]:
        r = self.rng.random()
        acc = 0.0
        op = self._ops[-1]
        for candidate, weight in zip(self._ops, self._weights):
            acc += weight
            if r < acc:
                op = candidate
                break
        if op == INSERT:
            # Workload D: inserts append fresh keys; reads skew toward
            # the most recent (latest distribution approximated by
            # mirroring the zipf head onto the newest keys).
            key = self.n_keys + self._inserted
            self._inserted += 1
            return op, key
        key = self.keygen.next()
        if self.mix == "D":
            total = self.n_keys + self._inserted
            key = total - 1 - (key % total)
        return op, key

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        while True:
            yield self.next_op()
