"""Workload generators: TATP, Smallbank, synthetic RPC mixes."""

from .smallbank import ACCOUNTS_PER_THREAD, SmallbankWorkload
from .synthetic import BimodalSize, FixedSize
from .tatp import SUBSCRIBERS_PER_SERVER, TatpWorkload
from .ycsb import INSERT, READ, UPDATE, YcsbWorkload

__all__ = [
    "ACCOUNTS_PER_THREAD",
    "BimodalSize",
    "FixedSize",
    "INSERT",
    "READ",
    "SUBSCRIBERS_PER_SERVER",
    "SmallbankWorkload",
    "TatpWorkload",
    "UPDATE",
    "YcsbWorkload",
]
