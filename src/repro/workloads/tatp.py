"""TATP: read-intensive telecom OLTP benchmark (paper §8.5.2).

The paper's characterization: "70% single key reads, 10% multi-key
reads, with the rest of transactions updating keys" over one million
subscribers per server.  We generate exactly that mix:

* 70 % ``GET_SUBSCRIBER_DATA`` — read one subscriber row;
* 10 % ``GET_ACCESS_DATA``-style multi-key read — read 3 related rows;
*  4 % ``DELETE/INSERT_CALL_FORWARDING`` pair modeled as read+write;
* 16 % ``UPDATE_SUBSCRIBER/UPDATE_LOCATION`` — update one row.

Keys are uniform over the subscriber space (TATP's non-uniform sub-id
generation is a constant factor the paper does not rely on).
"""

from __future__ import annotations

import random
from typing import Iterator

from ..apps.txn import Transaction

__all__ = ["TatpWorkload", "SUBSCRIBERS_PER_SERVER"]

SUBSCRIBERS_PER_SERVER = 1_000_000


class TatpWorkload:
    """Transaction generator with the paper's TATP mix."""

    #: Mix fractions (single-read, multi-read, read+write, write).
    P_SINGLE_READ = 0.70
    P_MULTI_READ = 0.10
    P_READ_WRITE = 0.04

    def __init__(self, n_servers: int, rng: random.Random,
                 subscribers_per_server: int = SUBSCRIBERS_PER_SERVER):
        if n_servers < 1:
            raise ValueError("need at least one server")
        self.n_keys = n_servers * subscribers_per_server
        self.rng = rng
        self._next_value = 0

    def _key(self) -> int:
        return self.rng.randrange(self.n_keys)

    def _value(self) -> int:
        self._next_value += 1
        return self._next_value

    def next_txn(self) -> Transaction:
        r = self.rng.random()
        if r < self.P_SINGLE_READ:
            return Transaction(reads=[self._key()])
        if r < self.P_SINGLE_READ + self.P_MULTI_READ:
            keys = {self._key() for _ in range(3)}
            return Transaction(reads=sorted(keys))
        if r < self.P_SINGLE_READ + self.P_MULTI_READ + self.P_READ_WRITE:
            read_key = self._key()
            write_key = self._key()
            while write_key == read_key:
                write_key = self._key()
            return Transaction(reads=[read_key],
                               writes=[(write_key, self._value())])
        return Transaction(writes=[(self._key(), self._value())])

    def __iter__(self) -> Iterator[Transaction]:
        while True:
            yield self.next_txn()
