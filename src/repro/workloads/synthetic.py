"""Synthetic RPC size mixes for the microbenchmarks (§8.2, §8.3).

* :class:`FixedSize` — every request the same size (the 64 B workload of
  Figs. 6-10 and 12).
* :class:`BimodalSize` — 90 % small / 10 % large, the head-of-line
  blocking workload of Fig. 11.
"""

from __future__ import annotations


__all__ = ["FixedSize", "BimodalSize"]


class FixedSize:
    """Constant request size."""

    def __init__(self, size: int = 64):
        if size < 0:
            raise ValueError("negative size")
        self.size = size

    def next(self, _thread_id: int = 0) -> int:
        return self.size


class BimodalSize:
    """A fraction of *threads* send large payloads, the rest small ones.

    The paper's Fig. 11 workload: "10% of threads submit large RPC
    requests, while 90% of threads issue small RPC (64 bytes)" — the
    assignment is per-thread, which is what makes Algorithm 1's
    size-based grouping effective.
    """

    def __init__(self, n_threads: int, large_size: int,
                 small_size: int = 64, large_fraction: float = 0.10):
        if not 0 <= large_fraction <= 1:
            raise ValueError("large_fraction must be in [0, 1]")
        self.small_size = small_size
        self.large_size = large_size
        n_large = max(1, round(n_threads * large_fraction)) if n_threads else 0
        #: Deterministic: the first ceil(10%) thread ids are the large ones.
        self.large_threads = set(range(n_large))

    def next(self, thread_id: int) -> int:
        if thread_id in self.large_threads:
            return self.large_size
        return self.small_size
