"""Adversarial scenario search: a Collie-style anomaly hunter.

Collie (PAPERS.md) found RDMA performance anomalies by *searching* the
workload/config space on real hardware.  This package does the same over
the simulator: a typed search space (:mod:`.space`), anomaly-seeking
objectives computed from run results (:mod:`.objectives`), a seeded and
budgeted mutation search that fans evaluations across the parallel sweep
executor (:mod:`.mutate`, :mod:`.driver`), and a reporter that joins
every retained candidate to its critical-path attribution shift and
anomaly records (:mod:`.report`).  Found cliffs are frozen as curated
scenarios (:mod:`.scenarios`) and gated in CI like any paper figure.

Determinism contract: for a fixed (seed, budget, objective, space) the
search emits a byte-identical leaderboard regardless of ``--jobs``; each
candidate's randomness derives from ``Streams(seed).child(point_id)``
where the point id is the candidate's config fingerprint.
"""

from .space import (
    BoolDim,
    ChoiceDim,
    FloatDim,
    IntDim,
    SearchSpace,
    default_space,
)
from .runner import ScenarioConfig, evaluate_point, run_scenario_leg
from .objectives import Objective, get_objective, list_objectives
from .mutate import mutate_point
from .driver import SearchConfig, SearchResult, run_search
from .report import explain_entry, format_entry, leaderboard_rows
from .scenarios import CURATED_SCENARIOS, curated_evaluation

__all__ = [
    "BoolDim",
    "ChoiceDim",
    "FloatDim",
    "IntDim",
    "SearchSpace",
    "default_space",
    "ScenarioConfig",
    "evaluate_point",
    "run_scenario_leg",
    "Objective",
    "get_objective",
    "list_objectives",
    "mutate_point",
    "SearchConfig",
    "SearchResult",
    "run_search",
    "explain_entry",
    "format_entry",
    "leaderboard_rows",
    "CURATED_SCENARIOS",
    "curated_evaluation",
]
