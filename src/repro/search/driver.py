"""The budgeted search loop: random warmup -> hill-climb with annealing.

The driver is deliberately simple — Collie's insight is that *any*
guided search beats hand-picked benchmarks once the objective measures
anomaly — but it is rigorously deterministic:

* every candidate's evaluation seed derives from the root seed and the
  candidate's config fingerprint (``Streams.child``), never from
  evaluation order or worker assignment;
* mutation and acceptance randomness come from named streams keyed by
  (generation, slot), so the proposal sequence is a pure function of
  (seed, budget, objective, space);
* the leaderboard is sorted by (score desc, fingerprint) — a total
  order with no float ties left to timing.

Candidate evaluations fan across the multiprocessing sweep executor in
generations; the budget counts *unique* evaluations (duplicates by
fingerprint are served from the in-run cache).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..harness.parallel import SweepPoint, run_sweep
from ..sim import Streams
from .mutate import mutate_point
from .objectives import Objective, get_objective
from .runner import evaluate_point
from .space import SearchSpace, default_space

__all__ = ["SearchConfig", "SearchResult", "run_search"]


@dataclass
class SearchConfig:
    """Knobs of one search run."""

    objective: str = "tail_ratio"
    budget: int = 24
    seed: int = 7
    jobs: int = 1
    #: Random candidates before hill-climbing starts (0 = auto: a third
    #: of the budget, at least the elite count).
    warmup: int = 0
    #: Frontier slots the climb mutates each generation.
    elites: int = 4
    #: Simulated-annealing acceptance of worse children (relative
    #: temperature ``t0 * decay**generation``); 0 disables.
    t0: float = 0.05
    decay: float = 0.7
    space: Optional[SearchSpace] = None

    def resolved_space(self) -> SearchSpace:
        return self.space if self.space is not None else default_space()

    def resolved_warmup(self) -> int:
        if self.warmup >= 1:
            return min(self.warmup, self.budget)
        return min(self.budget, max(self.elites, self.budget // 3))

    def search_id(self) -> str:
        slug = self.objective.replace(":", "-").replace("/", "-")
        return "search-%s-s%d-b%d" % (slug, self.seed, self.budget)


@dataclass
class SearchResult:
    """Everything one search run produced, JSON-safe."""

    search_id: str
    objective: str
    seed: int
    budget: int
    n_evals: int
    n_dedup: int
    #: Evaluations sorted by (score desc, fingerprint) — rank 1 first.
    leaderboard: List[dict] = field(default_factory=list)
    #: Per-generation progress rows.
    history: List[dict] = field(default_factory=list)
    space: Dict = field(default_factory=dict)

    @property
    def best(self) -> Optional[dict]:
        return self.leaderboard[0] if self.leaderboard else None

    def to_dict(self) -> dict:
        return {
            "search_id": self.search_id,
            "objective": self.objective,
            "seed": self.seed,
            "budget": self.budget,
            "n_evals": self.n_evals,
            "n_dedup": self.n_dedup,
            "leaderboard": self.leaderboard,
            "history": self.history,
            "space": self.space,
        }


def run_search(cfg: SearchConfig, progress=None) -> SearchResult:
    """Run one budgeted search; see the module docstring for the
    determinism contract.  ``progress`` (optional callable taking a
    string) receives one line per generation."""
    space = cfg.resolved_space()
    objective: Objective = get_objective(cfg.objective)
    if cfg.budget < 1:
        raise ValueError("budget must be >= 1")

    evaluated: Dict[str, dict] = {}
    dedup_hits = [0]

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    def evaluate_batch(points: List[dict]) -> None:
        """Evaluate the fingerprint-fresh subset of ``points`` across
        the executor and score them into ``evaluated``."""
        fresh: Dict[str, dict] = {}
        for point in points:
            fp = space.fingerprint(point)
            if fp in evaluated or fp in fresh:
                dedup_hits[0] += 1
                continue
            if len(evaluated) + len(fresh) >= cfg.budget:
                break
            fresh[fp] = space.clamp(point)
        if not fresh:
            return
        sweep = [SweepPoint("search/%s" % fp, evaluate_point, (point,),
                            {"seed": cfg.seed,
                             "trace": objective.needs_trace})
                 for fp, point in fresh.items()]
        for _key, evaluation in run_sweep(sweep, cfg.jobs):
            evaluation["score"] = round(objective.score(evaluation), 6)
            evaluated[evaluation["fingerprint"]] = evaluation

    def ranked() -> List[dict]:
        return sorted(evaluated.values(),
                      key=lambda ev: (-ev["score"], ev["fingerprint"]))

    # Random warmup: sample until enough unique fingerprints (bounded
    # attempts — a tiny space may not have that many distinct points).
    warm_rng = Streams(cfg.seed).stream("search/warmup")
    n_warm = cfg.resolved_warmup()
    warm_points: List[dict] = []
    seen = set()
    for _attempt in range(n_warm * 25):
        if len(warm_points) >= n_warm:
            break
        point = space.sample(warm_rng)
        fp = space.fingerprint(point)
        if fp in seen:
            continue
        seen.add(fp)
        warm_points.append(point)
    evaluate_batch(warm_points)
    note("warmup: %d/%d evaluated" % (len(evaluated), cfg.budget))

    history: List[dict] = []
    frontier = [ev["fingerprint"] for ev in ranked()[:cfg.elites]]
    generation = 0
    stalled = 0
    max_generations = 50 + 10 * cfg.budget
    while len(evaluated) < cfg.budget and generation < max_generations:
        generation += 1
        before = len(evaluated)
        children: List[dict] = []
        parents: List[str] = []
        for slot, parent_fp in enumerate(frontier):
            if before + len(children) >= cfg.budget:
                break
            rng = Streams(cfg.seed).stream(
                "search/mutate/g%d/i%d" % (generation, slot))
            children.append(mutate_point(space,
                                         evaluated[parent_fp]["point"], rng))
            parents.append(parent_fp)
        did_refill = stalled >= 2
        if did_refill:
            # The climb keeps proposing already-seen points: re-seed
            # exploration with fresh random candidates.
            refill_rng = Streams(cfg.seed).stream(
                "search/refill/g%d" % generation)
            room = cfg.budget - before - len(children)
            children.extend(space.sample(refill_rng)
                            for _ in range(max(0, min(room, cfg.elites))))
        evaluate_batch(children)

        # Acceptance per frontier slot: climb uphill, annealed downhill.
        accept_rng = Streams(cfg.seed).stream("search/accept/g%d" % generation)
        temperature = cfg.t0 * (cfg.decay ** (generation - 1))
        for slot, parent_fp in enumerate(parents):
            child_fp = space.fingerprint(children[slot])
            child = evaluated.get(child_fp)
            if child is None:
                continue
            parent_score = evaluated[parent_fp]["score"]
            delta = child["score"] - parent_score
            accept = delta >= 0
            if not accept and temperature > 0:
                rel = delta / (temperature * max(abs(parent_score), 1e-9))
                accept = accept_rng.random() < math.exp(rel)
            if accept:
                frontier[slot] = child_fp
        stalled = stalled + 1 if len(evaluated) == before else 0
        if did_refill and len(evaluated) > before:
            # A refill broke the stall; restart the climb from the
            # global elites so the fresh blood can be exploited.
            frontier = [ev["fingerprint"] for ev in ranked()[:cfg.elites]]
        board = ranked()
        history.append({
            "generation": generation,
            "evals": len(evaluated),
            "best_score": board[0]["score"] if board else 0.0,
            "best_fingerprint": board[0]["fingerprint"] if board else "",
        })
        note("gen %d: %d/%d evaluated, best %.4g"
             % (generation, len(evaluated), cfg.budget,
                board[0]["score"] if board else 0.0))

    return SearchResult(
        search_id=cfg.search_id(),
        objective=objective.spec,
        seed=cfg.seed,
        budget=cfg.budget,
        n_evals=len(evaluated),
        n_dedup=dedup_hits[0],
        leaderboard=ranked(),
        history=history,
        space=space.to_dict(),
    )
