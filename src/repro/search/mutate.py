"""Per-dimension mutation kernels for the hill-climb/annealing loop.

Kernels are local moves sized to each dimension's scale: log dimensions
step by a random factor in [1/2, 2] (one octave), linear numerics step
within an eighth of the range, booleans flip, choices resample.  A
mutation always changes the clamped point when the dimension has more
than one representable value — the driver relies on that to make
progress instead of re-fingerprinting the parent.
"""

from __future__ import annotations

import random

from .space import BoolDim, ChoiceDim, FloatDim, IntDim, SearchSpace

__all__ = ["mutate_point", "mutate_value"]


def mutate_value(dim, value, rng: random.Random):
    """One local move of ``value`` within ``dim`` (clamped)."""
    if isinstance(dim, BoolDim):
        return not bool(value)
    if isinstance(dim, ChoiceDim):
        if len(dim.choices) <= 1:
            return dim.clamp(value)
        alternatives = [c for c in dim.choices if c != value]
        return alternatives[rng.randrange(len(alternatives))]
    if isinstance(dim, IntDim):
        if dim.log:
            proposal = dim.clamp(value * 2.0 ** rng.uniform(-1.0, 1.0))
        else:
            step = max(1, (dim.hi - dim.lo) // 8)
            proposal = dim.clamp(value + rng.randint(-step, step))
        if proposal == dim.clamp(value) and dim.lo < dim.hi:
            # Forced nudge: a no-op mutation would just re-evaluate the
            # parent's fingerprint and burn a generation.
            proposal = dim.clamp(value + (1 if proposal < dim.hi else -1))
        return proposal
    if isinstance(dim, FloatDim):
        if dim.log:
            proposal = dim.clamp(value * 2.0 ** rng.uniform(-1.0, 1.0))
        else:
            span = dim.hi - dim.lo
            proposal = dim.clamp(value + rng.uniform(-span / 8.0,
                                                     span / 8.0))
        if proposal == dim.clamp(value) and dim.lo < dim.hi:
            span = dim.hi - dim.lo
            nudge = span / 16.0 if dim.clamp(value) < dim.hi else -span / 16.0
            proposal = dim.clamp(value + nudge)
        return proposal
    raise TypeError("no mutation kernel for %r" % (type(dim).__name__,))


def mutate_point(space: SearchSpace, point: dict,
                 rng: random.Random, n_dims: int = 0) -> dict:
    """Mutate 1-2 dimensions of ``point`` (or exactly ``n_dims`` when
    given); returns a new clamped point."""
    names = list(space.dims)
    k = n_dims if n_dims >= 1 else (1 if rng.random() < 0.7 else 2)
    k = min(k, len(names))
    chosen = rng.sample(names, k)
    mutated = dict(point)
    for name in chosen:
        mutated[name] = mutate_value(space.dims[name], point[name], rng)
    return space.clamp(mutated)
