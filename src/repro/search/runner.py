"""Candidate evaluation: one search point -> one explained measurement.

A candidate runs the same two-leg protocol as the incast benchmark: the
FLock echo workload once on the contention-free fabric (its own
uncongested baseline) and once with the switched-fabric model and the
candidate's fabric knobs.  The pair yields the anomaly measures every
objective consumes — tail inflation, goodput retention, anomaly records
from both legs, and (when traced) the critical-path attribution shift
between the legs.

:func:`evaluate_point` is a module-level function of plain JSON-safe
arguments returning a plain JSON-safe dict, so the driver can fan it
across the multiprocessing sweep executor; all candidate randomness
derives from ``Streams(seed).child("search/<fingerprint>")``, making the
result a pure function of (root seed, point) — independent of worker
assignment and evaluation order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from ..config import (
    GBPS,
    ClusterConfig,
    CongestionConfig,
    FlockConfig,
    NetConfig,
    NicConfig,
)
from ..flock import FlockNode
from ..net import build_cluster
from ..obs import Telemetry
from ..obs.explain import attribution_blocks, shift_table, top_shift
from ..sim import Simulator, Streams
from ..workloads import BimodalSize, FixedSize
from ..harness.metrics import Recorder, RunResult
from ..harness.microbench import (
    ECHO_RPC,
    _attach_profile,
    _echo_handler,
    _finish_audit,
    _install_observatory,
    _install_telemetry,
    _prepare_audit,
    _run_window,
    bench_scale,
)
from .space import default_space

__all__ = ["ScenarioConfig", "run_scenario_leg", "evaluate_point",
           "BASE_LABEL", "CONG_LABEL"]

BASE_LABEL = "search base"
CONG_LABEL = "search cong"


@dataclass
class ScenarioConfig:
    """A fully-resolved search candidate (one point bound to a seed)."""

    n_senders: int = 12
    threads_per_client: int = 6
    outstanding: int = 2
    req_size: int = 512
    large_size: int = 4096
    large_fraction: float = 0.0
    zipf_theta: float = 0.0
    handler_ns: float = 100.0
    qp_cache_entries: int = 560
    credit_batch: int = 32
    qps_per_handle: int = 2
    buffer_bytes: int = 10_240
    dcqcn: bool = True
    pfc: bool = False
    dcqcn_rate_ai_gbps: float = 5.0
    dcqcn_min_rate_gbps: float = 1.0
    seed: int = 1
    resp_size: int = 64
    think_jitter_ns: float = 200.0
    warmup_ns: float = 300_000.0
    measure_ns: float = 500_000.0

    @classmethod
    def from_point(cls, point: dict, seed: int = 1) -> "ScenarioConfig":
        return cls(seed=seed, **point)

    def durations(self) -> tuple:
        scale = bench_scale()
        return self.warmup_ns * scale, self.measure_ns * scale

    def congestion(self, enabled: bool) -> CongestionConfig:
        """ECN/PFC thresholds derive from the buffer depth (the usual
        shallow-ToR provisioning rule: mark/pause at 3/4, resume at
        1/4); ``honor_env`` is stripped so CLI env flags cannot turn the
        baseline leg congested mid-comparison."""
        quarter = max(1, self.buffer_bytes // 4)
        return CongestionConfig(
            enabled=enabled, honor_env=False,
            buffer_bytes=self.buffer_bytes,
            ecn_kmin_bytes=quarter, ecn_kmax_bytes=3 * quarter,
            pfc=self.pfc if enabled else False,
            pfc_xoff_bytes=3 * quarter, pfc_xon_bytes=quarter,
            dcqcn_enabled=self.dcqcn,
            dcqcn_rate_ai_bytes_per_ns=self.dcqcn_rate_ai_gbps * GBPS,
            dcqcn_rate_hai_bytes_per_ns=5 * self.dcqcn_rate_ai_gbps * GBPS,
            dcqcn_min_rate_bytes_per_ns=self.dcqcn_min_rate_gbps * GBPS)

    def cluster(self, congested: bool) -> ClusterConfig:
        return ClusterConfig(
            n_clients=self.n_senders, seed=self.seed,
            nic=NicConfig(qp_cache_entries=self.qp_cache_entries),
            net=replace(NetConfig(), congestion=self.congestion(congested)))

    def flock(self) -> FlockConfig:
        return FlockConfig(
            credit_batch=self.credit_batch,
            credit_renew_threshold=max(1, self.credit_batch // 2),
            qps_per_handle=self.qps_per_handle,
            sched_interval_ns=150_000.0,
            thread_sched_interval_ns=150_000.0)

    def sizegen(self):
        """Per-thread message-size mix: ``large_fraction`` of each
        client's threads send ``large_size``, the rest ``req_size``."""
        if self.large_fraction <= 0.0:
            return FixedSize(self.req_size)
        return BimodalSize(self.threads_per_client,
                           large_size=max(self.large_size, self.req_size),
                           small_size=self.req_size,
                           large_fraction=self.large_fraction)

    def think_scale(self, thread_id: int) -> float:
        """Zipfian tenant-activity skew: thread rank 0 is the hot tenant
        (full rate); colder ranks think ``(rank+1)**theta`` times longer.
        theta=0 collapses to uniform tenants."""
        return (thread_id + 1) ** self.zipf_theta


def run_scenario_leg(cfg: ScenarioConfig, *, congested: bool,
                     telemetry=None, audit: Optional[bool] = None
                     ) -> RunResult:
    """One leg of a candidate: all senders -> one FLock server."""
    sim = Simulator()
    label = CONG_LABEL if congested else BASE_LABEL
    tel = _install_telemetry(sim, telemetry, label)
    audited, audit_reg = _prepare_audit(sim, tel, audit)
    warmup, measure = cfg.durations()
    prof = _install_observatory(sim, warmup, measure)
    servers, clients, fabric = build_cluster(sim, cfg.cluster(congested))
    flock_cfg = cfg.flock()
    server = FlockNode(sim, servers[0], fabric, flock_cfg)
    server.fl_reg_handler(ECHO_RPC, _echo_handler(
        cfg.resp_size, cfg.handler_ns, sim, warmup + measure / 2))

    recorder = Recorder(sim)
    jitter_rng = random.Random(cfg.seed ^ 0x7EA)
    sizegen = cfg.sizegen()
    handles = []

    def worker(fnode, handle, thread_id, size, think_ns, rng):
        while True:
            if think_ns > 0:
                yield sim.timeout(rng.random() * think_ns)
            started = sim.now
            yield from fnode.fl_call(handle, thread_id, ECHO_RPC, size)
            recorder.record(started)

    for c_idx, node in enumerate(clients):
        fnode = FlockNode(sim, node, fabric, flock_cfg,
                          seed=cfg.seed + c_idx * 131)
        handle = fnode.fl_connect(server, n_qps=cfg.qps_per_handle)
        handles.append(handle)
        for t_idx in range(cfg.threads_per_client):
            size = sizegen.next(t_idx)
            think_ns = cfg.think_jitter_ns * cfg.think_scale(t_idx)
            for _ in range(cfg.outstanding):
                rng = random.Random(jitter_rng.getrandbits(48))
                sim.spawn(worker(fnode, handle, t_idx, size, think_ns, rng),
                          name="search-worker")

    _run_window(sim, recorder, warmup, measure, fabric, profile=prof)
    degree = (sum(h.mean_coalescing_degree() for h in handles)
              / len(handles) if handles else 1.0)
    sw = fabric.switch
    extras = {
        "system": "search-%s" % ("cong" if congested else "base"),
        "mean_coalescing_degree": round(degree, 3),
        "server_cpu": round(servers[0].cpu.utilization(), 3),
        "congested": sw is not None,
    }
    if sw is not None:
        extras.update(
            pfc=sw.cfg.pfc,
            buffer_bytes=sw.cfg.buffer_bytes,
            peak_port_depth_bytes=round(sw.peak_depth_bytes(), 1),
            switch_drops=sw.total_drops,
            ecn_marks=sw.total_ecn_marks,
            pfc_pauses=sw.total_pause_events,
            cnps=fabric.cnps_delivered)
    result = recorder.result(**extras)
    result.telemetry = tel
    _attach_profile(result, sim, prof)
    return _finish_audit(audited, sim, audit_reg, result)


def _leg_summary(res: RunResult) -> dict:
    """The JSON-safe per-leg block that rides in an evaluation."""
    keep = ("server_cpu", "mean_coalescing_degree", "peak_port_depth_bytes",
            "switch_drops", "ecn_marks", "pfc_pauses", "cnps")
    out = {
        "ops": res.ops,
        "mops": round(res.mops, 4),
        "median_us": round(res.median_us, 3),
        "p99_us": round(res.p99_us, 3),
        "p999_us": round(res.p999_us, 3),
    }
    for key in keep:
        if key in res.extras:
            out[key] = res.extras[key]
    return out


def evaluate_point(point: dict, seed: int = 7, trace: bool = False) -> dict:
    """Evaluate one candidate: baseline + congested leg, JSON-safe dict.

    With ``trace=True`` each leg runs under a private span-collecting
    telemetry and the result carries per-leg attribution shares plus the
    baseline->scenario shift table.  The telemetry never leaves this
    process — only plain data crosses the executor's pickle boundary,
    which preserves jobs-1-vs-N byte-identity.
    """
    space = default_space()
    point = space.clamp(point)
    fingerprint = space.fingerprint(point)
    streams = Streams(seed).child("search/%s" % fingerprint)
    cfg = ScenarioConfig.from_point(point, seed=streams.seed)

    legs = {}
    blocks = {}
    for congested, leg in ((False, "base"), (True, "cong")):
        tel = Telemetry(wants_spans=True) if trace else None
        res = run_scenario_leg(cfg, congested=congested, telemetry=tel)
        legs[leg] = res
        if trace:
            blocks.update(attribution_blocks(tel))

    base, cong = legs["base"], legs["cong"]
    anomalies = {"base": list(base.anomalies), "cong": list(cong.anomalies)}
    severities = [a.get("severity", 0.0)
                  for side in anomalies.values() for a in side]
    evaluation = {
        "fingerprint": fingerprint,
        "point": point,
        "seed": streams.seed,
        "baseline": _leg_summary(base),
        "scenario": _leg_summary(cong),
        "tail_ratio": round(cong.p99_us / max(cong.median_us, 1e-9), 4),
        "goodput_retained": round(cong.mops / max(base.mops, 1e-9), 4),
        "anomalies": anomalies,
        "max_anomaly_severity": round(max(severities), 6) if severities
        else 0.0,
    }
    if trace:
        base_shares = blocks.get(BASE_LABEL, {}).get("shares", {})
        cong_shares = blocks.get(CONG_LABEL, {}).get("shares", {})
        shifts = shift_table(base_shares, cong_shares)
        evaluation["attribution"] = blocks
        evaluation["shift"] = shifts
        evaluation["top_shift"] = top_shift(shifts)
    return evaluation
