"""Explanations and presentation for search results.

Every retained candidate gets the full observability treatment: the
PR 3 critical-path attribution shift between its uncongested and
congested legs, and the PR 7 anomaly records of both legs joined to
that shift via :func:`repro.obs.explain.explain_between`.  The same
explained evaluation is what :func:`repro.harness.scorecards.
scorecard_search` freezes into a committed scenario gate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..obs.explain import (
    Explanation,
    explain_between,
    format_explanation,
    top_shift,
)
from .runner import BASE_LABEL, CONG_LABEL, evaluate_point

__all__ = ["explain_entry", "leaderboard_rows", "format_entry"]


def explain_entry(entry: dict, seed: int) -> dict:
    """One leaderboard entry -> its explained form (JSON-safe).

    Entries from a traced objective already carry attribution; others
    are re-evaluated in-process with tracing on (same candidate seed
    derivation, so throughput/latency numbers reproduce exactly).
    Returns ``{**entry, "shift", "top_resource", "explanations"}`` where
    ``explanations`` joins each scenario-leg anomaly to the
    baseline->scenario attribution diff.
    """
    if "shift" in entry:
        traced = entry
    else:
        traced = evaluate_point(entry["point"], seed=seed, trace=True)
        traced["score"] = entry.get("score", 0.0)
    blocks = traced.get("attribution", {})
    shifts = traced.get("shift", [])
    explanations: List[dict] = []
    for side in ("cong", "base"):
        for anomaly in traced.get("anomalies", {}).get(side, []):
            exp = explain_between(anomaly, BASE_LABEL, CONG_LABEL, blocks)
            explanations.append(exp.to_dict())
    out = dict(traced)
    out["top_resource"] = top_shift(shifts)
    out["explanations"] = explanations
    return out


def leaderboard_rows(result, top: int = 0) -> Tuple[List[str], List[list]]:
    """(columns, rows) for the CLI leaderboard table."""
    columns = ["rank", "score", "fingerprint", "cong Mops", "retained",
               "p99/p50", "anomalies", "top knobs"]
    rows: List[list] = []
    entries = result.leaderboard[:top] if top else result.leaderboard
    for rank, entry in enumerate(entries, start=1):
        anomalies = entry.get("anomalies", {})
        n_anom = sum(len(v) for v in anomalies.values())
        rows.append([
            rank,
            "%.4g" % entry.get("score", 0.0),
            entry["fingerprint"],
            "%.3f" % entry.get("scenario", {}).get("mops", 0.0),
            "%.3f" % entry.get("goodput_retained", 0.0),
            "%.2f" % entry.get("tail_ratio", 0.0),
            n_anom,
            _knob_digest(entry.get("point", {})),
        ])
    return columns, rows


def _knob_digest(point: dict, n: int = 3) -> str:
    """The few most workload-defining knobs, compactly."""
    keys = ("n_senders", "buffer_bytes", "qp_cache_entries", "req_size")
    parts = ["%s=%s" % (k, point[k]) for k in keys if k in point][:n + 1]
    return " ".join(parts)


def format_entry(detail: dict, rank: Optional[int] = None) -> str:
    """Human-readable block for one explained entry."""
    head = "candidate %s" % detail["fingerprint"]
    if rank is not None:
        head = "#%d %s" % (rank, head)
    lines = [head,
             "  score %.4g  cong %.3f Mops  retained %.3f  p99/p50 %.2f"
             % (detail.get("score", 0.0),
                detail.get("scenario", {}).get("mops", 0.0),
                detail.get("goodput_retained", 0.0),
                detail.get("tail_ratio", 0.0))]
    point = detail.get("point", {})
    lines.append("  point: " + ", ".join(
        "%s=%s" % (k, point[k]) for k in sorted(point)))
    top = detail.get("top_resource")
    shifts = detail.get("shift", [])
    if shifts:
        lines.append("  attribution shift (baseline -> scenario), top 3:")
        for row in shifts[:3]:
            lines.append("    %-14s %+0.3f  (%.3f -> %.3f)"
                         % (row["resource"], row["delta"],
                            row["pre_share"], row["post_share"]))
        if top:
            lines.append("  prime suspect: %s" % top)
    explanations = detail.get("explanations", [])
    if explanations:
        lines.append("  anomalies (%d explained):" % len(explanations))
        for exp_dict in explanations:
            exp = Explanation(**exp_dict)
            block = format_explanation(exp)
            lines.extend("    " + line for line in block.splitlines())
    else:
        lines.append("  anomalies: none detected")
    return "\n".join(lines)
