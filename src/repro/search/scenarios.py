"""Curated search-discovered anomaly scenarios, frozen as regression gates.

Each entry is a point the hunter actually found (see ``docs/search.md``
for the provenance runs), kept verbatim so the committed baseline in
``benchmarks/baselines/BENCH_search_<name>.json`` pins the *exact*
pathological configuration.  Promoting a new find: take the point from
``repro search --json``, add it here with the objective that surfaced
it, run ``benchmarks/test_ext_search.py`` at full scale, and commit the
emitted scorecard as its baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .runner import evaluate_point

__all__ = ["CuratedScenario", "CURATED_SCENARIOS", "curated_evaluation"]


@dataclass(frozen=True)
class CuratedScenario:
    """One committed find: the point plus its expected pathology."""

    name: str
    description: str
    #: The frozen search point (a complete default_space() vector).
    point: Dict
    #: Objective that surfaced it and the root seed of that search.
    objective: str
    seed: int
    #: Resource expected to gain the most critical-path share between
    #: the uncongested and congested legs (the explanation's suspect).
    expected_top_resource: Optional[str] = None
    #: Whether the within-run detectors flag this scenario at full
    #: scale; steady-state pathologies legitimately have no mid-run
    #: transition and gate on the collapse bound instead.
    expect_anomaly_records: bool = True
    #: Upper bound on congested/uncongested goodput (the collapse).
    max_goodput_retained: Optional[float] = None


#: Filled by the discovery runs documented in docs/search.md.
CURATED_SCENARIOS: Dict[str, CuratedScenario] = {}


def _register(scenario: CuratedScenario) -> None:
    CURATED_SCENARIOS[scenario.name] = scenario


_register(CuratedScenario(
    name="dcqcn_collapse",
    description=(
        "Lossy-fabric congestion collapse: 10 senders of mostly-872B "
        "requests (18% of threads at 1788B) against a 48KB egress "
        "buffer overwhelm DCQCN — ~3k tail drops and ~7k ECN marks per "
        "window throttle the flows to a fifth of their uncongested "
        "goodput while p99 inflates ~20x, with mid-run p99 changepoints "
        "as the rate controller hunts.  Found by repro search "
        "--objective goodput_collapse --seed 11 --budget 24 (rank 6; "
        "the lossless-mode ranks 1-4 are covered by pfc_pause_storm)."),
    point={
        "n_senders": 10, "threads_per_client": 5, "outstanding": 4,
        "req_size": 872, "large_size": 1788, "large_fraction": 0.184746,
        "zipf_theta": 0.482756, "handler_ns": 67.633,
        "qp_cache_entries": 72, "credit_batch": 11, "qps_per_handle": 4,
        "buffer_bytes": 49261, "dcqcn": True, "pfc": False,
        "dcqcn_rate_ai_gbps": 4.53184, "dcqcn_min_rate_gbps": 3.34541,
    },
    objective="goodput_collapse",
    seed=11,
    expected_top_resource="switch_queue",
    expect_anomaly_records=True,
    max_goodput_retained=0.5,
))

_register(CuratedScenario(
    name="pfc_pause_storm",
    description=(
        "Lossless head-of-line collapse: 15 senders with a 48% "
        "large-message (5.6KB) tenant mix fill a 47KB egress buffer; "
        "PFC pauses propagate to every upstream port and the fabric "
        "spends ~78% of the congested leg's critical path in "
        "pause-induced stalls — goodput drops ~9x with zero drops and "
        "a steady (changepoint-free) storm.  Found by repro search "
        "--objective goodput_collapse --seed 11 --budget 24 (rank 1)."),
    point={
        "n_senders": 15, "threads_per_client": 4, "outstanding": 2,
        "req_size": 624, "large_size": 5627, "large_fraction": 0.482842,
        "zipf_theta": 0.663743, "handler_ns": 53.6789,
        "qp_cache_entries": 632, "credit_batch": 7, "qps_per_handle": 8,
        "buffer_bytes": 47231, "dcqcn": True, "pfc": True,
        "dcqcn_rate_ai_gbps": 2.22556, "dcqcn_min_rate_gbps": 3.89397,
    },
    objective="goodput_collapse",
    seed=11,
    expected_top_resource="pfc_pause",
    expect_anomaly_records=False,
    max_goodput_retained=0.3,
))


def curated_evaluation(name: str, trace: bool = True) -> dict:
    """Evaluate a curated scenario exactly as the search that found it
    did (same seed derivation), traced by default so the scorecard can
    carry its attribution-shift explanation."""
    scenario = CURATED_SCENARIOS[name]
    return evaluate_point(scenario.point, seed=scenario.seed, trace=trace)
