"""Objective functions: what the hunter considers "anomalous".

Each objective maps one candidate evaluation (the plain dict produced by
:func:`repro.search.runner.evaluate_point`) to a scalar score, higher =
more anomalous.  Objectives that rank by attribution need traced legs
(``needs_trace``) — the driver switches candidate evaluation to traced
mode for them so every scored candidate carries its own explanation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["Objective", "get_objective", "list_objectives", "OBJECTIVES"]


@dataclass(frozen=True)
class Objective:
    """A named, optionally parameterized anomaly measure."""

    name: str
    description: str
    score: Callable[[dict], float] = field(repr=False)
    #: Evaluations must run traced (attribution shares per leg).
    needs_trace: bool = False
    #: The ``name:arg`` parameter, when the objective takes one.
    arg: Optional[str] = None

    @property
    def spec(self) -> str:
        return self.name if self.arg is None else "%s:%s" % (self.name,
                                                             self.arg)


def _tail_ratio(ev: dict) -> float:
    return float(ev.get("tail_ratio", 0.0))


def _goodput_collapse(ev: dict) -> float:
    # 0 = full retention, 1 = total collapse under congestion.
    return max(0.0, 1.0 - float(ev.get("goodput_retained", 1.0)))


def _anomaly_severity(ev: dict) -> float:
    return float(ev.get("max_anomaly_severity", 0.0))


def _attribution_shift(resource: Optional[str]) -> Callable[[dict], float]:
    def score(ev: dict) -> float:
        shifts = ev.get("shift") or []
        if resource is None:
            # Largest share gained by any resource between the legs.
            return max((row["delta"] for row in shifts), default=0.0)
        for row in shifts:
            if row["resource"] == resource:
                return float(row["delta"])
        return 0.0
    return score


def _make(name: str, arg: Optional[str]) -> Objective:
    if name == "tail_ratio":
        return Objective(
            name=name, arg=None, score=_tail_ratio,
            description="p99/p50 latency inflation of the congested leg")
    if name == "goodput_collapse":
        return Objective(
            name=name, arg=None, score=_goodput_collapse,
            description="1 - goodput retained vs the uncongested baseline")
    if name == "anomaly_severity":
        return Objective(
            name=name, arg=None, score=_anomaly_severity,
            description="max detector severity across both legs' anomalies")
    if name == "attribution_shift":
        return Objective(
            name=name, arg=arg, needs_trace=True,
            score=_attribution_shift(arg),
            description="critical-path share gained baseline->scenario"
                        + (" by %s" % arg if arg else " by any resource"))
    raise ValueError("unknown objective %r (known: %s)"
                     % (name, ", ".join(sorted(OBJECTIVES))))


#: Registered objective names -> whether they accept a ``:arg``.
OBJECTIVES: Dict[str, bool] = {
    "tail_ratio": False,
    "goodput_collapse": False,
    "anomaly_severity": False,
    "attribution_shift": True,
}


def get_objective(spec: str) -> Objective:
    """Parse ``"name"`` or ``"name:arg"`` into an :class:`Objective`."""
    name, _, arg = spec.partition(":")
    name = name.strip()
    arg = arg.strip() or None
    if name not in OBJECTIVES:
        raise ValueError("unknown objective %r (known: %s)"
                         % (name, ", ".join(sorted(OBJECTIVES))))
    if arg is not None and not OBJECTIVES[name]:
        raise ValueError("objective %r takes no argument" % name)
    return _make(name, arg)


def list_objectives() -> List[Objective]:
    """One instance of every registered objective (default args)."""
    return [_make(name, None) for name in sorted(OBJECTIVES)]
