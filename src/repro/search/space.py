"""Typed, serializable search space over workload/config vectors.

A *point* is a plain ``{dim_name: value}`` dict — JSON-safe, picklable,
and canonically fingerprintable, so it can cross the parallel executor's
process boundary and be frozen verbatim into a committed scenario.  Every
dimension knows how to sample, clamp, and serialize itself; mutation
kernels live in :mod:`repro.search.mutate`.

Fingerprints are the search's identity system: deduplication, the
derived per-candidate seed (``Streams(seed).child("search/<fp>")``), and
leaderboard tie-breaking all key on them, which is what makes the search
deterministic and evaluation-order-independent.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "IntDim",
    "FloatDim",
    "BoolDim",
    "ChoiceDim",
    "SearchSpace",
    "default_space",
    "dim_from_dict",
]


def _sig(value: float) -> float:
    """Round to 6 significant digits so serialized points stay tidy and
    a value survives a JSON round trip fingerprint-identical."""
    return float("%.6g" % value)


@dataclass(frozen=True)
class IntDim:
    """Integer dimension on ``[lo, hi]``; ``log`` samples log-uniformly
    (right for capacities spanning decades: cache entries, buffer bytes).
    """

    name: str
    lo: int
    hi: int
    log: bool = False

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError("%s: lo > hi" % self.name)
        if self.log and self.lo < 1:
            raise ValueError("%s: log scale needs lo >= 1" % self.name)

    def sample(self, rng: random.Random) -> int:
        if self.log:
            x = math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))
            return self.clamp(int(round(x)))
        return rng.randint(self.lo, self.hi)

    def clamp(self, value) -> int:
        return max(self.lo, min(self.hi, int(round(value))))

    def to_dict(self) -> dict:
        return {"kind": "int", "name": self.name, "lo": self.lo,
                "hi": self.hi, "log": self.log}


@dataclass(frozen=True)
class FloatDim:
    """Float dimension on ``[lo, hi]``, optionally log-scaled."""

    name: str
    lo: float
    hi: float
    log: bool = False

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError("%s: lo > hi" % self.name)
        if self.log and self.lo <= 0:
            raise ValueError("%s: log scale needs lo > 0" % self.name)

    def sample(self, rng: random.Random) -> float:
        if self.log:
            x = math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))
        else:
            x = rng.uniform(self.lo, self.hi)
        return self.clamp(x)

    def clamp(self, value) -> float:
        return _sig(max(self.lo, min(self.hi, float(value))))

    def to_dict(self) -> dict:
        return {"kind": "float", "name": self.name, "lo": self.lo,
                "hi": self.hi, "log": self.log}


@dataclass(frozen=True)
class BoolDim:
    """On/off dimension (PFC, ECN/DCQCN reaction, ...)."""

    name: str

    def sample(self, rng: random.Random) -> bool:
        return rng.random() < 0.5

    def clamp(self, value) -> bool:
        return bool(value)

    def to_dict(self) -> dict:
        return {"kind": "bool", "name": self.name}


@dataclass(frozen=True)
class ChoiceDim:
    """Categorical dimension over a fixed tuple of JSON-safe choices."""

    name: str
    choices: Tuple

    def __post_init__(self):
        if len(self.choices) < 1:
            raise ValueError("%s: need at least one choice" % self.name)

    def sample(self, rng: random.Random):
        return self.choices[rng.randrange(len(self.choices))]

    def clamp(self, value):
        if value in self.choices:
            return value
        return self.choices[0]

    def to_dict(self) -> dict:
        return {"kind": "choice", "name": self.name,
                "choices": list(self.choices)}


def dim_from_dict(data: dict):
    """Inverse of every dimension's ``to_dict``."""
    kind = data.get("kind")
    if kind == "int":
        return IntDim(data["name"], int(data["lo"]), int(data["hi"]),
                      bool(data.get("log", False)))
    if kind == "float":
        return FloatDim(data["name"], float(data["lo"]), float(data["hi"]),
                        bool(data.get("log", False)))
    if kind == "bool":
        return BoolDim(data["name"])
    if kind == "choice":
        return ChoiceDim(data["name"], tuple(data["choices"]))
    raise ValueError("unknown dimension kind: %r" % (kind,))


class SearchSpace:
    """An ordered collection of named dimensions."""

    def __init__(self, dims: Sequence):
        self.dims: Dict[str, object] = {}
        for dim in dims:
            if dim.name in self.dims:
                raise ValueError("duplicate dimension: %s" % dim.name)
            self.dims[dim.name] = dim

    def __len__(self) -> int:
        return len(self.dims)

    def sample(self, rng: random.Random) -> dict:
        """One random point, dimensions drawn in definition order."""
        return {name: dim.sample(rng) for name, dim in self.dims.items()}

    def clamp(self, point: dict) -> dict:
        """Validate keys and clamp every value into its dimension's
        domain.  Unknown keys raise; missing keys raise — a point is a
        *complete* vector so fingerprints are comparable."""
        unknown = set(point) - set(self.dims)
        if unknown:
            raise ValueError("unknown dimensions: %s" % sorted(unknown))
        missing = set(self.dims) - set(point)
        if missing:
            raise ValueError("missing dimensions: %s" % sorted(missing))
        return {name: dim.clamp(point[name])
                for name, dim in self.dims.items()}

    def fingerprint(self, point: dict) -> str:
        """Stable 16-hex-digit identity of a clamped point."""
        canon = json.dumps(self.clamp(point), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()[:16]

    def point_id(self, point: dict) -> str:
        """The ``Streams.child`` id for a candidate: ``search/<fp>``."""
        return "search/%s" % self.fingerprint(point)

    def to_dict(self) -> dict:
        return {"dims": [dim.to_dict() for dim in self.dims.values()]}

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpace":
        return cls([dim_from_dict(d) for d in data.get("dims", [])])


def default_space() -> SearchSpace:
    """The adversarial scenario space: workload shape x protocol knobs
    x fabric knobs, every one a plain constructor-reachable config field.

    Ranges bracket the committed figure operating points by roughly an
    order of magnitude each way, so the search can reach both benign and
    pathological regimes without leaving the model's calibrated envelope.
    """
    return SearchSpace([
        # Workload shape (fan-in / incast degree and per-node pressure).
        IntDim("n_senders", 4, 16),
        IntDim("threads_per_client", 2, 8),
        IntDim("outstanding", 1, 4),
        # Message-size mix: a bimodal small/large blend per thread.
        IntDim("req_size", 64, 4096, log=True),
        IntDim("large_size", 1024, 16384, log=True),
        FloatDim("large_fraction", 0.0, 0.5),
        # Tenant mix: zipfian skew of per-thread think time (theta=0 is
        # uniform tenants; high theta concentrates load on hot threads).
        FloatDim("zipf_theta", 0.0, 0.9),
        # Server application cost.
        FloatDim("handler_ns", 50.0, 2000.0, log=True),
        # NIC connection-cache pressure (the paper's Fig. 2 knee knob).
        IntDim("qp_cache_entries", 64, 1024, log=True),
        # FLock credit/QP-pool depth.
        IntDim("credit_batch", 4, 64, log=True),
        IntDim("qps_per_handle", 1, 8),
        # Fabric: shallow-to-deep egress buffer, ECN/DCQCN and PFC modes.
        IntDim("buffer_bytes", 4096, 131072, log=True),
        BoolDim("dcqcn"),
        BoolDim("pfc"),
        FloatDim("dcqcn_rate_ai_gbps", 1.0, 25.0, log=True),
        FloatDim("dcqcn_min_rate_gbps", 0.5, 4.0, log=True),
    ])
