"""Cluster nodes and the switched fabric connecting them.

The topology mirrors the paper's testbed (§8.1): every node has one
100 Gbps NIC, one hop through a single switch.  A message transfer is a
process: source-NIC processing (state lookup, rate limit, wire
serialization) → propagation → destination-NIC processing.  Packet loss
can be injected; reliable transports (RC) absorb it as a hardware
retransmission delay, unreliable ones surface it as a drop.

By default the switch is contention-free — concurrent transfers to the
same destination overlap for free, which is the regime every committed
figure baseline was calibrated against.  With
``NetConfig.congestion.enabled`` (or ``REPRO_CONGESTION=1``) each
transfer additionally crosses a per-destination egress port with a
finite output queue (:mod:`repro.net.congestion`): queue buildup charges
``switch_queue`` wait time, triggers ECN marks that come back to the
sender as CNPs for DCQCN rate control, tail-drops past the buffer (RC
retransmits, UD loses the message), or — in PFC mode — pauses the
sending node entirely.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, Iterable, Optional, Tuple

from ..config import ClusterConfig, CpuConfig, NetConfig, NicConfig
from ..hw import CpuMeter, HostMemory, Rnic
from ..obs.span import Span
from ..sim import Event, Simulator
from .congestion import DcqcnState, Switch
from .fidelity import FidelityController
from .flow import FluidModel
from .transport import PacketModel

__all__ = ["Node", "Fabric", "build_cluster"]


class Node:
    """One machine: an RNIC, host memory, and metered CPU cores."""

    def __init__(self, sim: Simulator, name: str, nic_cfg: NicConfig,
                 cpu_cfg: CpuConfig, net_cfg: NetConfig):
        self.sim = sim
        self.name = name
        self.rnic = Rnic(sim, nic_cfg, net_cfg, name=name + ".rnic")
        self.memory = HostMemory()
        self.cpu = CpuMeter(sim, cpu_cfg.cores, name=name + ".cpu")
        self.cpu_cfg = cpu_cfg
        self._next_qpn = 1

    def alloc_qpn(self) -> int:
        qpn = self._next_qpn
        self._next_qpn += 1
        return qpn

    def __repr__(self) -> str:
        return "Node(%s)" % self.name


class Fabric:
    """The switch: moves messages between node NICs in virtual time."""

    def __init__(self, sim: Simulator, cfg: NetConfig, seed: int = 0):
        self.sim = sim
        self.cfg = cfg
        self.seed = seed
        self.rng = random.Random(seed)
        #: Probability an individual *packet* is "lost" on the wire.
        self.loss_prob = 0.0
        #: Extra latency charged when RC hardware retransmits a lost packet.
        self.retransmit_ns = 12_000.0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Links in the fabric; set by :func:`build_cluster` to the node
        #: count so the aggregate utilization gauge normalises correctly.
        self.n_ports = 1
        #: Resolved congestion model (env overrides applied here, once).
        self.congestion = cfg.congestion.resolved()
        self.switch: Optional[Switch] = (
            Switch(sim, cfg, self.congestion, seed=seed)
            if self.congestion.enabled else None)
        #: Resolved transport fidelity (env overrides applied here, once).
        self.fidelity = cfg.fidelity.resolved()
        self._packet_model = PacketModel(self)
        #: The static model every transfer uses, or None in hybrid mode
        #: where the controller arbitrates per destination port.
        self._model = self._packet_model
        self.fidelity_controller: Optional[FidelityController] = None
        if self.fidelity.mode == "fluid":
            self._model = FluidModel(self)
        elif self.fidelity.mode == "hybrid":
            self._model = None
            self.fidelity_controller = FidelityController(
                self, self.fidelity, self._packet_model, FluidModel(self))
        #: DCQCN limiter per (src node, QP); only populated when the
        #: switch model and DCQCN are both on.
        self._dcqcn: Dict[Tuple[str, int], DcqcnState] = {}
        self.cnps_delivered = 0
        self._obs = sim.instrumented
        #: Occupancy tracker (cost observatory); cached like ``_obs`` so
        #: the off path is one ``is None`` test per transfer.
        self._occ = sim.occupancy
        metrics = sim.metrics
        self._m_messages = metrics.counter("net.messages")
        self._m_payload_bytes = metrics.counter("net.payload_bytes")
        self._m_wire_bytes = metrics.counter("net.wire_bytes")
        self._m_header_bytes = metrics.counter("net.header_bytes")
        self._m_packets = metrics.counter("net.packets")
        self._m_drops = metrics.counter("net.drops")
        self._m_retransmits = metrics.counter("net.retransmits")
        self._m_cnps = metrics.counter("net.cnps")
        if metrics.enabled:
            # Aggregate utilization: wire bytes moved vs. the capacity of
            # all ports over elapsed virtual time (sampled at snapshot).
            metrics.gauge(
                "net.link_utilization",
                fn=lambda: (self._m_wire_bytes.value
                            / (cfg.bandwidth_bytes_per_ns
                               * max(self.n_ports, 1)
                               * max(sim.now, 1.0))))
        sim.register_component(self)

    # -- congestion plumbing ----------------------------------------------

    @property
    def dcqcn_active(self) -> bool:
        return self.switch is not None and self.congestion.dcqcn_enabled

    def dcqcn_for(self, node_name: str, qpn: int) -> DcqcnState:
        """The rate-limiter state for one sending flow (lazily created)."""
        key = (node_name, qpn)
        state = self._dcqcn.get(key)
        if state is None:
            state = DcqcnState(self.congestion, self.cfg.bandwidth_bytes_per_ns)
            self._dcqcn[key] = state
        return state

    def _deliver_cnp(self, src_name: str, src_qpn: int
                     ) -> Generator[Event, None, None]:
        """Carry one congestion notification back to the sender's QP."""
        yield self.sim.timeout(self.cfg.propagation_ns)
        self.dcqcn_for(src_name, src_qpn).on_cnp(self.sim.now)
        self.cnps_delivered += 1
        if self._obs:
            self._m_cnps.inc()

    def transfer(
        self,
        src: Node,
        dst: Node,
        nbytes: int,
        src_qpn: int,
        dst_qpn: int,
        *,
        rkeys: Iterable[int] = (),
        reliable: bool = True,
        jitter_ns: float = 0.0,
        span: Optional[Span] = None,
    ) -> Generator[Event, None, bool]:
        """Move one message from ``src`` to ``dst``.

        Returns True if delivered; False if dropped (unreliable transport
        under injected loss or switch tail drop).  Reliable transfers
        always deliver but pay a retransmission delay per lost packet and
        per switch drop.  A carried ``span`` records ``nic_tx`` /
        ``switch_queue`` / ``propagation`` / ``nic_rx`` phases.

        The time evolution itself is delegated to the configured
        :class:`~repro.net.transport.TransportModel` (packet, fluid, or
        — in hybrid mode — whichever the fidelity controller picks for
        ``dst``'s egress port); this wrapper owns only the
        model-independent bookkeeping.
        """
        occ = self._occ
        if occ is not None:
            # try/finally (not per-exit decrements) so abandoned or
            # interrupted transfers release their in-flight slot too.
            occ.add("fabric.inflight", self.sim.now, 1.0)
        try:
            n_packets = src.rnic.packets_for(nbytes)
            wire_bytes = src.rnic.wire_bytes(nbytes)
            if self._obs:
                self._m_messages.inc()
                self._m_payload_bytes.inc(nbytes)
                self._m_wire_bytes.inc(wire_bytes)
                self._m_header_bytes.inc(wire_bytes - nbytes)
                self._m_packets.inc(n_packets)
            model = self._model
            if model is None:
                model = self.fidelity_controller.model_for(dst)
            result = yield from model.pipeline(
                src, dst, nbytes, wire_bytes, n_packets, src_qpn, dst_qpn,
                rkeys, reliable, jitter_ns, span)
            return result
        finally:
            if occ is not None:
                occ.add("fabric.inflight", self.sim.now, -1.0)

    def transfer_async(self, *args, **kwargs):
        """Spawn :meth:`transfer` as a background process; returns it."""
        return self.sim.spawn(self.transfer(*args, **kwargs), name="xfer")

    def fidelity_snapshot(self) -> dict:
        """Transport-fidelity state for reporting: the resolved mode
        plus, in hybrid mode, the controller's transition ledger."""
        snap = {"mode": self.fidelity.mode}
        if self.fidelity_controller is not None:
            snap.update(self.fidelity_controller.snapshot())
        return snap

    def congestion_snapshot(self) -> dict:
        """Switch + DCQCN state for reporting (empty when disabled)."""
        if self.switch is None:
            return {}
        snap = self.switch.snapshot()
        snap["cnps_delivered"] = self.cnps_delivered
        snap["flows"] = {
            "%s/qp%d" % key: st.snapshot()
            for key, st in sorted(self._dcqcn.items())
            if st.cnps or st.throttled
        }
        return snap


def build_cluster(sim: Simulator, cfg: ClusterConfig):
    """Create (servers, clients, fabric) per a :class:`ClusterConfig`."""
    fabric = Fabric(sim, cfg.net, seed=cfg.seed)
    servers = [
        Node(sim, "server%d" % i, cfg.nic, cfg.cpu, cfg.net)
        for i in range(cfg.n_servers)
    ]
    clients = [
        Node(sim, "client%d" % i, cfg.nic, cfg.cpu, cfg.net)
        for i in range(cfg.n_clients)
    ]
    fabric.n_ports = len(servers) + len(clients)
    if fabric.switch is not None and fabric.congestion.pfc:
        # PFC reaches into the NIC: a paused node's transmit pipeline
        # stalls before serialization, for every destination.
        for node in servers + clients:
            node.rnic.tx_gate = _pfc_gate(fabric.switch, node.name)
    return servers, clients, fabric


def _pfc_gate(switch: Switch, node_name: str):
    """A tx-pipeline hook blocking while ``node_name`` is PFC-paused."""
    def gate(span=None):
        return switch.ingress_wait(node_name, span)
    return gate
