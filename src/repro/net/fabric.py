"""Cluster nodes and the switched fabric connecting them.

The topology mirrors the paper's testbed (§8.1): every node has one
100 Gbps NIC, one hop through a single switch.  A message transfer is a
process: source-NIC processing (state lookup, rate limit, wire
serialization) → propagation → destination-NIC processing.  Packet loss
can be injected; reliable transports (RC) absorb it as a hardware
retransmission delay, unreliable ones surface it as a drop.
"""

from __future__ import annotations

import random
from typing import Generator, Iterable, Optional

from ..config import ClusterConfig, CpuConfig, NetConfig, NicConfig
from ..hw import CpuMeter, HostMemory, Rnic
from ..obs.span import Span
from ..sim import Event, Simulator

__all__ = ["Node", "Fabric", "build_cluster"]


class Node:
    """One machine: an RNIC, host memory, and metered CPU cores."""

    def __init__(self, sim: Simulator, name: str, nic_cfg: NicConfig,
                 cpu_cfg: CpuConfig, net_cfg: NetConfig):
        self.sim = sim
        self.name = name
        self.rnic = Rnic(sim, nic_cfg, net_cfg, name=name + ".rnic")
        self.memory = HostMemory()
        self.cpu = CpuMeter(sim, cpu_cfg.cores, name=name + ".cpu")
        self.cpu_cfg = cpu_cfg
        self._next_qpn = 1

    def alloc_qpn(self) -> int:
        qpn = self._next_qpn
        self._next_qpn += 1
        return qpn

    def __repr__(self) -> str:
        return "Node(%s)" % self.name


class Fabric:
    """The switch: moves messages between node NICs in virtual time."""

    def __init__(self, sim: Simulator, cfg: NetConfig, seed: int = 0):
        self.sim = sim
        self.cfg = cfg
        self.rng = random.Random(seed)
        #: Probability an individual message transfer is "lost" on the wire.
        self.loss_prob = 0.0
        #: Extra latency charged when RC hardware retransmits a lost packet.
        self.retransmit_ns = 12_000.0
        self.messages_delivered = 0
        self.messages_dropped = 0
        metrics = sim.metrics
        self._m_messages = metrics.counter("net.messages")
        self._m_payload_bytes = metrics.counter("net.payload_bytes")
        self._m_wire_bytes = metrics.counter("net.wire_bytes")
        self._m_header_bytes = metrics.counter("net.header_bytes")
        self._m_packets = metrics.counter("net.packets")
        self._m_drops = metrics.counter("net.drops")
        self._m_retransmits = metrics.counter("net.retransmits")
        if metrics.enabled:
            # Aggregate utilization: wire bytes moved vs. one link's
            # capacity over elapsed virtual time (sampled at snapshot).
            metrics.gauge(
                "net.link_utilization",
                fn=lambda: (self._m_wire_bytes.value
                            / (cfg.bandwidth_bytes_per_ns
                               * max(sim.now, 1.0))))
        sim.register_component(self)

    def transfer(
        self,
        src: Node,
        dst: Node,
        nbytes: int,
        src_qpn: int,
        dst_qpn: int,
        *,
        rkeys: Iterable[int] = (),
        reliable: bool = True,
        jitter_ns: float = 0.0,
        span: Optional[Span] = None,
    ) -> Generator[Event, None, bool]:
        """Move one message from ``src`` to ``dst``.

        Returns True if delivered; False if dropped (unreliable transport
        under injected loss).  Reliable transfers always deliver but pay a
        retransmission delay per loss event.  A carried ``span`` records
        ``nic_tx`` / ``propagation`` / ``nic_rx`` phases along the way.
        """
        self._m_messages.inc()
        self._m_payload_bytes.inc(nbytes)
        self._m_wire_bytes.inc(src.rnic.wire_bytes(nbytes))
        self._m_header_bytes.inc(src.rnic.wire_bytes(nbytes) - nbytes)
        self._m_packets.inc(src.rnic.packets_for(nbytes))
        yield from src.rnic.tx_process(nbytes, src_qpn, rkeys, span=span)
        delay = self.cfg.propagation_ns + src.rnic.cfg.base_latency_ns
        if jitter_ns > 0:
            delay += self.rng.random() * jitter_ns
        if self.loss_prob > 0 and self.rng.random() < self.loss_prob:
            if not reliable:
                self.messages_dropped += 1
                self._m_drops.inc()
                return False
            # RNIC-level retransmission: invisible to software, costs time.
            delay += self.retransmit_ns
            self._m_retransmits.inc()
        if span is not None:
            span.add_phase("propagation", self.sim.now, self.sim.now + delay)
            span.wait("propagation", self.sim.now, self.sim.now + delay)
        yield self.sim.timeout(delay)
        yield from dst.rnic.rx_process(nbytes, dst_qpn, rkeys, span=span)
        self.messages_delivered += 1
        return True

    def transfer_async(self, *args, **kwargs):
        """Spawn :meth:`transfer` as a background process; returns it."""
        return self.sim.spawn(self.transfer(*args, **kwargs), name="xfer")


def build_cluster(sim: Simulator, cfg: ClusterConfig):
    """Create (servers, clients, fabric) per a :class:`ClusterConfig`."""
    fabric = Fabric(sim, cfg.net, seed=cfg.seed)
    servers = [
        Node(sim, "server%d" % i, cfg.nic, cfg.cpu, cfg.net)
        for i in range(cfg.n_servers)
    ]
    clients = [
        Node(sim, "client%d" % i, cfg.nic, cfg.cpu, cfg.net)
        for i in range(cfg.n_clients)
    ]
    return servers, clients, fabric
