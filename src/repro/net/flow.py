"""Fluid (flow-level) transport model: O(1) events per transfer.

An uncontended message under :class:`repro.net.transport.PacketModel`
costs half a dozen or more dispatched events — token-bucket timeouts, a
TX-port acquire, the wire timeout, propagation, PCIe slot churn on cache
misses.  :class:`FluidModel` computes the same end-to-end latency
analytically — using the synchronous twins on the RNIC
(:meth:`repro.hw.rnic.Rnic.tx_time_ns` / ``rx_time_ns``), the PCIe
backlog clock, and :meth:`repro.net.congestion.switch.Switch.offer` —
and advances the whole transfer with a single timeout.

Accuracy contract (see docs/network.md):

* every structural ledger and metric counter the auditors check is
  bumped exactly as in the stepped pipeline (bytes, messages, packets,
  cache hits/misses, PCIe reads and stall time, switch port ledgers);
* serialization and PCIe queueing are served FIFO against per-resource
  fluid clocks at the stepped model's aggregate drain rate;
* latency jitter is charged at its expectation (``0.5 * jitter_ns``)
  instead of a uniform draw, and ECN marking is expected-value
  (``mark_debt``) instead of Bernoulli, so fluid runs are deterministic
  for a given arrival order;
* packet loss still draws per packet, from a dedicated RNG stream so
  enabling fluid mode cannot perturb the packet model's draw sequence
  in hybrid runs.

Nonlinear regimes (deep queues, PFC pauses, tail drops under incast)
are where these expectations break down — which is exactly what the
hybrid controller (:mod:`repro.net.fidelity`) detects to demote a port
back to the packet model.
"""

from __future__ import annotations

import random
from typing import Generator, Iterable, Optional, TYPE_CHECKING

from ..obs.span import Span
from ..sim import Event
from .transport import TransportModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fabric import Fabric, Node

__all__ = ["FluidModel"]


class FluidModel(TransportModel):
    """Flow-level transfers: one dispatched event per uncontended hop."""

    kind = "fluid"

    def __init__(self, fabric: "Fabric"):
        super().__init__(fabric)
        #: Loss draws come from their own stream (not ``fabric.rng``) so
        #: a hybrid run's fluid transfers don't shift the stepped
        #: pipeline's jitter/loss sequence.
        self._loss_rng = random.Random(fabric.seed ^ 0xF10D)

    def pipeline(
        self,
        src: "Node",
        dst: "Node",
        nbytes: int,
        wire_bytes: int,
        n_packets: int,
        src_qpn: int,
        dst_qpn: int,
        rkeys: Iterable[int],
        reliable: bool,
        jitter_ns: float,
        span: Optional[Span],
    ) -> Generator[Event, None, bool]:
        fab = self.fabric
        sim = fab.sim
        if src.rnic.tx_gate is not None:
            # PFC head-of-line blocking keeps its stepped semantics: the
            # gate is a no-op generator unless the node is paused.
            yield from src.rnic.tx_gate(span)
        delay = src.rnic.tx_time_ns(nbytes, src_qpn, rkeys, span=span)
        hop = fab.cfg.propagation_ns + src.rnic.cfg.base_latency_ns
        if jitter_ns > 0:
            # Expected value of the stepped model's uniform draw.
            hop += 0.5 * jitter_ns
        if fab.loss_prob > 0:
            lost = sum(1 for _ in range(n_packets)
                       if self._loss_rng.random() < fab.loss_prob)
            if lost:
                if not reliable:
                    fab.messages_dropped += 1
                    if fab._obs:
                        fab._m_drops.inc()
                    return False
                delay += fab.retransmit_ns * lost
                if fab._obs:
                    fab._m_retransmits.inc(lost)
        marked = False
        if fab.switch is not None:
            while True:
                accepted, marked, wait = fab.switch.offer(
                    src.name, dst.name, wire_bytes, span=span)
                if accepted:
                    delay += wait
                    break
                if not reliable:
                    fab.messages_dropped += 1
                    if fab._obs:
                        fab._m_drops.inc()
                    return False
                # Tail drop on RC keeps a real timeout: the resubmission
                # must see the queue as it stands *after* the backoff.
                if fab._obs:
                    fab._m_retransmits.inc()
                yield sim.timeout(fab.retransmit_ns)
        arrival = sim.now + delay + hop
        if span is not None:
            span.add_phase("propagation", arrival - hop, arrival)
            span.wait("propagation", arrival - hop, arrival)
        delay = (arrival - sim.now) + dst.rnic.rx_time_ns(
            nbytes, dst_qpn, rkeys, span=span, at=arrival)
        if span is not None:
            # The one analytic advance, attributable as fluid-model time.
            span.wait("fluid", sim.now, sim.now + delay)
        yield sim.timeout(delay)
        # rx is booked on landing, in lockstep with the delivery ledger,
        # so the delivered==rx audit holds even at a window cutoff.
        dst.rnic.commit_rx()
        fab.messages_delivered += 1
        if marked and reliable and fab.dcqcn_active:
            sim.spawn(fab._deliver_cnp(src.name, src_qpn), name="cnp")
        return True
