"""Network substrate: nodes, switched fabric, packetization."""

from .fabric import Fabric, Node, build_cluster
from .packet import Reassembler, segment

__all__ = ["Fabric", "Node", "Reassembler", "build_cluster", "segment"]
