"""Network substrate: nodes, switched fabric, packetization, congestion."""

from .congestion import DcqcnState, Switch, SwitchPort
from .fabric import Fabric, Node, build_cluster
from .packet import Reassembler, segment

__all__ = [
    "DcqcnState",
    "Fabric",
    "Node",
    "Reassembler",
    "Switch",
    "SwitchPort",
    "build_cluster",
    "segment",
]
