"""Network substrate: nodes, switched fabric, packetization, congestion."""

from .congestion import DcqcnState, Switch, SwitchPort
from .fabric import Fabric, Node, build_cluster
from .fidelity import FidelityController, PortFidelity
from .flow import FluidModel
from .packet import Reassembler, segment
from .transport import PacketModel, TransportModel

__all__ = [
    "DcqcnState",
    "Fabric",
    "FidelityController",
    "FluidModel",
    "Node",
    "PacketModel",
    "PortFidelity",
    "Reassembler",
    "Switch",
    "SwitchPort",
    "TransportModel",
    "build_cluster",
    "segment",
]
