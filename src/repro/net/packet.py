"""Packetization helpers.

The simulator moves whole messages, but wire costs are charged per MTU
packet; and UD (4 KB MTU, Table 1) forces applications to split larger
payloads into chunks that may arrive out of order and need reassembly.
"""

from __future__ import annotations

from typing import List

__all__ = ["segment", "Reassembler"]


def segment(nbytes: int, mtu: int) -> List[int]:
    """Split a payload into MTU-sized chunk lengths (last may be short)."""
    if nbytes < 0:
        raise ValueError("negative payload size")
    if mtu <= 0:
        raise ValueError("mtu must be positive")
    if nbytes == 0:
        return [0]
    full, rem = divmod(nbytes, mtu)
    chunks = [mtu] * full
    if rem:
        chunks.append(rem)
    return chunks


class Reassembler:
    """Reassembles out-of-order UD chunks into complete messages.

    Each message carries ``(msg_id, chunk_idx, n_chunks)``; the
    reassembler buffers chunks until a message is complete, then releases
    it.  This is exactly the application-side burden the paper notes UD
    imposes (Table 1 caption).
    """

    def __init__(self):
        self._partial = {}
        self.completed = 0

    def add(self, msg_id: int, chunk_idx: int, n_chunks: int, payload=None):
        """Feed one chunk; returns the full chunk list if complete."""
        if n_chunks <= 0 or not 0 <= chunk_idx < n_chunks:
            raise ValueError("bad chunk coordinates")
        if n_chunks == 1:
            self.completed += 1
            return [payload]
        chunks = self._partial.setdefault(msg_id, {})
        if chunk_idx in chunks:
            raise ValueError("duplicate chunk %d of message %d" % (chunk_idx, msg_id))
        chunks[chunk_idx] = payload
        if len(chunks) == n_chunks:
            del self._partial[msg_id]
            self.completed += 1
            return [chunks[i] for i in range(n_chunks)]
        return None

    @property
    def pending(self) -> int:
        return len(self._partial)
