"""Packetization helpers.

The simulator moves whole messages, but wire costs are charged per MTU
packet; and UD (4 KB MTU, Table 1) forces applications to split larger
payloads into chunks that may arrive out of order and need reassembly.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["segment", "Reassembler"]


def segment(nbytes: int, mtu: int) -> List[int]:
    """Split a payload into MTU-sized chunk lengths (last may be short)."""
    if nbytes < 0:
        raise ValueError("negative payload size")
    if mtu <= 0:
        raise ValueError("mtu must be positive")
    if nbytes == 0:
        return [0]
    full, rem = divmod(nbytes, mtu)
    chunks = [mtu] * full
    if rem:
        chunks.append(rem)
    return chunks


class Reassembler:
    """Reassembles out-of-order UD chunks into complete messages.

    Each message carries ``(msg_id, chunk_idx, n_chunks)``; the
    reassembler buffers chunks until a message is complete, then releases
    it.  This is exactly the application-side burden the paper notes UD
    imposes (Table 1 caption).

    Under loss a message may never complete, so partial state must not
    accumulate forever: callers pass the arrival time (``now``) with each
    chunk and periodically :meth:`expire` stragglers, or :meth:`drop` a
    message they have given up on (e.g. after an RPC timeout).
    """

    def __init__(self):
        #: msg_id -> {chunk_idx: payload}.
        self._partial = {}
        #: msg_id -> (payload bytes buffered, last-arrival time).
        self._meta = {}
        self.completed = 0
        #: Messages abandoned via :meth:`expire` / :meth:`drop`.
        self.expired = 0

    def add(self, msg_id: int, chunk_idx: int, n_chunks: int, payload=None,
            nbytes: int = 0, now: float = 0.0):
        """Feed one chunk; returns the full chunk list if complete.

        ``nbytes``/``now`` feed the leak accounting (buffered payload
        bytes and the staleness clock for :meth:`expire`); legacy callers
        that track neither can omit them.
        """
        if n_chunks <= 0 or not 0 <= chunk_idx < n_chunks:
            raise ValueError("bad chunk coordinates")
        if n_chunks == 1:
            self.completed += 1
            return [payload]
        chunks = self._partial.setdefault(msg_id, {})
        if chunk_idx in chunks:
            raise ValueError("duplicate chunk %d of message %d" % (chunk_idx, msg_id))
        chunks[chunk_idx] = payload
        buffered, _ = self._meta.get(msg_id, (0, 0.0))
        self._meta[msg_id] = (buffered + max(nbytes, 0), now)
        if len(chunks) == n_chunks:
            del self._partial[msg_id]
            del self._meta[msg_id]
            self.completed += 1
            return [chunks[i] for i in range(n_chunks)]
        return None

    def drop(self, msg_id: int) -> bool:
        """Discard one incomplete message; True if it was pending."""
        if self._partial.pop(msg_id, None) is None:
            return False
        self._meta.pop(msg_id, None)
        self.expired += 1
        return True

    def expire(self, now: float, timeout_ns: float) -> int:
        """Discard every partial message idle longer than ``timeout_ns``.

        Returns the number of messages expired.  Idle means no chunk
        arrived since ``now - timeout_ns``; a message still receiving
        chunks is never expired regardless of age.
        """
        stale = [msg_id for msg_id, (_, last) in self._meta.items()
                 if now - last > timeout_ns]
        for msg_id in stale:
            self.drop(msg_id)
        return len(stale)

    @property
    def pending(self) -> int:
        return len(self._partial)

    @property
    def pending_bytes(self) -> int:
        """Payload bytes buffered across all incomplete messages."""
        return sum(buffered for buffered, _ in self._meta.values())
