"""Hybrid fidelity controller: spend packet-level fidelity at hotspots.

In ``--fidelity hybrid`` the fabric asks this controller, per transfer,
which transport model the destination's egress port should use.  Cold
ports ride the fluid fast path (:class:`repro.net.flow.FluidModel`);
a port showing *heat* — queue depth approaching the ECN knee, fresh
ECN marks / PFC pauses / tail drops, or QP-cache thrash saturating the
destination NIC's PCIe link — is **demoted** to the stepped
:class:`repro.net.transport.PacketModel`, where the nonlinear machinery
(Bernoulli ECN, pause propagation, slot-limited PCIe) actually runs.
Once a demoted port has stayed quiet for ``promote_quiet_ns`` it is
**promoted** back to fluid (hysteresis, so a port flapping around a
threshold doesn't oscillate every message).

Transitions are observable three ways: the ``fidelity.demotions`` /
``fidelity.promotions`` counters (anomaly-visible like any counter
source), the ``fidelity.demoted_ports`` gauge, and
:meth:`FidelityController.snapshot` for reports.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from ..config import FidelityConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fabric import Fabric, Node
    from .transport import TransportModel

__all__ = ["FidelityController", "PortFidelity"]


class PortFidelity:
    """Demotion state for one egress port."""

    __slots__ = ("demoted", "hot_until", "demotions", "promotions",
                 "last_marks", "last_pauses", "last_drops")

    def __init__(self):
        self.demoted = False
        #: Earliest virtual time a demoted port may promote back.
        self.hot_until = 0.0
        self.demotions = 0
        self.promotions = 0
        # High-water marks of the port's heat counters at the last
        # check; any growth since is fresh heat.
        self.last_marks = 0
        self.last_pauses = 0
        self.last_drops = 0


class FidelityController:
    """Per-egress-port packet/fluid arbitration with hysteresis."""

    def __init__(self, fabric: "Fabric", cfg: FidelityConfig,
                 packet: "TransportModel", fluid: "TransportModel"):
        self.fabric = fabric
        self.sim = fabric.sim
        self.cfg = cfg
        self.packet = packet
        self.fluid = fluid
        self.ports: Dict[str, PortFidelity] = {}
        self.demotions = 0
        self.promotions = 0
        congestion = fabric.congestion
        #: Depth at which a port is hot, as a fraction of the ECN knee —
        #: by default demotion happens right where marking would start,
        #: so the stepped model owns every marked message.
        self._demote_depth = (congestion.ecn_kmin_bytes
                              * cfg.demote_depth_frac)
        metrics = fabric.sim.metrics
        self._m_demotions = metrics.counter("fidelity.demotions")
        self._m_promotions = metrics.counter("fidelity.promotions")
        if metrics.enabled:
            metrics.gauge(
                "fidelity.demoted_ports",
                fn=lambda: sum(1 for st in self.ports.values()
                               if st.demoted))

    def _state_for(self, dst_name: str) -> PortFidelity:
        st = self.ports.get(dst_name)
        if st is None:
            st = PortFidelity()
            self.ports[dst_name] = st
        return st

    def _is_hot(self, dst: "Node", st: PortFidelity, now: float) -> bool:
        switch = self.fabric.switch
        if switch is not None:
            port = switch.ports.get(dst.name)
            if port is not None:
                fresh = (port.ecn_marks > st.last_marks
                         or port.pause_events > st.last_pauses
                         or port.dropped_msgs > st.last_drops)
                st.last_marks = port.ecn_marks
                st.last_pauses = port.pause_events
                st.last_drops = port.dropped_msgs
                if fresh or port.depth_bytes(now) >= self._demote_depth:
                    return True
        # QP-cache thrash: the destination NIC's PCIe link saturating on
        # state fetches is exactly the regime the stepped slot model was
        # calibrated for.  Check both the stepped signal (busy slots
        # plus the queue behind them) and the fluid backlog clock,
        # whichever path has been running.
        pcie = dst.rnic.pcie
        thrash = dst.rnic.cfg.miss_slots * self.cfg.thrash_outstanding_frac
        if pcie.outstanding + pcie.queued >= thrash:
            return True
        return pcie._fluid_queue_ns >= (pcie.read_latency_ns
                                        * self.cfg.thrash_outstanding_frac)

    def model_for(self, dst: "Node") -> "TransportModel":
        """The transport model ``dst``'s egress port should use now."""
        now = self.sim.now
        st = self._state_for(dst.name)
        if self._is_hot(dst, st, now):
            st.hot_until = now + self.cfg.promote_quiet_ns
            if not st.demoted:
                st.demoted = True
                st.demotions += 1
                self.demotions += 1
                self._m_demotions.inc()
            return self.packet
        if st.demoted and now >= st.hot_until:
            st.demoted = False
            st.promotions += 1
            self.promotions += 1
            self._m_promotions.inc()
        return self.packet if st.demoted else self.fluid

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "demotions": self.demotions,
            "promotions": self.promotions,
            "demoted_ports": sorted(
                name for name, st in self.ports.items() if st.demoted),
            "ports": {
                name: {
                    "demoted": st.demoted,
                    "demotions": st.demotions,
                    "promotions": st.promotions,
                }
                for name, st in sorted(self.ports.items())
                if st.demotions
            },
        }
