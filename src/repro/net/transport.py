"""Pluggable transport models for :class:`repro.net.fabric.Fabric`.

``Fabric.transfer`` owns the message-level bookkeeping (metrics, the
in-flight occupancy slot, delivered/dropped ledgers live on the fabric)
and delegates the actual time evolution of one message to a
:class:`TransportModel`:

* :class:`PacketModel` — the calibrated stepped pipeline the figure
  baselines were built against: tx_process → loss gauntlet →
  ``switch.traverse`` → propagation → rx_process, each stage a real
  event (or several).  This is the default and is byte-identical to the
  pre-refactor inlined code.
* :class:`repro.net.flow.FluidModel` — the analytic fast path: the same
  ledgers and counters, but an uncontended transfer completes in O(1)
  dispatched events.

The hybrid mode (:mod:`repro.net.fidelity`) picks between the two per
egress port, demoting hot ports to the packet model where behaviour is
nonlinear (ECN, PFC, tail drop under incast) and keeping everything
else fluid.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, TYPE_CHECKING

from ..obs.span import Span
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fabric import Fabric, Node

__all__ = ["TransportModel", "PacketModel"]


class TransportModel:
    """One way of advancing a message through the fabric.

    Subclasses implement :meth:`pipeline`, a process that moves
    ``nbytes`` from ``src`` to ``dst`` and returns True when delivered,
    False when dropped — exactly the contract of ``Fabric.transfer``,
    which handles everything model-independent before delegating here.
    """

    #: Short tag used in scorecard metadata and fidelity snapshots.
    kind = "abstract"

    def __init__(self, fabric: "Fabric"):
        self.fabric = fabric

    def pipeline(
        self,
        src: "Node",
        dst: "Node",
        nbytes: int,
        wire_bytes: int,
        n_packets: int,
        src_qpn: int,
        dst_qpn: int,
        rkeys: Iterable[int],
        reliable: bool,
        jitter_ns: float,
        span: Optional[Span],
    ) -> Generator[Event, None, bool]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class PacketModel(TransportModel):
    """The stepped per-message pipeline (the calibrated default)."""

    kind = "packet"

    def pipeline(
        self,
        src: "Node",
        dst: "Node",
        nbytes: int,
        wire_bytes: int,
        n_packets: int,
        src_qpn: int,
        dst_qpn: int,
        rkeys: Iterable[int],
        reliable: bool,
        jitter_ns: float,
        span: Optional[Span],
    ) -> Generator[Event, None, bool]:
        fab = self.fabric
        sim = fab.sim
        yield from src.rnic.tx_process(nbytes, src_qpn, rkeys, span=span)
        delay = fab.cfg.propagation_ns + src.rnic.cfg.base_latency_ns
        if jitter_ns > 0:
            delay += fab.rng.random() * jitter_ns
        if fab.loss_prob > 0:
            # Loss is per packet: a multi-MTU message runs the gauntlet
            # once per MTU, so large transfers are proportionally more
            # exposed.  Any lost packet kills an unreliable message; RC
            # retransmits each lost packet individually.
            lost = sum(1 for _ in range(n_packets)
                       if fab.rng.random() < fab.loss_prob)
            if lost:
                if not reliable:
                    fab.messages_dropped += 1
                    if fab._obs:
                        fab._m_drops.inc()
                    return False
                # RNIC-level retransmissions: invisible to software.
                delay += fab.retransmit_ns * lost
                if fab._obs:
                    fab._m_retransmits.inc(lost)
        marked = False
        if fab.switch is not None:
            while True:
                accepted, marked = yield from fab.switch.traverse(
                    src.name, dst.name, wire_bytes, span=span)
                if accepted:
                    break
                if not reliable:
                    fab.messages_dropped += 1
                    if fab._obs:
                        fab._m_drops.inc()
                    return False
                # Tail drop on RC: hardware go-back-N resubmits the
                # message after the retransmission timeout.
                if fab._obs:
                    fab._m_retransmits.inc()
                yield sim.timeout(fab.retransmit_ns)
        if span is not None:
            span.add_phase("propagation", sim.now, sim.now + delay)
            span.wait("propagation", sim.now, sim.now + delay)
        yield sim.timeout(delay)
        yield from dst.rnic.rx_process(nbytes, dst_qpn, rkeys, span=span)
        fab.messages_delivered += 1
        if marked and reliable and fab.dcqcn_active:
            # The receiver's CNP generator notifies the marked flow.
            sim.spawn(fab._deliver_cnp(src.name, src_qpn), name="cnp")
        return True
