"""DCQCN-style per-QP rate limiter (Zhu et al., SIGCOMM 2015).

The sender side of the congestion subsystem: each RC QP that crosses the
switch owns a :class:`DcqcnState`.  ECN marks observed at the egress port
return to the sender as CNPs (one propagation delay later, modelling the
receiver's notification path) and cut the QP's sending rate; in CNP-free
periods the rate climbs back through the protocol's three stages — fast
recovery toward the pre-cut target, then additive increase, then hyper
increase — until it reaches line rate again.

Two simplifications keep this deterministic and cheap inside the DES:

* Rate increase is *time-driven on demand*: instead of a background
  timer process per QP, :meth:`send_delay` first applies however many
  recovery intervals elapsed since the last CNP.  The trajectory is
  identical to a timer-driven implementation because nothing else
  observes the rate between sends.
* A QP at line rate is **not** paced at all (``send_delay`` returns 0
  without advancing the pacing clock).  The NIC's ``tx_port`` already
  serializes at link rate, so pacing an unthrottled QP would
  double-charge serialization; pacing only engages after the first cut.

Timer constants live in :class:`repro.config.CongestionConfig`, scaled to
the simulator's sub-millisecond measurement windows (real DCQCN uses
~55 µs timers over seconds-long experiments).
"""

from __future__ import annotations

from ...config import CongestionConfig

__all__ = ["DcqcnState"]


class DcqcnState:
    """Rate-limiter state for one (node, QP) flow."""

    __slots__ = (
        "cfg", "line_rate", "rc", "rt", "alpha",
        "cnps", "rate_cuts", "_last_cut", "_recovery_stage",
        "_stage_clock", "_next_allowed", "throttle_ns",
    )

    def __init__(self, cfg: CongestionConfig, line_rate: float):
        self.cfg = cfg
        self.line_rate = line_rate
        #: Current sending rate (bytes/ns) and the recovery target.
        self.rc = line_rate
        self.rt = line_rate
        #: EWMA congestion estimate; meaningful only after the first CNP.
        self.alpha = 1.0
        self.cnps = 0
        self.rate_cuts = 0
        self._last_cut = -float("inf")
        self._recovery_stage = 0
        #: Reference time for counting elapsed recovery intervals.
        self._stage_clock = 0.0
        #: Earliest time the next message may start under pacing.
        self._next_allowed = 0.0
        #: Total pacing delay imposed (ns) — exported for reporting.
        self.throttle_ns = 0.0

    @property
    def throttled(self) -> bool:
        return self.rc < self.line_rate

    # -- CNP reaction ------------------------------------------------------

    def on_cnp(self, now: float) -> None:
        """React to one congestion notification."""
        self.cnps += 1
        g = self.cfg.dcqcn_g
        self.alpha = (1.0 - g) * self.alpha + g
        # Rate cuts are gated so a burst of CNPs from one RTT's worth of
        # marked packets counts as a single congestion event.
        if now - self._last_cut >= self.cfg.dcqcn_rate_decrease_interval_ns:
            self.rt = self.rc
            self.rc = max(self.cfg.dcqcn_min_rate_bytes_per_ns,
                          self.rc * (1.0 - self.alpha / 2.0))
            self.rate_cuts += 1
            self._last_cut = now
            self._recovery_stage = 0
            self._stage_clock = now

    # -- recovery ----------------------------------------------------------

    def maybe_increase(self, now: float) -> None:
        """Apply all recovery stages whose interval has elapsed."""
        if not self.throttled:
            return
        interval = self.cfg.dcqcn_recovery_interval_ns
        g = self.cfg.dcqcn_g
        while now - self._stage_clock >= interval:
            self._stage_clock += interval
            self._recovery_stage += 1
            self.alpha *= (1.0 - g)
            if self._recovery_stage <= self.cfg.dcqcn_fast_recovery_steps:
                # Fast recovery: converge halfway to the target.
                self.rc = (self.rc + self.rt) / 2.0
            elif self._recovery_stage <= 2 * self.cfg.dcqcn_fast_recovery_steps:
                self.rt = min(self.line_rate,
                              self.rt + self.cfg.dcqcn_rate_ai_bytes_per_ns)
                self.rc = (self.rc + self.rt) / 2.0
            else:
                self.rt = min(self.line_rate,
                              self.rt + self.cfg.dcqcn_rate_hai_bytes_per_ns)
                self.rc = (self.rc + self.rt) / 2.0
            if self.rc >= self.line_rate * (1.0 - 1e-9):
                self.rc = self.line_rate
                self.rt = self.line_rate
                return

    # -- pacing ------------------------------------------------------------

    def clearance(self, now: float) -> float:
        """Time until the paced flow may start its next message.

        A *peek* for upper layers that can use the wait productively:
        FLock's leader holds the doorbell for this long while followers
        keep piling into the combining queue, so coalescing deepens
        under congestion instead of collapsing with throughput.  Does
        not consume pacing budget — the eventual :meth:`send_delay` at
        post time (then ~0) does.
        """
        self.maybe_increase(now)
        if not self.throttled:
            return 0.0
        delay = max(0.0, self._next_allowed - now)
        self.throttle_ns += delay
        return delay

    def send_delay(self, nbytes: float, now: float) -> float:
        """Pacing delay before ``nbytes`` may start transmitting.

        Returns 0 (and leaves the pacing clock untouched) while the QP
        is at line rate — see module docstring.
        """
        self.maybe_increase(now)
        if not self.throttled:
            return 0.0
        start = max(now, self._next_allowed)
        self._next_allowed = start + nbytes / self.rc
        delay = start - now
        self.throttle_ns += delay
        return delay

    def snapshot(self) -> dict:
        return {
            "rate_bytes_per_ns": round(self.rc, 6),
            "target_bytes_per_ns": round(self.rt, 6),
            "alpha": round(self.alpha, 6),
            "cnps": self.cnps,
            "rate_cuts": self.rate_cuts,
            "throttle_ns": round(self.throttle_ns, 1),
        }
