"""Switched-fabric congestion subsystem.

Models the fabric dynamics the contention-free :class:`~repro.net.fabric
.Fabric` abstracts away: finite per-egress-port switch buffers
(:mod:`~repro.net.congestion.switch`), RED/ECN marking, DCQCN per-QP
rate control (:mod:`~repro.net.congestion.dcqcn`), and optional PFC with
head-of-line blocking.  Enabled per run via
:class:`repro.config.CongestionConfig` (default off — committed figure
baselines are calibrated against the point-to-point model).
"""

from .dcqcn import DcqcnState
from .switch import Switch, SwitchPort

__all__ = ["DcqcnState", "Switch", "SwitchPort"]
