"""Output-queued switch model: per-egress-port buffers, ECN, PFC.

The paper's testbed (§8.1) is 24 nodes behind one 100 Gbps switch.  The
baseline :class:`~repro.net.fabric.Fabric` treats that switch as a wire:
every transfer sees an idle path, so N senders targeting one receiver
overlap for free and coalescing's fabric-side win (fewer packets →
shallower queues) is invisible.  This module adds the missing layer:

* one :class:`SwitchPort` per destination node, with a finite output
  buffer served FIFO at link rate.  Service is bookkept with virtual
  finish times — the port drains at exactly ``rate`` bytes/ns whenever
  backlogged, so the instantaneous queue depth is
  ``(busy_until - now) * rate`` with no per-byte events.  The switch is
  cut-through like the baseline model (``propagation_ns`` already covers
  one traversal): an arriving message is charged only the *queueing*
  delay behind earlier arrivals, while its own serialization occupies
  the port for those behind it.
* **ECN marking** on enqueue, RED-style: the mark probability ramps
  linearly from 0 at ``ecn_kmin_bytes`` of depth to ``ecn_pmax`` at
  ``ecn_kmax_bytes`` and is 1 beyond — below Kmin traffic is never
  marked, which the unit tests pin down.  Marks on reliable transport
  become CNPs to the sender's DCQCN limiter (see
  :mod:`repro.net.congestion.dcqcn`).
* **tail drop** past the buffer when PFC is off (RC absorbs it as a
  hardware retransmission, UD surfaces a drop), or **PFC** when on: a
  port crossing XOFF pauses every *source node* feeding it, and a paused
  source is blocked for **all** destinations — the head-of-line blocking
  that makes lossless RoCE fabrics fragile under incast.  PFC never
  drops; the buffer stretches into headroom for messages already past
  their pause check.

Every blocking interaction records a typed wait edge (``switch_queue``,
``pfc_pause``) on the carried span for critical-path attribution, and
the structural per-port counters are cross-checked end-of-run by the
``switch`` auditor in :mod:`repro.obs.audit`.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, Optional, Tuple

from ...config import CongestionConfig, NetConfig
from ...obs.span import Span
from ...sim import Event, Simulator

__all__ = ["Switch", "SwitchPort"]


class SwitchPort:
    """One egress port: finite output queue served at link rate."""

    __slots__ = (
        "name", "rate", "busy_until",
        "offered_msgs", "offered_bytes", "accepted_msgs", "accepted_bytes",
        "dropped_msgs", "dropped_bytes", "ecn_marks", "pause_events",
        "peak_depth_bytes", "queue_wait_ns", "paused", "resume_ev",
        "mark_debt",
    )

    def __init__(self, name: str, rate: float):
        self.name = name
        self.rate = rate
        #: Virtual time the last accepted byte finishes serializing.
        self.busy_until = 0.0
        self.offered_msgs = 0
        self.offered_bytes = 0
        self.accepted_msgs = 0
        self.accepted_bytes = 0
        self.dropped_msgs = 0
        self.dropped_bytes = 0
        self.ecn_marks = 0
        #: Times this port asserted XOFF (PFC mode).
        self.pause_events = 0
        self.peak_depth_bytes = 0.0
        #: Cumulative queueing delay charged to arrivals (ns).
        self.queue_wait_ns = 0.0
        self.paused = False
        self.resume_ev: Optional[Event] = None
        #: Fluid-model ECN accumulator: RED mark probabilities add up
        #: here and emit a deterministic mark each time the debt crosses
        #: 1, so fluid mark *rates* match the stepped expectation with
        #: no RNG draws.
        self.mark_debt = 0.0

    def depth_bytes(self, now: float) -> float:
        """Instantaneous output-queue occupancy.

        Exact for a work-conserving FIFO draining at ``rate``: the
        backlog in bytes is the remaining busy time times the rate.
        """
        return max(0.0, (self.busy_until - now) * self.rate)

    def served_bytes(self, now: float) -> float:
        """Bytes fully serialized out of the port so far."""
        return self.accepted_bytes - self.depth_bytes(now)

    def utilization(self, now: float) -> float:
        """Fraction of elapsed time the port spent serializing."""
        return self.served_bytes(now) / (self.rate * max(now, 1.0))


class Switch:
    """Per-destination egress ports plus the PFC pause machinery."""

    def __init__(self, sim: Simulator, net: NetConfig, cfg: CongestionConfig,
                 seed: int = 0):
        self.sim = sim
        self.net = net
        self.cfg = cfg
        self.rate = net.bandwidth_bytes_per_ns
        #: ECN draws come from a dedicated stream so enabling the switch
        #: never perturbs the fabric's loss/jitter RNG sequence.
        self.rng = random.Random(seed ^ 0x5317C4)
        self.ports: Dict[str, SwitchPort] = {}
        #: src node -> {port name: resume event} while PFC-paused.
        self._paused_srcs: Dict[str, Dict[str, Event]] = {}
        metrics = sim.metrics
        self._m_msgs = metrics.counter("switch.msgs")
        self._m_bytes = metrics.counter("switch.bytes")
        self._m_drops = metrics.counter("switch.drops")
        self._m_marks = metrics.counter("switch.ecn_marks")
        self._m_pauses = metrics.counter("switch.pfc_pauses")
        self._m_resumes = metrics.counter("switch.pfc_resumes")
        self._m_queue_ns = metrics.counter("switch.queue_ns")
        self._metrics = metrics
        #: Occupancy tracker (cost observatory); cached like the
        #: components' ``_obs`` so the off path is one ``is None`` test.
        self._occ = sim.occupancy
        sim.register_component(self)

    # -- ports -----------------------------------------------------------

    def port_for(self, dst_name: str) -> SwitchPort:
        port = self.ports.get(dst_name)
        if port is None:
            port = SwitchPort(dst_name, self.rate)
            self.ports[dst_name] = port
            if self._metrics.enabled:
                # Per-port gauges, sampled only at snapshot time.
                self._metrics.gauge(
                    "switch.port_depth",
                    fn=lambda p=port: p.depth_bytes(self.sim.now),
                    port=dst_name)
                self._metrics.gauge(
                    "switch.port_utilization",
                    fn=lambda p=port: p.utilization(self.sim.now),
                    port=dst_name)
        return port

    @property
    def total_drops(self) -> int:
        return sum(p.dropped_msgs for p in self.ports.values())

    @property
    def total_ecn_marks(self) -> int:
        return sum(p.ecn_marks for p in self.ports.values())

    @property
    def total_pause_events(self) -> int:
        return sum(p.pause_events for p in self.ports.values())

    def peak_depth_bytes(self) -> float:
        return max((p.peak_depth_bytes for p in self.ports.values()),
                   default=0.0)

    # -- PFC pause propagation -------------------------------------------

    def is_paused(self, src_name: str) -> bool:
        blocks = self._paused_srcs.get(src_name)
        if not blocks:
            return False
        live = {k: ev for k, ev in blocks.items() if not ev.triggered}
        if live:
            self._paused_srcs[src_name] = live
            return True
        del self._paused_srcs[src_name]
        return False

    def _assert_pause(self, port: SwitchPort, src_name: str) -> Event:
        """XOFF ``src_name`` until ``port`` drains below XON."""
        if port.resume_ev is None:
            port.paused = True
            port.pause_events += 1
            self._m_pauses.inc()
            port.resume_ev = Event(self.sim)
            self.sim.spawn(self._resume_watch(port), name="pfc-resume")
        ev = port.resume_ev
        self._paused_srcs.setdefault(src_name, {})[port.name] = ev
        return ev

    def _resume_watch(self, port: SwitchPort) -> Generator[Event, None, None]:
        """XON once the backlog decays to the resume threshold.

        While a port is paused every new arrival is held at its pause
        check, so ``busy_until`` cannot grow — but the loop re-checks
        anyway in case thresholds make the crossing time move.
        """
        while True:
            target = port.busy_until - self.cfg.pfc_xon_bytes / self.rate
            if target <= self.sim.now:
                break
            yield self.sim.timeout(target - self.sim.now)
        port.paused = False
        self._m_resumes.inc()
        ev, port.resume_ev = port.resume_ev, None
        if ev is not None and not ev.triggered:
            ev.succeed()

    def ingress_wait(self, src_name: str,
                     span: Optional[Span] = None
                     ) -> Generator[Event, None, None]:
        """Block while ``src_name`` is PFC-paused by *any* egress port.

        This is the head-of-line blocking: a source paused because one
        of its flows feeds a congested port cannot transmit to idle
        destinations either.  The wait is recorded as an open
        ``pfc_pause`` edge so senders still paused at end of run keep
        their in-flight blocked time.
        """
        while self.is_paused(src_name):
            evs = [ev for ev in self._paused_srcs[src_name].values()
                   if not ev.triggered]
            if not evs:
                continue
            if span is not None:
                span.wait_begin("pfc_pause", self.sim.now)
            yield self.sim.all_of(evs)
            if span is not None:
                span.wait_end("pfc_pause", self.sim.now)

    # -- the egress hop ---------------------------------------------------

    def _mark_probability(self, depth: float) -> float:
        cfg = self.cfg
        if depth < cfg.ecn_kmin_bytes:
            return 0.0
        if depth >= cfg.ecn_kmax_bytes:
            return 1.0
        span = max(cfg.ecn_kmax_bytes - cfg.ecn_kmin_bytes, 1)
        return cfg.ecn_pmax * (depth - cfg.ecn_kmin_bytes) / span

    def traverse(self, src_name: str, dst_name: str, wire_bytes: int,
                 span: Optional[Span] = None
                 ) -> Generator[Event, None, Tuple[bool, bool]]:
        """Carry one message through the egress port toward ``dst_name``.

        Returns ``(accepted, ecn_marked)``.  ``accepted`` is False only
        on tail drop (PFC off, buffer full); the caller decides whether
        that is a retransmission (RC) or a loss (UD).
        """
        yield from self.ingress_wait(src_name, span)
        port = self.port_for(dst_name)
        if self.cfg.pfc:
            # XOFF at arrival: above the pause threshold nothing more
            # enters this port; the source blocks for all destinations.
            while port.paused or port.depth_bytes(self.sim.now) \
                    >= self.cfg.pfc_xoff_bytes:
                ev = self._assert_pause(port, src_name)
                if span is not None:
                    span.wait_begin("pfc_pause", self.sim.now)
                yield ev
                if span is not None:
                    span.wait_end("pfc_pause", self.sim.now)
                yield from self.ingress_wait(src_name, span)
        now = self.sim.now
        depth = port.depth_bytes(now)
        port.offered_msgs += 1
        port.offered_bytes += wire_bytes
        if not self.cfg.pfc and depth + wire_bytes > self.cfg.buffer_bytes:
            port.dropped_msgs += 1
            port.dropped_bytes += wire_bytes
            self._m_drops.inc()
            return False, False
        marked = False
        p = self._mark_probability(depth)
        if p >= 1.0 or (p > 0.0 and self.rng.random() < p):
            marked = True
            port.ecn_marks += 1
            self._m_marks.inc()
        wait = max(0.0, port.busy_until - now)
        port.busy_until = now + wait + wire_bytes / self.rate
        port.accepted_msgs += 1
        port.accepted_bytes += wire_bytes
        self._m_msgs.inc()
        self._m_bytes.inc(wire_bytes)
        depth_after = depth + wire_bytes
        if depth_after > port.peak_depth_bytes:
            port.peak_depth_bytes = depth_after
        if self._occ is not None:
            # The message's own serialization occupies the port from the
            # moment the backlog clears until its last byte is out.
            self._occ.busy("switch.port.%s" % dst_name, now + wait,
                           port.busy_until)
            self._occ.sample("switch.depth.%s" % dst_name, now,
                             depth_after, capacity=self.cfg.buffer_bytes)
        if wait > 0:
            port.queue_wait_ns += wait
            self._m_queue_ns.inc(wait)
            if span is not None:
                span.add_phase("switch_queue", now, now + wait)
                span.wait("switch_queue", now, now + wait)
            yield self.sim.timeout(wait)
        return True, marked

    def offer(self, src_name: str, dst_name: str, wire_bytes: int,
              span: Optional[Span] = None) -> Tuple[bool, bool, float]:
        """Analytic twin of :meth:`traverse` for the fluid transport
        model: same per-port ledgers and counters, no events.

        Returns ``(accepted, ecn_marked, queue_wait_ns)``; the caller
        folds the queueing delay into its one analytic timeout.  Tail
        drop stays deterministic (depth past the buffer), ECN marking is
        expected-value accounting via ``mark_debt``, and PFC pause
        assertion stays with the stepped path — the hybrid controller
        demotes a port long before it pauses, and accepted bytes still
        stretch the buffer exactly like stepped messages past their
        pause check.
        """
        now = self.sim.now
        port = self.port_for(dst_name)
        depth = port.depth_bytes(now)
        port.offered_msgs += 1
        port.offered_bytes += wire_bytes
        if not self.cfg.pfc and depth + wire_bytes > self.cfg.buffer_bytes:
            port.dropped_msgs += 1
            port.dropped_bytes += wire_bytes
            self._m_drops.inc()
            return False, False, 0.0
        marked = False
        p = self._mark_probability(depth)
        if p > 0.0:
            port.mark_debt += p
            if port.mark_debt >= 1.0:
                port.mark_debt -= 1.0
                marked = True
                port.ecn_marks += 1
                self._m_marks.inc()
        wait = port.busy_until - now
        if wait < 0.0:
            wait = 0.0
        port.busy_until = now + wait + wire_bytes / self.rate
        port.accepted_msgs += 1
        port.accepted_bytes += wire_bytes
        self._m_msgs.inc()
        self._m_bytes.inc(wire_bytes)
        depth_after = depth + wire_bytes
        if depth_after > port.peak_depth_bytes:
            port.peak_depth_bytes = depth_after
        if self._occ is not None:
            self._occ.busy("switch.port.%s" % dst_name, now + wait,
                           port.busy_until)
            self._occ.sample("switch.depth.%s" % dst_name, now,
                             depth_after, capacity=self.cfg.buffer_bytes)
        if wait > 0:
            port.queue_wait_ns += wait
            self._m_queue_ns.inc(wait)
            if span is not None:
                span.add_phase("switch_queue", now, now + wait)
                span.wait("switch_queue", now, now + wait)
        return True, marked, wait

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        now = self.sim.now
        return {
            "ports": {
                name: {
                    "depth_bytes": round(p.depth_bytes(now), 1),
                    "peak_depth_bytes": round(p.peak_depth_bytes, 1),
                    "accepted_msgs": p.accepted_msgs,
                    "dropped_msgs": p.dropped_msgs,
                    "ecn_marks": p.ecn_marks,
                    "pause_events": p.pause_events,
                    "utilization": round(p.utilization(now), 4),
                }
                for name, p in sorted(self.ports.items())
            },
        }
