"""Simulation cost observatory: event census + host-time profiler.

The ROADMAP's scaling items (hybrid-fidelity fabric above all) rest on a
claim about the *simulator's own* cost structure: that packet-level
fabric events dominate both event volume and host wall-clock.  This
module measures that claim instead of assuming it.

Two instruments share one bucketing scheme:

* **Event census** — every dispatched event is attributed to the
  component that owns its callback (``fabric``, ``switch``, ``rnic``,
  ``pcie``, ``cq``, ``credits``, ``flock``, ``verbs``, ``kernel``,
  ``app``, ``timers``) and a callback *kind* (``process`` for generator
  resumes, ``callback`` for plain event callbacks, ``timer`` for bare
  timeouts, ``idle`` for events that fire with no listeners).  Counts
  are kept per virtual-time window over the measurement span, riding
  the same windowing math as :class:`repro.obs.windows.SloTimeline`
  (including the ``REPRO_SLO_WINDOWS`` knob), so census heatmaps line
  up column-for-column with SLO timelines and occupancy heatmaps.
* **Host-time profiler** — :meth:`repro.sim.core.Simulator.run_profiled`
  brackets every callback batch with ``perf_counter_ns`` and feeds the
  elapsed host nanoseconds into the same buckets, split by run phase
  (``warmup`` / ``measure`` / ``drain``).  Shares sum to 1 by
  construction; the folded-stack export feeds ``flamegraph.pl`` or
  speedscope directly.

Classification must not slow the loop down: a callback's owning
component is derived from its code object's filename and **memoized by
code object**, so steady state pays one dict hit per event.  Generator
resumes are special-cased — the interesting owner of a
:class:`~repro.sim.core.Process` resume is the *generator* being
resumed, not the kernel's ``_resume`` trampoline.

Everything here is opt-in (``REPRO_PROFILE=1`` or ``--profile``) and
touches neither virtual time nor RNG: a profiled run produces the exact
same simulation results as a plain one, just slower on the host.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from .windows import windows_per_run

__all__ = [
    "PROFILE_ENV",
    "SimProfile",
    "component_bucket",
    "profile_enabled",
]

#: Environment switch for the host-time profiler (``--profile`` sets it).
PROFILE_ENV = "REPRO_PROFILE"

_TRUTHY = ("1", "true", "yes", "on")


def profile_enabled(default: bool = False) -> bool:
    """True when ``REPRO_PROFILE`` is set truthy."""
    raw = os.environ.get(PROFILE_ENV)
    if raw is None:
        return default
    return raw.strip().lower() in _TRUTHY


def component_bucket(filename: str) -> str:
    """Map a code object's filename to its owning component bucket.

    The path segments after the ``repro`` package root decide the
    bucket; anything outside the package (tests, workloads, user code)
    is ``app``.
    """
    parts = filename.replace("\\", "/").split("/")
    idx = None
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            idx = i
            break
    if idx is None:
        return "app"
    sub = parts[idx + 1:]
    if not sub:
        return "other"
    head = sub[0]
    leaf = sub[-1]
    if head == "net":
        if len(sub) > 1 and sub[1] == "congestion":
            return "switch"
        if leaf.startswith("flow") or leaf.startswith("fidelity"):
            return "flow"
        return "fabric"
    if head == "hw":
        return "pcie" if leaf.startswith("pcie") else "rnic"
    if head == "verbs":
        return "cq" if leaf.startswith("cq") else "verbs"
    if head == "flock":
        return "credits" if leaf.startswith("credits") else "flock"
    if head == "sim":
        return "kernel"
    return "app"


class SimProfile:
    """Accumulator fed by :meth:`Simulator.run_profiled`.

    One instance spans a whole run (warmup + measure + drain); the
    census windows cover the measurement span ``[t0, t1)`` only, while
    host-time and phase totals cover everything dispatched.
    """

    def __init__(self, t0: float, t1: float,
                 n_windows: Optional[int] = None):
        if t1 <= t0:
            raise ValueError("empty profile measurement span")
        self.t0 = t0
        self.t1 = t1
        self.n_windows = n_windows if n_windows else windows_per_run()
        self.window_ns = (t1 - t0) / self.n_windows
        #: host ns per ``component;kind`` bucket.
        self.host_ns: Dict[str, int] = {}
        #: dispatched-event count per bucket (whole run).
        self.dispatched: Dict[str, int] = {}
        #: events left on the schedule at :meth:`finish` — scheduled but
        #: never dispatched (the run ended first).
        self.cancelled: Dict[str, int] = {}
        #: census: per measurement window, dispatch counts per bucket.
        self._census: Dict[int, Dict[str, int]] = {}
        self._phase_ns = {"warmup": 0, "measure": 0, "drain": 0}
        self._phase_events = {"warmup": 0, "measure": 0, "drain": 0}
        #: code object -> component bucket memo (the hot-path cache).
        self._code_bucket: Dict[Any, str] = {}
        self._finished = False

    # -- classification -------------------------------------------------

    def _bucket_of(self, code: Any) -> str:
        bucket = self._code_bucket.get(code)
        if bucket is None:
            bucket = component_bucket(code.co_filename)
            self._code_bucket[code] = bucket
        return bucket

    def classify(self, event: Any, callbacks: Optional[List[Any]]) -> str:
        """``component;kind`` bucket for one fired (or pending) event.

        Attribution follows the first callback — overwhelmingly the only
        one — because that is who the event wakes: a process resume is
        charged to the resumed generator's module, a plain callback to
        the function's module.  Class names are duck-typed to keep this
        module import-independent of the kernel.

        A process resume walks the generator's ``yield from`` chain to
        the *innermost* active frame: an app-spawned RPC blocked inside
        ``switch.traverse`` is switch cost, not app cost.  That is what
        makes "fabric-owned events" measurable — the datum the
        fluid-vs-packet bench gate compares.
        """
        if not callbacks:
            if type(event).__name__ == "Timeout":
                return "timers;timer"
            return "kernel;idle"
        cb = callbacks[0]
        owner = getattr(cb, "__self__", None)
        gen = getattr(owner, "gen", None)
        if gen is not None:
            sub = getattr(gen, "gi_yieldfrom", None)
            while sub is not None:
                if getattr(sub, "gi_code", None) is None:
                    break
                gen = sub
                sub = getattr(sub, "gi_yieldfrom", None)
            return self._bucket_of(gen.gi_code) + ";process"
        kind = "timer" if type(event).__name__ == "Timeout" else "callback"
        func = getattr(cb, "__func__", cb)
        code = getattr(func, "__code__", None)
        if code is None:
            return "other;" + kind
        return self._bucket_of(code) + ";" + kind

    # -- accounting (called from the instrumented loop) -----------------

    def account(self, event: Any, callbacks: Optional[List[Any]],
                dt_ns: int, now: float) -> None:
        """Charge one dispatched event: ``dt_ns`` host nanoseconds spent
        firing it at virtual time ``now``."""
        key = self.classify(event, callbacks)
        self.host_ns[key] = self.host_ns.get(key, 0) + dt_ns
        self.dispatched[key] = self.dispatched.get(key, 0) + 1
        if now < self.t0:
            phase = "warmup"
        elif now < self.t1:
            phase = "measure"
            idx = int((now - self.t0) / self.window_ns)
            if idx >= self.n_windows:  # float edge at t1
                idx = self.n_windows - 1
            win = self._census.get(idx)
            if win is None:
                win = self._census[idx] = {}
            win[key] = win.get(key, 0) + 1
        else:
            phase = "drain"
        self._phase_ns[phase] += dt_ns
        self._phase_events[phase] += 1

    def finish(self, sim: Any) -> None:
        """Census the schedule's leftovers as *cancelled* events.

        Called once after the profiled run: anything still sitting on
        the heap or the ready deque was scheduled but never dispatched.
        Idempotent.
        """
        if self._finished:
            return
        self._finished = True
        leftovers = [entry[2] for entry in sim._heap]
        leftovers.extend(sim._ready)
        for event in leftovers:
            key = self.classify(event, event.callbacks)
            self.cancelled[key] = self.cancelled.get(key, 0) + 1

    # -- reporting ------------------------------------------------------

    @property
    def total_host_ns(self) -> int:
        return sum(self.host_ns.values())

    @property
    def total_dispatched(self) -> int:
        return sum(self.dispatched.values())

    def dominant_component(self) -> Tuple[str, float]:
        """``(component, share)`` of the measurement-window census —
        the datum the hybrid-fidelity decision reads.  Falls back to
        whole-run dispatch counts when the measurement window saw no
        events."""
        by_comp: Dict[str, int] = {}
        for win in self._census.values():
            for key, n in win.items():
                comp = key.split(";", 1)[0]
                by_comp[comp] = by_comp.get(comp, 0) + n
        if not by_comp:
            for key, n in self.dispatched.items():
                comp = key.split(";", 1)[0]
                by_comp[comp] = by_comp.get(comp, 0) + n
        if not by_comp:
            return ("none", 0.0)
        total = sum(by_comp.values())
        comp = max(by_comp, key=lambda c: (by_comp[c], c))
        return (comp, by_comp[comp] / total)

    def folded(self) -> str:
        """Folded-stack export: ``sim;<component>;<kind> <host ns>``
        lines, via the same collapsed-stack renderer as
        :func:`repro.obs.causal.folded_stacks`."""
        from .causal import folded_lines
        weights = {"sim;" + key: float(ns)
                   for key, ns in self.host_ns.items()}
        return folded_lines(weights)

    def report(self) -> Dict[str, Any]:
        """The whole observatory as plain JSON-safe data.

        ``host.buckets[*].share`` sums to 1 (±1e-6) whenever any host
        time was recorded; census windows line up with the SLO
        timeline's."""
        total_ns = self.total_host_ns
        buckets = []
        for key in sorted(self.host_ns,
                          key=lambda k: (-self.host_ns[k], k)):
            ns = self.host_ns[key]
            comp, kind = key.split(";", 1)
            events = self.dispatched.get(key, 0)
            buckets.append({
                "component": comp,
                "kind": kind,
                "ns": ns,
                "share": (ns / total_ns) if total_ns else 0.0,
                "events": events,
                "ns_per_event": round(ns / events, 3) if events else 0.0,
            })
        phases = {}
        for name in ("warmup", "measure", "drain"):
            ns = self._phase_ns[name]
            events = self._phase_events[name]
            phases[name] = {
                "host_ns": ns,
                "events": events,
                "events_per_sec": round(events / (ns * 1e-9), 1) if ns else 0.0,
            }
        windows = []
        for idx in range(self.n_windows):
            win = self._census.get(idx, {})
            windows.append({
                "window": idx,
                "t0_ns": self.t0 + idx * self.window_ns,
                "t1_ns": self.t0 + (idx + 1) * self.window_ns,
                "events": sum(win.values()),
                "counts": {k: win[k] for k in sorted(win)},
            })
        scheduled = {}
        for key in set(self.dispatched) | set(self.cancelled):
            scheduled[key] = (self.dispatched.get(key, 0)
                              + self.cancelled.get(key, 0))
        dominant, dom_share = self.dominant_component()
        return {
            "t0_ns": self.t0,
            "t1_ns": self.t1,
            "window_ns": self.window_ns,
            "n_windows": self.n_windows,
            "host": {"total_ns": total_ns, "buckets": buckets},
            "phases": phases,
            "census": {
                "dispatched": self.total_dispatched,
                "cancelled": sum(self.cancelled.values()),
                "scheduled": sum(scheduled.values()),
                "by_bucket": {k: scheduled[k] for k in sorted(scheduled)},
                "dominant_component": dominant,
                "dominant_share": round(dom_share, 6),
                "windows": windows,
            },
        }
