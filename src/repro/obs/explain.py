"""Attribution-diff explanations: *why* a detected anomaly happened.

:mod:`repro.obs.anomaly` finds *where* a curve or timeline broke;
this module joins each anomaly to the causal attribution layer
(:mod:`repro.obs.causal`) to say *what changed*.  The core move is the
**attribution shift table**: take the critical-path attribution before
the anomaly and after it, and rank every resource by how much of the
blocked-time share it gained — ``pcie_stall 4% -> 61%`` is the whole
Fig. 2a story in one row.  The top riser also gets its what-if speedup
bound (how much of the loss removing that resource could recover, an
upper bound by construction).

Two join strategies, matching the two anomaly families:

* **Sweep anomalies** (cliffs/knees on an x-swept curve) are explained
  *across runs*: the pre-anomaly sweep point and the post-anomaly point
  each have their own per-run attribution block (the
  ``meta["attribution"]`` shape scorecards record — see
  :func:`attribution_blocks`), and the shift table diffs the two
  blocks.  This works both live (a telemetry in hand) and offline (a
  recorded scorecard), because the blocks are plain JSON.
* **Changepoint anomalies** (level shifts inside one run's timeline)
  are explained *within the run*: the run's critical paths are split at
  the changepoint's virtual time — paths finishing before it vs. after
  — and each half is attributed independently.  This needs live spans,
  so it is available from the ``explain`` CLI's live mode but not from
  a stored run (scorecards persist attribution tables, not spans).

Everything here is pure data-to-data: deterministic input order,
round-to-6 shares, no RNG, no wall clock — the ``explain`` CLI's output
is byte-identical across repeated runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .anomaly import Anomaly
from .causal import RESOURCES, attribute, what_if_all

__all__ = [
    "Explanation",
    "attribution_blocks",
    "shift_table",
    "top_shift",
    "explain_between",
    "explain_sweep_anomalies",
    "explain_changepoint",
    "format_explanation",
]

_RESOURCE_ORDER = {name: i for i, name in enumerate(RESOURCES)}


def _rank(resource: str) -> Tuple[int, str]:
    return (_RESOURCE_ORDER.get(resource, len(RESOURCES)), resource)


def attribution_blocks(telemetry) -> Dict[str, dict]:
    """Per-run attribution blocks from a live telemetry.

    Returns ``{run_label: {"paths", "shares", "what_if"}}`` — the exact
    shape scorecards persist as ``meta["attribution"]`` (see
    :func:`repro.harness.scorecards.attach_attribution`, which delegates
    here), so live and stored explanations consume the same data.
    Untraced runs (no finished critical paths) are omitted.  The
    unbounded what-if case (all blocked time on one resource) is
    represented as None — ``inf`` is not strict JSON.
    """
    blocks: Dict[str, dict] = {}
    if telemetry is None:
        return blocks
    for run_id in sorted(telemetry.spans.run_labels):
        label = telemetry.spans.run_labels[run_id]
        paths = telemetry.critical_paths(run=run_id)
        if not paths:
            continue
        table = attribute(paths)
        blocks[label] = {
            "paths": len(paths),
            "shares": {res: round(cell["share"], 6)
                       for res, cell in table.items()},
            "what_if": {res: (None if math.isinf(x) else round(x, 4))
                        for res, x in what_if_all(paths).items()},
        }
    return blocks


def shift_table(pre: Dict[str, float],
                post: Dict[str, float]) -> List[Dict[str, float]]:
    """Ranked resource-shift delta table between two share dicts.

    Rows are ``{"resource", "pre_share", "post_share", "delta"}`` over
    the union of resources, sorted by descending delta (``post - pre``,
    the share the resource *gained*), ties broken by canonical resource
    order.  The first row is the anomaly's prime suspect.
    """
    rows = []
    for resource in sorted(set(pre) | set(post), key=_rank):
        p, q = pre.get(resource, 0.0), post.get(resource, 0.0)
        rows.append({"resource": resource,
                     "pre_share": round(p, 6),
                     "post_share": round(q, 6),
                     "delta": round(q - p, 6)})
    rows.sort(key=lambda r: (-r["delta"],) + _rank(r["resource"]))
    return rows


def top_shift(shifts: Sequence[Dict[str, float]]) -> Optional[str]:
    """The resource that gained the most share (None when no row
    gained anything)."""
    if not shifts or shifts[0]["delta"] <= 0.0:
        return None
    return shifts[0]["resource"]


@dataclass
class Explanation:
    """One anomaly joined to its attribution diff, JSON-safe."""

    #: The anomaly being explained (its :meth:`Anomaly.to_dict` form).
    anomaly: Dict[str, Any]
    #: Labels of the attribution states being diffed ("rc-read qps=704"
    #: -> "rc-read qps=2816", or "<label> before/after window 5").
    pre_label: str
    post_label: str
    #: Ranked resource-shift rows (:func:`shift_table`).
    shifts: List[Dict[str, float]] = field(default_factory=list)
    #: The prime suspect (top gaining resource); None when nothing rose.
    top_resource: Optional[str] = None
    #: What-if speedup bound for the top resource in the *post* state;
    #: None when unbounded or unavailable.
    what_if_bound: Optional[float] = None
    #: Why an explanation is partial ("no attribution for ...").
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"anomaly": self.anomaly, "pre_label": self.pre_label,
                "post_label": self.post_label, "shifts": self.shifts,
                "top_resource": self.top_resource,
                "what_if_bound": self.what_if_bound, "note": self.note}


def explain_between(anomaly: Dict[str, Any], pre_label: str,
                    post_label: str,
                    blocks: Dict[str, dict]) -> Explanation:
    """Explain one anomaly as the attribution diff between two recorded
    blocks (``pre_label`` -> ``post_label``).  Missing blocks produce a
    partial explanation with a note rather than an error — a stored run
    may simply not have been traced."""
    pre = blocks.get(pre_label, {}).get("shares")
    post = blocks.get(post_label, {}).get("shares")
    if not pre or not post:
        missing = [lbl for lbl, blk in ((pre_label, pre), (post_label, post))
                   if not blk]
        return Explanation(
            anomaly=anomaly, pre_label=pre_label, post_label=post_label,
            note="no attribution recorded for %s" % ", ".join(missing))
    shifts = shift_table(pre, post)
    top = top_shift(shifts)
    bound = None
    if top is not None:
        bound = blocks.get(post_label, {}).get("what_if", {}).get(top)
    return Explanation(anomaly=anomaly, pre_label=pre_label,
                       post_label=post_label, shifts=shifts,
                       top_resource=top, what_if_bound=bound)


def explain_sweep_anomalies(anomalies: Sequence[Dict[str, Any]],
                            blocks: Dict[str, dict],
                            labels: Dict[str, str]) -> List[Explanation]:
    """Explain every sweep anomaly via pre-vs-post attribution blocks.

    ``labels`` maps the sweep's x values (as strings — the JSON-safe
    form scorecards store) to per-run attribution labels, e.g. ``{"704":
    "rc-read qps=704", "2816": "rc-read qps=2816"}``.  For each anomaly
    the pre point is the span's left edge and the post point is the
    anomaly's x.
    """
    out = []
    for data in anomalies:
        a = Anomaly.from_dict(data)
        pre_label = _label_for(labels, a.span[0])
        post_label = _label_for(labels, a.x)
        out.append(explain_between(data, pre_label, post_label, blocks))
    return out


def _label_for(labels: Dict[str, str], x: float) -> str:
    """The run label for sweep position ``x``; integers stored as
    "704" and floats stored as "704.0" both resolve."""
    for key in (str(x), str(int(x)) if float(x) == int(x) else None):
        if key is not None and key in labels:
            return labels[key]
    return str(x)


def explain_changepoint(anomaly: Dict[str, Any], paths,
                        label: str = "") -> Explanation:
    """Explain a within-run changepoint by splitting critical paths at
    the anomaly's virtual time.

    ``paths`` are the run's :class:`repro.obs.causal.CriticalPath`\\ s.
    Paths whose RPC finished at or before the changepoint window's start
    form the *pre* population, the rest the *post*; each side is
    attributed independently and diffed.  Needs at least one path on
    each side — a changepoint in the very first window has no "before"
    and yields a partial explanation.
    """
    t_split = float(anomaly.get("span", (anomaly.get("x", 0.0),))[0])
    pre_paths = [p for p in paths if p.span.t1 <= t_split]
    post_paths = [p for p in paths if p.span.t1 > t_split]
    pre_label = "%s before t=%gns" % (label or "run", t_split)
    post_label = "%s after t=%gns" % (label or "run", t_split)
    if not pre_paths or not post_paths:
        side = "before" if not pre_paths else "after"
        return Explanation(
            anomaly=anomaly, pre_label=pre_label, post_label=post_label,
            note="no critical paths finished %s the changepoint" % side)
    pre = {res: cell["share"] for res, cell in attribute(pre_paths).items()}
    post = {res: cell["share"] for res, cell in attribute(post_paths).items()}
    shifts = shift_table(pre, post)
    top = top_shift(shifts)
    bound = None
    if top is not None:
        x = what_if_all(post_paths).get(top)
        bound = None if x is None or math.isinf(x) else round(x, 4)
    return Explanation(anomaly=anomaly, pre_label=pre_label,
                       post_label=post_label, shifts=shifts,
                       top_resource=top, what_if_bound=bound)


def format_explanation(exp: Explanation, min_abs_delta: float = 0.005
                       ) -> str:
    """Human-readable explanation block.

    The anomaly headline, then the ranked shift table (resources whose
    share moved less than ``min_abs_delta`` are folded away), then the
    what-if bound for the prime suspect.
    """
    a = Anomaly.from_dict(exp.anomaly)
    lines = [str(a)]
    if a.detail:
        lines.append("  %s" % a.detail)
    if exp.note:
        lines.append("  (%s)" % exp.note)
        return "\n".join(lines)
    lines.append("  attribution shift: %s -> %s"
                 % (exp.pre_label, exp.post_label))
    shown = [r for r in exp.shifts if abs(r["delta"]) >= min_abs_delta]
    width = max((len(r["resource"]) for r in shown), default=8)
    for r in shown:
        lines.append("    %-*s  %5.1f%% -> %5.1f%%  (%+.1f)"
                     % (width, r["resource"], r["pre_share"] * 100.0,
                        r["post_share"] * 100.0, r["delta"] * 100.0))
    hidden = len(exp.shifts) - len(shown)
    if hidden:
        lines.append("    (%d resource%s moved < %.1f%%)"
                     % (hidden, "s" if hidden != 1 else "",
                        min_abs_delta * 100.0))
    if exp.top_resource is not None:
        bound = ("unbounded" if exp.what_if_bound is None
                 else "%.2fx" % exp.what_if_bound)
        lines.append("    what-if: removing %s waits bounds recovery at %s"
                     % (exp.top_resource, bound))
    return "\n".join(lines)
