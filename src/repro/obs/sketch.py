"""Bounded-memory, mergeable quantile sketches (DDSketch-style).

The simulation observes millions of latency samples per sweep; keeping
them all is unaffordable and keeping "the first N" (the seed-era
``Histogram`` reservoir) is a *start-of-run bias* — warmup transients
dominate and the steady state past sample N is invisible.  A
:class:`QuantileSketch` replaces the buffer with logarithmic buckets:

* **Accuracy guarantee.**  With relative accuracy ``alpha`` (default
  1%), bucket ``i`` covers the value interval ``(gamma^(i-1), gamma^i]``
  where ``gamma = (1 + alpha) / (1 - alpha)``.  Every value in a bucket
  is within ``alpha`` (relative) of the bucket's midpoint estimate
  ``2 * gamma^i / (gamma + 1)``, so the value returned for *any* rank —
  p50, p99, p999, ... — is within ``alpha`` relative error of the exact
  order statistic at that rank.  Equivalently, the returned value's rank
  in the exact data is the target rank up to the mass of one
  ``±alpha``-wide value band.  The property tests in
  ``tests/test_obs_sketch.py`` assert the bound against exact
  percentiles on adversarial (zipfian, bimodal, constant) inputs.
* **Bounded memory.**  The bucket count is at most
  ``ceil(log(max/min) / log(gamma)) + 3`` regardless of how many values
  are observed — about 1 000 buckets for nine decades of dynamic range
  at 1% accuracy.  Arbitrarily long runs stay flat.
* **Exactly mergeable.**  Buckets are integer counts, so merging is
  bucket-wise addition: associative, commutative, and bit-exact.  A
  sweep's worker processes can sketch independently and the merged
  sketch is *identical* (not just statistically close) to a single
  sketch that observed every value — the property
  ``--jobs N`` percentile reporting relies on.

Counts, sum, min and max are tracked exactly alongside the buckets, so
means and extreme quantiles (p0/p100) are never approximated.

Zero and negative values get their own store (log buckets cannot hold
them); simulation metrics are almost always positive, but a sketch that
silently corrupted on a zero would be a trap.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

__all__ = ["QuantileSketch", "DEFAULT_RELATIVE_ACCURACY"]

#: Default relative accuracy: every reported quantile is within 1% of
#: the exact order statistic.
DEFAULT_RELATIVE_ACCURACY = 0.01


class QuantileSketch:
    """A mergeable log-bucketed quantile sketch with exact moments."""

    __slots__ = ("relative_accuracy", "_gamma", "_log_gamma", "count",
                 "total", "min", "max", "zero_count", "buckets",
                 "neg_buckets")

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.zero_count = 0
        #: Positive-value buckets: index -> integer count.
        self.buckets: Dict[int, int] = {}
        #: Negative-value buckets over ``|value|`` (rarely used).
        self.neg_buckets: Dict[int, int] = {}

    # -- recording ------------------------------------------------------

    def _index(self, magnitude: float) -> int:
        """Bucket index of a positive magnitude: ``ceil(log_g(m))``."""
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _estimate(self, index: int) -> float:
        """Midpoint estimate of bucket ``index``: within ``alpha``
        relative error of every value the bucket covers."""
        return 2.0 * math.exp(index * self._log_gamma) / (self._gamma + 1.0)

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``n`` occurrences of ``value``."""
        if n <= 0:
            return
        value = float(value)
        self.count += n
        self.total += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            idx = self._index(value)
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        elif value < 0.0:
            idx = self._index(-value)
            self.neg_buckets[idx] = self.neg_buckets.get(idx, 0) + n
        else:
            self.zero_count += n

    # -- queries --------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact arithmetic mean (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1], within ``alpha``
        relative error of the exact order statistic at rank
        ``q * (count - 1)``.  Returns 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = q * (self.count - 1)
        cum = 0
        # Ascending value order: most-negative first (descending |v|
        # bucket index), then zeros, then positives ascending.
        for idx in sorted(self.neg_buckets, reverse=True):
            cum += self.neg_buckets[idx]
            if cum > rank:
                return self._clamp(-self._estimate(idx))
        cum += self.zero_count
        if cum > rank:
            return self._clamp(0.0)
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum > rank:
                return self._clamp(self._estimate(idx))
        return self.max  # pragma: no cover - guarded by count above

    def percentile(self, p: float) -> float:
        """The value at percentile ``p`` in [0, 100] (see
        :meth:`quantile`)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("p must be in [0, 100]")
        return self.quantile(p / 100.0)

    def _clamp(self, estimate: float) -> float:
        """Pin estimates inside the exactly tracked [min, max] range."""
        if estimate < self.min:
            return self.min
        if estimate > self.max:
            return self.max
        return estimate

    # -- merging --------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (bucket-wise integer adds:
        associative, commutative, and exact).  Returns self."""
        if not isinstance(other, QuantileSketch):
            raise TypeError("can only merge QuantileSketch instances")
        if not math.isclose(other.relative_accuracy, self.relative_accuracy,
                            rel_tol=1e-12):
            raise ValueError(
                "cannot merge sketches with different accuracies "
                "(%g vs %g)" % (self.relative_accuracy,
                                other.relative_accuracy))
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.zero_count += other.zero_count
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        for idx, n in other.neg_buckets.items():
            self.neg_buckets[idx] = self.neg_buckets.get(idx, 0) + n
        return self

    @classmethod
    def merged(cls, sketches: Iterable["QuantileSketch"],
               relative_accuracy: Optional[float] = None) -> "QuantileSketch":
        """A fresh sketch holding the fold of ``sketches`` in order."""
        out: Optional[QuantileSketch] = None
        for sk in sketches:
            if out is None:
                out = cls(relative_accuracy if relative_accuracy is not None
                          else sk.relative_accuracy)
            out.merge(sk)
        if out is None:
            out = cls(relative_accuracy if relative_accuracy is not None
                      else DEFAULT_RELATIVE_ACCURACY)
        return out

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON/pickle-safe snapshot of the full sketch state.

        Bucket keys are serialized as strings (JSON objects cannot key
        on integers) in sorted order, so two sketches with identical
        contents serialize identically regardless of insertion order.
        """
        return {
            "relative_accuracy": self.relative_accuracy,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zero_count": self.zero_count,
            "buckets": {str(i): self.buckets[i]
                        for i in sorted(self.buckets)},
            "neg_buckets": {str(i): self.neg_buckets[i]
                            for i in sorted(self.neg_buckets)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sk = cls(data.get("relative_accuracy", DEFAULT_RELATIVE_ACCURACY))
        sk.count = int(data["count"])
        sk.total = float(data["total"])
        sk.min = float("inf") if data.get("min") is None else float(data["min"])
        sk.max = (float("-inf") if data.get("max") is None
                  else float(data["max"]))
        sk.zero_count = int(data.get("zero_count", 0))
        sk.buckets = {int(i): int(n)
                      for i, n in data.get("buckets", {}).items()}
        sk.neg_buckets = {int(i): int(n)
                          for i, n in data.get("neg_buckets", {}).items()}
        return sk

    def __repr__(self) -> str:
        return ("QuantileSketch(n=%d, buckets=%d, alpha=%g)"
                % (self.count,
                   len(self.buckets) + len(self.neg_buckets)
                   + (1 if self.zero_count else 0),
                   self.relative_accuracy))
