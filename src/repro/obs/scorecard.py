"""Paper-fidelity scorecards.

A :class:`Scorecard` condenses one benchmark figure into a small JSON
document: the headline metrics (throughput at the knee, collapse ratio,
coalescing crossover, ...) plus boolean *shape checks* asserting the
qualitative behaviour the paper reports (Fig. 2a's cliff past the QP
cache, Fig. 10's crossover under QP contention, and so on).

Scorecards are written as ``BENCH_<figure>.json`` so a run's fidelity is
diffable and machine-comparable: :mod:`repro.obs.benchstore` compares a
fresh directory of scorecards against committed baselines and gates CI
on regressions beyond per-metric tolerances.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Metric",
    "Check",
    "Scorecard",
    "load_scorecard",
    "scorecard_filename",
]

#: Regression directions a metric can declare.  "higher" means larger is
#: better (throughput); "lower" means smaller is better (latency);
#: "equal" means any drift beyond tolerance is a regression (determinism
#: counters); "info" is recorded but never gated.
_BETTER = ("higher", "lower", "equal", "info")


@dataclass
class Metric:
    """One gated number in a scorecard."""

    name: str
    value: float
    better: str = "higher"
    #: Relative tolerance the bench store allows before flagging.
    rtol: float = 0.05
    #: Absolute tolerance floor (for metrics that hover near zero).
    atol: float = 0.0
    unit: str = ""

    def __post_init__(self):
        if self.better not in _BETTER:
            raise ValueError("better must be one of %s" % (_BETTER,))
        if self.rtol < 0 or self.atol < 0:
            raise ValueError("tolerances must be non-negative")


@dataclass
class Check:
    """One boolean shape assertion (e.g. 'throughput collapses past the
    QP-cache size')."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class Scorecard:
    """All fidelity evidence for one figure of the paper."""

    figure: str
    title: str = ""
    metrics: List[Metric] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    #: Run conditions that must match for a comparison to be meaningful
    #: (notably ``bench_scale``); extra keys are carried verbatim.
    meta: Dict[str, Any] = field(default_factory=dict)

    def add_metric(self, name: str, value: float, better: str = "higher",
                   rtol: float = 0.05, atol: float = 0.0,
                   unit: str = "") -> Metric:
        m = Metric(name=name, value=float(value), better=better,
                   rtol=rtol, atol=atol, unit=unit)
        self.metrics.append(m)
        return m

    def add_check(self, name: str, passed: bool, detail: str = "") -> Check:
        c = Check(name=name, passed=bool(passed), detail=detail)
        self.checks.append(c)
        return c

    @property
    def passed(self) -> bool:
        """True when every shape check holds."""
        return all(c.passed for c in self.checks)

    def metric(self, name: str) -> Optional[Metric]:
        for m in self.metrics:
            if m.name == name:
                return m
        return None

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "title": self.title,
            "passed": self.passed,
            "metrics": [vars(m) for m in self.metrics],
            "checks": [vars(c) for c in self.checks],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scorecard":
        sc = cls(figure=data["figure"], title=data.get("title", ""),
                 meta=dict(data.get("meta", {})))
        for m in data.get("metrics", []):
            sc.metrics.append(Metric(
                name=m["name"], value=m["value"],
                better=m.get("better", "higher"),
                rtol=m.get("rtol", 0.05), atol=m.get("atol", 0.0),
                unit=m.get("unit", "")))
        for c in data.get("checks", []):
            sc.checks.append(Check(name=c["name"], passed=c["passed"],
                                   detail=c.get("detail", "")))
        return sc

    def write(self, directory: str) -> str:
        """Serialize to ``<directory>/BENCH_<figure>.json``; returns the
        path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, scorecard_filename(self.figure))
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def format(self) -> str:
        lines = ["scorecard %s (%s): %s"
                 % (self.figure, self.title or "untitled",
                    "PASS" if self.passed else "FAIL")]
        for m in self.metrics:
            lines.append("  %-36s %12.4f %s" % (m.name, m.value, m.unit))
        for c in self.checks:
            mark = "ok  " if c.passed else "FAIL"
            lines.append("  [%s] %s%s" % (
                mark, c.name, (" — " + c.detail) if c.detail else ""))
        return "\n".join(lines)


def scorecard_filename(figure: str) -> str:
    """Canonical on-disk name for a figure's scorecard."""
    safe = "".join(ch if (ch.isalnum() or ch in "-_") else "_"
                   for ch in figure)
    return "BENCH_%s.json" % safe


def load_scorecard(path: str) -> Scorecard:
    """Read a scorecard back from a ``BENCH_*.json`` file."""
    with open(path) as fh:
        return Scorecard.from_dict(json.load(fh))
