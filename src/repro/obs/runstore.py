"""Queryable run history: an append-only store of benchmark runs.

Scorecards answer "how faithful is *this* run"; the bench store answers
"did it regress against the committed contract".  What neither answers
is *navigable history*: which runs exist, under what code and config,
and how any two of them compare — the workflow Collie-style performance
anomaly hunting actually needs.  A :class:`RunStore` records every
bench/scorecard run as one JSON line in an append-only log
(``runs.jsonl``), each carrying:

* **git context** — commit, branch, and a dirty flag captured at record
  time, so a run is traceable to the code that produced it;
* **a config fingerprint** — a stable hash of the run's figures and
  gating meta (``bench_scale``), so comparable runs are recognizable at
  a glance and incomparable ones are obvious;
* **the full scorecards** — metrics with tolerances, shape checks, and
  meta (including windowed SLO timelines), verbatim.

Records are never rewritten: the store only appends, and run ids are
the 1-based line numbers, so any id mentioned in a CI log or a commit
message stays valid forever.

:meth:`RunStore.diff` replays the bench store's tolerance-aware
comparison with run *A* as the baseline contract — the CLI front-end
(``repro runs diff A B``) exits nonzero iff B regresses beyond A's
tolerances, which is the smoke gate CI uses against a deliberately
fault-injected run.  :meth:`RunStore.query` filters history with
``figure.metric OP value`` expressions (``fig2a.peak_mops>40``) and
``key=value`` field matches (``label=nightly``, ``figure=fig2a``).

The store location defaults to ``benchmarks/runstore`` next to the
committed baselines; ``REPRO_RUNSTORE_DIR`` overrides it (CI points it
at a scratch directory, tests at tmp paths).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .benchstore import CompareReport, compare_scorecards
from .scorecard import Scorecard

__all__ = ["RunRecord", "RunStore", "default_store_dir"]

#: Environment override for the store directory.
RUNSTORE_DIR_ENV = "REPRO_RUNSTORE_DIR"

#: Comparison operators a query expression may use, longest first so
#: ``>=`` is not parsed as ``>`` followed by a stray ``=``.
_QUERY_OPS = (">=", "<=", "!=", "==", ">", "<", "=")


def default_store_dir() -> str:
    """The store directory: ``REPRO_RUNSTORE_DIR`` or the repo's
    ``benchmarks/runstore``."""
    env = os.environ.get(RUNSTORE_DIR_ENV)
    if env:
        return env
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))),
        "benchmarks", "runstore")


def _git(args: List[str], cwd: str) -> Optional[str]:
    """One git query; None when git or the repo is unavailable."""
    try:
        out = subprocess.run(["git"] + args, cwd=cwd, timeout=10,
                             capture_output=True, text=True)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_context(cwd: Optional[str] = None) -> Dict[str, Any]:
    """Commit / branch / dirty flag of the working tree (best effort)."""
    cwd = cwd or os.getcwd()
    commit = _git(["rev-parse", "HEAD"], cwd)
    if commit is None:
        return {"commit": None, "branch": None, "dirty": None}
    branch = _git(["rev-parse", "--abbrev-ref", "HEAD"], cwd)
    status = _git(["status", "--porcelain"], cwd)
    return {"commit": commit, "branch": branch,
            "dirty": bool(status) if status is not None else None}


def config_fingerprint(scorecards: List[Scorecard]) -> str:
    """Stable short hash of the run's shape: which figures ran and under
    what gating meta (``bench_scale``, transport fidelity).  Two runs
    with equal fingerprints are meaningfully diffable — in particular,
    ``runs diff`` never silently compares a fluid run against a packet
    baseline."""
    shape = sorted((sc.figure, sc.meta.get("bench_scale"),
                    sc.meta.get("fidelity"))
                   for sc in scorecards)
    digest = hashlib.sha256(
        json.dumps(shape, sort_keys=True).encode()).hexdigest()
    return digest[:12]


@dataclass
class RunRecord:
    """One recorded benchmark run."""

    run_id: int
    #: Unix wall-clock seconds at record time.
    timestamp: float
    #: Free-form label (``--label``, or the recording context's name).
    label: str
    git: Dict[str, Any]
    fingerprint: str
    #: Full scorecard dicts, keyed by figure.
    scorecards: Dict[str, dict]
    #: Extra recorder-supplied context (CI job, hostname, ...).
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def figures(self) -> List[str]:
        """The figures this run produced, sorted."""
        return sorted(self.scorecards)

    @property
    def passed(self) -> bool:
        """True when every scorecard's shape checks held."""
        return all(sc.get("passed", True)
                   for sc in self.scorecards.values())

    def scorecard(self, figure: str) -> Optional[Scorecard]:
        """The run's scorecard for ``figure`` (None when absent)."""
        data = self.scorecards.get(figure)
        return Scorecard.from_dict(data) if data is not None else None

    def metric(self, figure: str, name: str) -> Optional[float]:
        """A metric value by figure and name (None when absent).

        Falls back to the scorecard's ``meta["host"]`` block, so host
        cost is queryable (``fig2a.events_per_sec < 2e6``) without ever
        being a gated metric.
        """
        sc = self.scorecards.get(figure)
        if sc is None:
            return None
        for m in sc.get("metrics", ()):
            if m.get("name") == name:
                return m.get("value")
        host = sc.get("meta", {}).get("host")
        if isinstance(host, dict) and isinstance(host.get(name), (int, float)):
            return host[name]
        return None

    def to_dict(self) -> dict:
        """JSON form written to the log."""
        return {"run_id": self.run_id, "timestamp": self.timestamp,
                "label": self.label, "git": self.git,
                "fingerprint": self.fingerprint,
                "scorecards": self.scorecards, "meta": self.meta}

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record from one log line."""
        return cls(run_id=int(data["run_id"]),
                   timestamp=float(data.get("timestamp", 0.0)),
                   label=data.get("label", ""),
                   git=dict(data.get("git", {})),
                   fingerprint=data.get("fingerprint", ""),
                   scorecards=dict(data.get("scorecards", {})),
                   meta=dict(data.get("meta", {})))

    def summary_row(self) -> List[str]:
        """The ``runs list`` table row."""
        when = time.strftime("%Y-%m-%d %H:%M",
                             time.localtime(self.timestamp))
        commit = (self.git.get("commit") or "")[:10] or "-"
        if self.git.get("dirty"):
            commit += "+"
        return [str(self.run_id), when, self.label or "-", commit,
                self.fingerprint, ",".join(self.figures) or "-",
                "PASS" if self.passed else "FAIL"]


class RunStore:
    """Append-only JSONL store of :class:`RunRecord` entries."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_store_dir()
        self.path = os.path.join(self.root, "runs.jsonl")

    # -- writing --------------------------------------------------------

    def record(self, scorecards: List[Scorecard], label: str = "",
               meta: Optional[Dict[str, Any]] = None,
               timestamp: Optional[float] = None) -> RunRecord:
        """Append one run; returns the stored record (with its id)."""
        os.makedirs(self.root, exist_ok=True)
        ignore = os.path.join(self.root, ".gitignore")
        if not os.path.exists(ignore):
            # Run history is machine-local by default; CI uploads it as
            # an artifact instead of committing it.
            with open(ignore, "w") as fh:
                fh.write("*\n")
        rec = RunRecord(
            run_id=self._next_id(),
            timestamp=time.time() if timestamp is None else timestamp,
            label=label,
            git=git_context(),
            fingerprint=config_fingerprint(scorecards),
            scorecards={sc.figure: sc.to_dict() for sc in scorecards},
            meta=dict(meta or {}))
        with open(self.path, "a") as fh:
            fh.write(json.dumps(rec.to_dict(), sort_keys=True) + "\n")
        return rec

    def _next_id(self) -> int:
        return len(self._lines()) + 1

    # -- reading --------------------------------------------------------

    def _lines(self) -> List[str]:
        if not os.path.exists(self.path):
            return []
        with open(self.path) as fh:
            return [line for line in fh if line.strip()]

    def list(self) -> List[RunRecord]:
        """Every recorded run, in record order."""
        return [RunRecord.from_dict(json.loads(line))
                for line in self._lines()]

    def get(self, ref) -> RunRecord:
        """A run by reference.

        Accepts an id (``4``, ``"4"``, ``"run:4"``), ``"latest"`` /
        ``"run:latest"`` for the most recent run, and negative ids
        counting back from the end (``-1`` / ``"run:-1"`` is the latest,
        ``-2`` the one before).  Raises :class:`KeyError` with the bad
        reference for anything else.
        """
        if isinstance(ref, str):
            ref = ref.split(":", 1)[1] if ref.startswith("run:") else ref
            if ref == "latest":
                ref = -1
            else:
                try:
                    ref = int(ref)
                except ValueError:
                    raise KeyError("bad run reference %r (want an id, "
                                   "run:N, run:-N, or run:latest)" % ref)
        records = self.list()
        if ref < 0:
            if -ref <= len(records):
                return records[ref]
            raise KeyError("no run %r in %s (only %d recorded)"
                           % (ref, self.path, len(records)))
        for rec in records:
            if rec.run_id == ref:
                return rec
        raise KeyError("no run %r in %s" % (ref, self.path))

    # -- comparing ------------------------------------------------------

    def diff(self, a, b) -> CompareReport:
        """Tolerance-aware comparison of run ``b`` against run ``a``.

        Run *A* is the baseline contract: its metric tolerances and its
        passing shape checks gate, exactly as the bench store gates a
        fresh run against committed baselines.  Figures present in only
        one run are recorded as skips.  ``report.ok`` is False iff B
        regresses.
        """
        base, cur = self.get(a), self.get(b)
        report = CompareReport()
        for figure in base.figures:
            cur_sc = cur.scorecard(figure)
            if cur_sc is None:
                report.skipped.append("%s: absent from run %d"
                                      % (figure, cur.run_id))
                continue
            part = compare_scorecards(base.scorecard(figure), cur_sc)
            report.deltas.extend(part.deltas)
            report.skipped.extend(part.skipped)
            report.failed_checks.extend(part.failed_checks)
            report.anomaly_flags.extend(part.anomaly_flags)
            report.host_flags.extend(part.host_flags)
        return report

    # -- querying -------------------------------------------------------

    def query(self, exprs: List[str]) -> List[RunRecord]:
        """Runs matching every expression (see the module docstring)."""
        out = []
        for rec in self.list():
            if all(self._matches(rec, expr) for expr in exprs):
                out.append(rec)
        return out

    @staticmethod
    def _matches(rec: RunRecord, expr: str) -> bool:
        """Evaluate one query expression against one record."""
        for op in _QUERY_OPS:
            if op in expr:
                lhs, rhs = expr.split(op, 1)
                lhs, rhs = lhs.strip(), rhs.strip()
                break
        else:
            raise ValueError("bad query expression %r" % expr)
        if op == "=" or op == "==":
            if lhs == "label":
                return rec.label == rhs
            if lhs == "commit":
                return bool(rec.git.get("commit", "")
                            and rec.git["commit"].startswith(rhs))
            if lhs == "figure":
                return rhs in rec.scorecards
            if lhs == "fingerprint":
                return rec.fingerprint == rhs
            if lhs == "passed":
                return rec.passed == (rhs.lower() in ("1", "true", "yes"))
        if "." not in lhs:
            raise ValueError(
                "unknown query field %r (want label/commit/figure/"
                "fingerprint/passed or figure.metric)" % lhs)
        figure, metric = lhs.split(".", 1)
        value = rec.metric(figure, metric)
        if value is None:
            return False
        target = float(rhs)
        return {
            ">": value > target, ">=": value >= target,
            "<": value < target, "<=": value <= target,
            "==": value == target, "=": value == target,
            "!=": value != target,
        }[op]
