"""The Telemetry bundle: one object wiring all three pillars together.

A :class:`Telemetry` owns a live :class:`repro.obs.registry.Registry` and
:class:`repro.obs.span.SpanLog` and installs them onto a simulator
*before* the cluster is built (instrumented components cache their
instruments at construction time, so installation order matters — the
harness runners handle this).

A module-level *current telemetry* lets the CLI enable observability for
every figure runner without threading a parameter through each command:
``enable(tel)`` / ``disable()`` set it, and runners consult
``current_telemetry()`` when no explicit telemetry argument is given.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .registry import Registry
from .span import SpanLog

__all__ = [
    "Telemetry",
    "current_telemetry",
    "disable",
    "enable",
]


class Telemetry:
    """A live metrics registry + span log, installable on simulators."""

    def __init__(self, max_spans: int = 200_000):
        self.registry = Registry()
        self.spans = SpanLog(max_spans=max_spans)
        #: Labels of the runs this telemetry has been installed on.
        self.runs = []

    def install(self, sim, label: str = "") -> "Telemetry":
        """Attach to ``sim`` (must precede component construction).

        Each installation opens a new run scope in the span log, so a
        sweep over several simulators exports as separate Chrome-trace
        processes.  Returns self for chaining.
        """
        sim.metrics = self.registry
        sim.spans = self.spans
        run_label = label or ("run%d" % (len(self.runs) + 1))
        self.spans.new_run(run_label)
        self.runs.append(run_label)
        return self

    def breakdown(self, name: Optional[str] = None) -> Dict[str, Dict[str, float]]:
        """Phase-level latency breakdown over all recorded spans."""
        return self.spans.breakdown(name)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The registry snapshot (counters/gauges/histograms)."""
        return self.registry.snapshot()


#: The CLI-installed telemetry runners fall back to (None = disabled).
_current: Optional[Telemetry] = None


def enable(telemetry: Telemetry) -> Telemetry:
    """Make ``telemetry`` the process-wide default for figure runners."""
    global _current
    _current = telemetry
    return telemetry


def disable() -> None:
    """Clear the process-wide default telemetry."""
    global _current
    _current = None


def current_telemetry() -> Optional[Telemetry]:
    """The process-wide default telemetry, or None when disabled."""
    return _current
