"""The Telemetry bundle: one object wiring all three pillars together.

A :class:`Telemetry` owns a live :class:`repro.obs.registry.Registry` and
:class:`repro.obs.span.SpanLog` and installs them onto a simulator
*before* the cluster is built (instrumented components cache their
instruments at construction time, so installation order matters — the
harness runners handle this).

A module-level *current telemetry* lets the CLI enable observability for
every figure runner without threading a parameter through each command:
``enable(tel)`` / ``disable()`` set it, and runners consult
``current_telemetry()`` when no explicit telemetry argument is given.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .causal import (
    CriticalPath,
    attribute,
    critical_paths,
    folded_stacks,
    what_if_all,
)
from .registry import Registry
from .span import SpanLog

__all__ = [
    "Telemetry",
    "current_telemetry",
    "disable",
    "enable",
]


class Telemetry:
    """A live metrics registry + span log, installable on simulators.

    ``wants_spans`` declares whether span-level observability (traces,
    breakdowns, attribution) is needed.  Spans only exist in the process
    that recorded them, so a spans-wanting telemetry forces sweeps
    serial; a metrics-only telemetry (``wants_spans=False``) keeps
    ``--jobs`` parallelism because counters and quantile sketches merge
    exactly across worker processes (see
    :meth:`repro.obs.registry.Registry.export_state`).
    """

    def __init__(self, max_spans: int = 200_000, wants_spans: bool = True):
        self.registry = Registry()
        self.spans = SpanLog(max_spans=max_spans)
        #: Whether span recording matters to this telemetry's consumer
        #: (False = metrics-only; sweeps may fan out across processes).
        self.wants_spans = wants_spans
        #: Labels of the runs this telemetry has been installed on.
        self.runs = []
        #: The most recently installed simulator — its clock gives the
        #: truncation horizon when live spans are flushed.
        self._sim = None

    def install(self, sim, label: str = "") -> "Telemetry":
        """Attach to ``sim`` (must precede component construction).

        Each installation opens a new run scope in the span log, so a
        sweep over several simulators exports as separate Chrome-trace
        processes.  Spans left unfinished by the *previous* run (work
        stuck on a saturated resource when its simulator stopped) are
        flushed at that run's final clock first, so they land in the
        right run scope with their in-flight waits closed.  Returns self
        for chaining.
        """
        self.flush()
        sim.metrics = self.registry
        sim.spans = self.spans
        run_label = label or ("run%d" % (len(self.runs) + 1))
        self.spans.new_run(run_label)
        self.runs.append(run_label)
        self._sim = sim
        return self

    def flush(self) -> int:
        """Finish live spans at the current run's clock (see
        :meth:`repro.obs.span.SpanLog.flush`).  Safe to call repeatedly;
        the causal accessors call it so attribution always sees work
        that was still blocked when the run ended."""
        if self._sim is None:
            return 0
        return self.spans.flush(self._sim.now)

    def breakdown(self, name: Optional[str] = None) -> Dict[str, Dict[str, float]]:
        """Phase-level latency breakdown over all recorded spans."""
        return self.spans.breakdown(name)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The registry snapshot (counters/gauges/histograms)."""
        return self.registry.snapshot()

    # -- causal analysis (repro.obs.causal) -----------------------------

    def critical_paths(self, name: Optional[str] = None,
                       run: Optional[int] = None) -> List[CriticalPath]:
        """Per-RPC critical paths over the recorded spans.

        Flushes live spans first: RPCs still blocked when the run ended
        are the ones most damaged by the bottleneck, and dropping them
        would bias attribution *away* from the collapsed resource.
        """
        self.flush()
        return critical_paths(self.spans, name=name, run=run)

    def attribution(self, name: Optional[str] = None,
                    run: Optional[int] = None) -> Dict[str, Dict[str, float]]:
        """Blocked-time attribution table over critical paths."""
        return attribute(self.critical_paths(name=name, run=run))

    def what_if(self, name: Optional[str] = None,
                run: Optional[int] = None) -> Dict[str, float]:
        """Upper-bound speedup per resource if its waits were removed."""
        return what_if_all(self.critical_paths(name=name, run=run))

    def folded(self, name: Optional[str] = None,
               run: Optional[int] = None) -> str:
        """Folded-stack (flamegraph.pl / speedscope) text export."""
        return folded_stacks(self.critical_paths(name=name, run=run))


#: The CLI-installed telemetry runners fall back to (None = disabled).
_current: Optional[Telemetry] = None


def enable(telemetry: Telemetry) -> Telemetry:
    """Make ``telemetry`` the process-wide default for figure runners."""
    global _current
    _current = telemetry
    return telemetry


def disable() -> None:
    """Clear the process-wide default telemetry."""
    global _current
    _current = None


def current_telemetry() -> Optional[Telemetry]:
    """The process-wide default telemetry, or None when disabled."""
    return _current
