"""Deterministic anomaly detection over sweeps, timelines, and counters.

Every anomaly check the repo shipped before this module was hand-coded
per figure ("Fig. 2a collapses below 0.55x of peak past 560 QPs") —
thresholds that break the moment a sweep changes shape and that cannot
generalize to machine-found scenarios (the Collie-style adversarial
search in ROADMAP.md).  This module replaces them with three *generic*
detectors, each a pure function of its input series — no RNG, no wall
clock, no external dependencies — so the detected anomaly set is
byte-identical across repeated runs and across ``--jobs N`` worker
counts:

* :func:`detect_cliffs` — the largest *relative step* between adjacent
  sweep points: a drop (or rise) of more than ``min_rel_step`` of the
  local level is a cliff, located at the post-step x.
* :func:`detect_knees` — Kneedle-style maximum distance to the chord:
  normalize the curve to the unit square (index space on x, so
  geometric sweeps like Fig. 2a's QP ramp need no log heuristics) and
  flag the point furthest from the straight line between the curve's
  endpoints.  A knee marks where a curve stops rising (saturation) or
  starts falling — Fig. 2a's QP-cache plateau edge.
* :func:`detect_changepoints` — binary segmentation on windowed means:
  recursively split a per-window series (p99, goodput) at the index
  maximizing the mean shift normalized by the pooled mean absolute
  deviation.  A split must clear both a noise gate (shift ≫ in-segment
  scatter) and a relative-magnitude gate (shift is a meaningful
  fraction of the level), so stationary-but-noisy smoke runs stay
  silent while a mid-run step (e.g. the ``bench.step_handler_cost``
  fault) fires.
* :func:`detect_counter_bursts` — a per-window counter delta exceeding
  a rolling baseline of the preceding windows (ECN marks, PFC pauses,
  switch drops suddenly appearing or spiking).

Each detector emits typed :class:`Anomaly` records carrying the figure
and series it was found in, the x-location / window span, a severity in
``[0, 1]``, and the evidence series itself.  The severity scale is
uniform across detectors: the *fraction of the signal that moved* —
``1 - post/pre`` for a cliff, ``|Δmean| / max(pre, post)`` for a level
shift, ``1 - baseline/value`` for a burst — so ``< 0.25`` reads as
mild, ``0.25–0.5`` as moderate and ``>= 0.5`` as severe regardless of
which detector produced it.

:func:`detect_run_anomalies` runs the windowed detectors over one run's
SLO timeline report (:meth:`repro.obs.windows.SloTimeline.report`) and
is what every figure runner calls to populate
``RunResult.anomalies``.  :func:`diff_anomaly_sets` compares two
recorded anomaly blocks (``runs diff A B``) and flags new / vanished /
moved anomalies.  :mod:`repro.obs.explain` joins anomalies to critical-
path attribution for the *why*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Anomaly",
    "detect_cliffs",
    "detect_knees",
    "detect_sweep_anomalies",
    "detect_changepoints",
    "detect_counter_bursts",
    "detect_run_anomalies",
    "diff_anomaly_sets",
    "severity_label",
]

#: Anomaly kinds the detectors emit.
KINDS = ("cliff", "knee", "changepoint", "counter_burst")

#: Severity thresholds of the uniform scale (see module docstring).
SEVERITY_BANDS = ((0.5, "severe"), (0.25, "moderate"), (0.0, "mild"))


def severity_label(severity: float) -> str:
    """The uniform severity band: mild < 0.25 <= moderate < 0.5 <= severe."""
    for floor, label in SEVERITY_BANDS:
        if severity >= floor:
            return label
    return "mild"


@dataclass
class Anomaly:
    """One detected anomaly, JSON-safe and stably ordered.

    ``x`` locates the anomaly on the series' own axis — the sweep x
    value for cliffs/knees, the window index for changepoints and
    bursts — and ``span`` brackets it (pre-x .. post-x for a step, the
    window's virtual timestamps for windowed detections).
    """

    kind: str
    #: The series' owning figure/experiment ("fig2a"); may be filled in
    #: by the caller after detection (runners don't know their figure).
    figure: str
    #: Which series within the figure ("mops", "rc-read qps=2816/p99_us").
    series: str
    #: The y-metric the detector examined ("mops", "p99_us", "ecn_marks").
    metric: str
    x: float
    span: Tuple[float, float]
    #: "drop" or "rise".
    direction: str
    #: Uniform [0, 1] severity (see :func:`severity_label`).
    severity: float
    detail: str = ""
    #: The series evidence: input xs/ys plus detector-specific values.
    evidence: Dict[str, Any] = field(default_factory=dict)

    @property
    def severity_band(self) -> str:
        return severity_label(self.severity)

    def key(self) -> Tuple[str, str, str]:
        """Identity for set-diffing: an anomaly that keeps (kind, series,
        metric) but changes ``x`` *moved*; one that disappears outright
        *vanished*."""
        return (self.kind, self.series, self.metric)

    def sort_key(self) -> Tuple:
        return (self.figure, self.series, self.metric, self.kind, self.x)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "figure": self.figure,
            "series": self.series,
            "metric": self.metric,
            "x": self.x,
            "span": list(self.span),
            "direction": self.direction,
            "severity": self.severity,
            "severity_band": self.severity_band,
            "detail": self.detail,
            "evidence": self.evidence,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Anomaly":
        return cls(kind=data["kind"], figure=data.get("figure", ""),
                   series=data.get("series", ""),
                   metric=data.get("metric", ""),
                   x=float(data["x"]),
                   span=tuple(data.get("span", (data["x"], data["x"]))),
                   direction=data.get("direction", "drop"),
                   severity=float(data.get("severity", 0.0)),
                   detail=data.get("detail", ""),
                   evidence=dict(data.get("evidence", {})))

    def __str__(self) -> str:
        return ("%s[%s] %s/%s at x=%g (span %g..%g, %s, severity %.2f)"
                % (self.kind, self.direction, self.series or self.figure,
                   self.metric, self.x, self.span[0], self.span[1],
                   self.severity_band, self.severity))


def _round6(x: float) -> float:
    """Evidence values are rounded so reports stay tidy; detection math
    itself always runs on the raw floats."""
    return round(float(x), 6)


# ---------------------------------------------------------------------------
# Sweep-curve detectors: cliffs and knees
# ---------------------------------------------------------------------------

def detect_cliffs(xs: Sequence[float], ys: Sequence[float], *,
                  metric: str = "y", series: str = "", figure: str = "",
                  min_rel_step: float = 0.25) -> List[Anomaly]:
    """Largest-relative-step cliff detection on a sweep curve.

    Scans adjacent point pairs for the largest relative change
    ``|y[i+1] - y[i]| / max(y[i], y[i+1])`` and emits a cliff when it
    reaches ``min_rel_step`` — i.e. at least a quarter of the local
    level vanished (or appeared) between two sweep points.  Only the
    single largest step is reported per direction: a collapse spanning
    several points is one cliff, not one per sample.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    best: Dict[str, Tuple[float, int]] = {}
    for i in range(len(ys) - 1):
        pre, post = ys[i], ys[i + 1]
        level = max(abs(pre), abs(post))
        if level <= 0.0:
            continue
        rel = (post - pre) / level
        direction = "drop" if rel < 0 else "rise"
        mag = abs(rel)
        if mag >= min_rel_step and (direction not in best
                                    or mag > best[direction][0]):
            best[direction] = (mag, i)
    out = []
    for direction in ("drop", "rise"):
        if direction not in best:
            continue
        mag, i = best[direction]
        out.append(Anomaly(
            kind="cliff", figure=figure, series=series, metric=metric,
            x=xs[i + 1], span=(xs[i], xs[i + 1]), direction=direction,
            severity=_round6(min(1.0, mag)),
            detail="%s %s by %.0f%% between x=%g and x=%g"
                   % (metric, "falls" if direction == "drop" else "jumps",
                      mag * 100.0, xs[i], xs[i + 1]),
            evidence={"xs": [_round6(x) for x in xs],
                      "ys": [_round6(y) for y in ys],
                      "pre": _round6(ys[i]), "post": _round6(ys[i + 1])}))
    out.sort(key=Anomaly.sort_key)
    return out


def detect_knees(xs: Sequence[float], ys: Sequence[float], *,
                 metric: str = "y", series: str = "", figure: str = "",
                 min_distance: float = 0.2) -> List[Anomaly]:
    """Kneedle-style knee detection: the point furthest from the chord.

    The curve is normalized to the unit square — *index space* on x, so
    geometric sweeps (22, 176, 704, 2816 QPs) need no log heuristics and
    the detector stays scale-free — and the perpendicular offset of
    every interior point from the straight line joining the endpoints is
    computed.  The maximum-offset point is the knee when its offset
    reaches ``min_distance`` of the unit square; a point *above* the
    chord is a saturation knee (the curve rose then flattened/fell, a
    "rise" then loss of slope), one *below* is an onset knee.
    """
    n = len(ys)
    if len(xs) != n:
        raise ValueError("xs and ys must have equal length")
    if n < 3:
        return []
    lo, hi = min(ys), max(ys)
    if hi <= lo:
        return []
    norm = [(y - lo) / (hi - lo) for y in ys]
    best_i, best_off = -1, 0.0
    for i in range(1, n - 1):
        t = i / (n - 1.0)
        chord = norm[0] + t * (norm[-1] - norm[0])
        off = norm[i] - chord
        if abs(off) > abs(best_off):
            best_i, best_off = i, off
    if best_i < 0 or abs(best_off) < min_distance:
        return []
    direction = "rise" if best_off > 0 else "drop"
    return [Anomaly(
        kind="knee", figure=figure, series=series, metric=metric,
        x=xs[best_i],
        span=(xs[max(0, best_i - 1)], xs[min(n - 1, best_i + 1)]),
        direction=direction,
        severity=_round6(min(1.0, abs(best_off))),
        detail="curve bends %s the endpoint chord hardest at x=%g "
               "(offset %.2f of range)"
               % ("above" if best_off > 0 else "below", xs[best_i],
                  abs(best_off)),
        evidence={"xs": [_round6(x) for x in xs],
                  "ys": [_round6(y) for y in ys],
                  "chord_offset": _round6(best_off)})]


def detect_sweep_anomalies(xs: Sequence[float], ys: Sequence[float], *,
                           metric: str = "y", series: str = "",
                           figure: str = "") -> List[Anomaly]:
    """Both sweep-curve detectors over one (xs, ys) series, stably
    ordered.  This is what scorecard builders call on a figure's
    headline curve (e.g. Fig. 2a's mops-vs-QPs)."""
    out = detect_knees(xs, ys, metric=metric, series=series, figure=figure)
    out += detect_cliffs(xs, ys, metric=metric, series=series, figure=figure)
    out.sort(key=Anomaly.sort_key)
    return out


# ---------------------------------------------------------------------------
# Windowed-series detectors: changepoints and counter bursts
# ---------------------------------------------------------------------------

def _mean(vals: Sequence[float]) -> float:
    return sum(vals) / len(vals)


def _mad(vals: Sequence[float], center: float) -> float:
    """Mean absolute deviation around ``center``."""
    return sum(abs(v - center) for v in vals) / len(vals)


def detect_changepoints(values: Sequence[float], *,
                        min_segment: int = 2, min_score: float = 3.0,
                        min_rel_shift: float = 0.25,
                        max_splits: int = 3) -> List[Tuple[int, float, float, float]]:
    """Binary segmentation for mean level shifts in a windowed series.

    Returns ``[(index, pre_mean, post_mean, score), ...]`` where
    ``index`` is the first window of the new level.  A candidate split
    at ``k`` scores ``|mean(right) - mean(left)|`` over the pooled mean
    absolute deviation of the two segments (floored at 1% of the series
    level so a perfectly flat segment cannot divide by zero).  A split
    is accepted only when

    * ``score >= min_score`` — the shift stands well clear of the
      in-segment scatter (the noise gate), and
    * the shift is at least ``min_rel_shift`` of the larger level (the
      magnitude gate — a statistically crisp 2% drift is not an
      anomaly).

    Accepted splits recurse into both halves (at most ``max_splits``
    total), largest-score-first, with ties broken by the earlier index
    — fully deterministic.
    """
    values = list(values)
    found: List[Tuple[int, float, float, float]] = []

    def best_split(lo: int, hi: int):
        """The strongest accepted split of values[lo:hi), or None."""
        n = hi - lo
        if n < 2 * min_segment:
            return None
        best = None
        for k in range(lo + min_segment, hi - min_segment + 1):
            left, right = values[lo:k], values[k:hi]
            ml, mr = _mean(left), _mean(right)
            level = max(abs(ml), abs(mr))
            if level <= 0.0:
                continue
            shift = abs(mr - ml)
            if shift / level < min_rel_shift:
                continue
            pooled = (_mad(left, ml) * len(left)
                      + _mad(right, mr) * len(right)) / n
            pooled = max(pooled, 0.01 * level)
            score = shift / pooled
            if score >= min_score and (best is None or score > best[3]):
                best = (k, ml, mr, score)
        return best

    frontier = [(0, len(values))]
    while frontier and len(found) < max_splits:
        candidates = []
        for lo, hi in frontier:
            split = best_split(lo, hi)
            if split is not None:
                candidates.append((lo, hi, split))
        if not candidates:
            break
        # Largest score first; earlier index breaks ties.
        lo, hi, (k, ml, mr, score) = max(
            candidates, key=lambda c: (c[2][3], -c[2][0]))
        found.append((k, ml, mr, score))
        frontier = [(a, b) for a, b in frontier if (a, b) != (lo, hi)]
        frontier += [(lo, k), (k, hi)]
    found.sort(key=lambda f: f[0])
    return found


def detect_counter_bursts(values: Sequence[float], *,
                          baseline_windows: int = 3, factor: float = 4.0,
                          abs_floor: float = 8.0) -> List[Tuple[int, float, float]]:
    """Rolling-baseline burst detection on per-window counter deltas.

    Returns ``[(index, value, baseline), ...]``.  Window ``i`` (``i >=
    1``) bursts when its delta exceeds ``abs_floor`` *and* ``factor``
    times the mean of the preceding (up to ``baseline_windows``)
    deltas.  A counter that was silent and suddenly produces
    ``abs_floor`` events in one window is a burst (baseline 0); a
    counter that ticks steadily every window is not, no matter how
    large its level.
    """
    out = []
    for i in range(1, len(values)):
        window = values[max(0, i - baseline_windows):i]
        baseline = _mean(window)
        if values[i] >= abs_floor and values[i] > factor * max(baseline, 1e-12):
            out.append((i, values[i], baseline))
    return out


def detect_run_anomalies(slo: Optional[Dict[str, Any]], *,
                         figure: str = "", label: str = "") -> List[Dict[str, Any]]:
    """All windowed anomalies of one run's SLO timeline report.

    Runs :func:`detect_changepoints` over the per-window ``p99_us`` and
    ``goodput_mops`` series and :func:`detect_counter_bursts` over every
    per-window counter delta (ECN marks, PFC pauses, switch drops, ...).
    Returns plain dicts (:meth:`Anomaly.to_dict`), stably sorted — the
    form that rides on ``RunResult.anomalies``, crosses the parallel
    executor's pickle boundary untouched, and lands in scorecard
    ``meta["anomalies"]`` blocks.  ``slo=None`` (no timeline attached)
    yields the empty list.
    """
    if not slo:
        return []
    rows = slo.get("windows") or []
    anomalies: List[Anomaly] = []

    def window_span(idx: int) -> Tuple[float, float]:
        row = rows[idx]
        return (row["t0_ns"], row["t1_ns"])

    # Latency / goodput level shifts.  Windows with no completions have
    # p99_us None; detection runs on the observed subsequence and maps
    # split indices back to real window ids.
    for metric in ("p99_us", "goodput_mops"):
        series = [(row["window"], row[metric]) for row in rows
                  if row.get(metric) is not None]
        vals = [v for _w, v in series]
        for k, pre, post, score in detect_changepoints(vals):
            widx = series[k][0]
            level = max(abs(pre), abs(post))
            anomalies.append(Anomaly(
                kind="changepoint", figure=figure, series=label,
                metric=metric, x=float(widx), span=window_span(widx),
                direction="rise" if post > pre else "drop",
                severity=_round6(min(1.0, abs(post - pre) / level)
                                 if level else 0.0),
                detail="%s level shifts %.4g -> %.4g at window %d "
                       "(score %.1f)" % (metric, pre, post, widx, score),
                evidence={"windows": [w for w, _v in series],
                          "values": [_round6(v) for v in vals],
                          "pre_mean": _round6(pre),
                          "post_mean": _round6(post),
                          "score": _round6(score)}))

    # Counter bursts over per-window deltas.
    names = sorted({name for row in rows
                    for name in (row.get("counters") or ())})
    for name in names:
        deltas = [float((row.get("counters") or {}).get(name, 0.0))
                  for row in rows]
        for idx, value, baseline in detect_counter_bursts(deltas):
            anomalies.append(Anomaly(
                kind="counter_burst", figure=figure, series=label,
                metric=name, x=float(rows[idx]["window"]),
                span=window_span(idx), direction="rise",
                severity=_round6(min(1.0, 1.0 - baseline / value)
                                 if value > 0 else 0.0),
                detail="%s bursts to %g in window %d (rolling baseline "
                       "%.4g)" % (name, value, rows[idx]["window"],
                                  baseline),
                evidence={"values": [_round6(v) for v in deltas],
                          "baseline": _round6(baseline)}))

    anomalies.sort(key=Anomaly.sort_key)
    return [a.to_dict() for a in anomalies]


# ---------------------------------------------------------------------------
# Anomaly-set diffing (runs diff A B)
# ---------------------------------------------------------------------------

def _flatten(block: Optional[Dict[str, Any]]) -> Dict[Tuple, Dict[str, Any]]:
    """Index a scorecard ``meta["anomalies"]`` block by identity key.

    The block is ``{"sweep": [...], "runs": {label: [...]}}`` (either
    part optional).  Keys are ``(scope, kind, series, metric)``; when
    one scope holds several anomalies with the same identity (two
    counters bursting twice), occurrences are numbered in order.
    """
    flat: Dict[Tuple, Dict[str, Any]] = {}
    counts: Dict[Tuple, int] = {}

    def add(scope: str, items):
        for data in items or ():
            a = Anomaly.from_dict(data)
            base = (scope,) + a.key()
            n = counts.get(base, 0)
            counts[base] = n + 1
            flat[base + (n,)] = data
    if block:
        add("sweep", block.get("sweep"))
        for run_label in sorted(block.get("runs") or {}):
            add("runs/%s" % run_label, block["runs"][run_label])
    return flat


def diff_anomaly_sets(base: Optional[Dict[str, Any]],
                      current: Optional[Dict[str, Any]],
                      *, moved_rel_tol: float = 0.0) -> Dict[str, List[str]]:
    """Compare two recorded anomaly blocks; flags are human-readable.

    Returns ``{"new": [...], "vanished": [...], "moved": [...]}``.  An
    anomaly is *new* when its identity (scope, kind, series, metric)
    only exists in ``current``, *vanished* when only in ``base``, and
    *moved* when it exists in both but at a different x-location
    (beyond ``moved_rel_tol`` of the base x).
    """
    a, b = _flatten(base), _flatten(current)
    out: Dict[str, List[str]] = {"new": [], "vanished": [], "moved": []}

    def describe(key: Tuple, data: Dict[str, Any]) -> str:
        scope = key[0]
        return "%s: %s" % (scope, Anomaly.from_dict(data))

    for key in sorted(b.keys() - a.keys()):
        out["new"].append(describe(key, b[key]))
    for key in sorted(a.keys() - b.keys()):
        out["vanished"].append(describe(key, a[key]))
    for key in sorted(a.keys() & b.keys()):
        xa, xb = float(a[key]["x"]), float(b[key]["x"])
        if abs(xb - xa) > moved_rel_tol * abs(xa):
            if xa != xb:
                out["moved"].append(
                    "%s: %s %s/%s x=%g -> x=%g"
                    % (key[0], key[1], key[2] or "-", key[3], xa, xb))
    return out
