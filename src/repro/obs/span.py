"""Per-RPC and per-message spans recorded in virtual time.

A :class:`Span` is one unit of work moving through the stack — an RPC
from ``fl_send_rpc`` to response delivery, or one wire message from
doorbell to remote-ring landing.  Spans carry *phases*: named
``(t0, t1)`` sub-intervals recorded as the work crosses each layer
(``client_queue``, ``doorbell_mmio``, ``pcie_stall``, ``wire``,
``propagation``, ``nic_rx``, ``server_queue``, ``server_handler``,
``response``).  Aggregating phase totals over a run answers the question
every figure in the paper hinges on: *where did the microseconds go?*

Spans additionally carry *wait edges*: typed ``(resource, t0, t1)``
intervals recorded whenever the work was **blocked on** something — a
credit grant, a PCIe cache-miss fetch, the shared TX port, a worker
queue.  Phases say where time was spent; edges say what the work was
waiting for, and feed the critical-path extractor in
:mod:`repro.obs.causal`.

Spans are created through a :class:`SpanLog`; the default installed on
every simulator is :data:`null_span_log`, whose ``enabled`` flag lets
hot paths skip span work entirely (producers test ``spans.enabled`` once
per message and carry ``None`` otherwise).

Virtual timestamps are passed in explicitly by callers (they all hold
``sim.now``); this module stays free of simulator imports so any layer
can use it without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Span", "SpanLog", "NullSpanLog", "null_span_log", "PHASES"]

#: Canonical phase names in stack order, used to order breakdown tables.
PHASES = (
    "client_queue",
    "doorbell_mmio",
    "nic_tx",
    "pcie_stall",
    "tx_queue",
    "wire",
    "switch_queue",
    "ecn_throttle",
    "propagation",
    "nic_rx",
    "server_queue",
    "server_handler",
    "response",
)


class Span:
    """One traced unit of work with named sub-phases in virtual time."""

    __slots__ = ("name", "track", "t0", "t1", "args", "phases", "edges",
                 "_open", "_open_waits", "pid", "_log", "_donated")

    def __init__(self, log: "SpanLog", name: str, track: str, t0: float,
                 pid: int, args: Optional[Dict[str, Any]] = None):
        self.name = name
        self.track = track
        self.t0 = t0
        self.t1: Optional[float] = None
        self.args: Dict[str, Any] = args or {}
        #: Finished sub-intervals: (phase name, t0, t1).
        self.phases: List[Tuple[str, float, float]] = []
        #: Typed wait edges: (resource, t0, t1) — what blocked this work.
        self.edges: List[Tuple[str, float, float]] = []
        self._open: Dict[str, float] = {}
        self._open_waits: Dict[str, float] = {}
        self.pid = pid
        self._log = log
        #: Phase names this span donated to an adopter via
        #: ``adopt(claim=True)``; None while the span owns everything.
        self._donated: Optional[set] = None

    # -- phases ---------------------------------------------------------

    def open(self, phase: str, t: float) -> None:
        """Begin phase ``phase`` at virtual time ``t``.

        Opening a phase that is already open closes the prior interval
        at ``t`` first, so re-opens (e.g. a second PCIe stall before the
        first was closed) never silently discard time.
        """
        prior = self._open.get(phase)
        if prior is not None:
            self.phases.append((phase, prior, t))
        self._open[phase] = t

    def close(self, phase: str, t: float) -> None:
        """End a previously opened phase (no-op if it was never opened)."""
        t0 = self._open.pop(phase, None)
        if t0 is not None:
            self.phases.append((phase, t0, t))

    def add_phase(self, phase: str, t0: float, t1: float) -> None:
        """Record a finished sub-interval directly."""
        self.phases.append((phase, t0, t1))

    def wait(self, resource: str, t0: float, t1: float) -> None:
        """Record a typed wait edge: this work was blocked on
        ``resource`` over ``[t0, t1)``.  Zero/negative intervals are
        dropped so uncontended fast paths leave no edge."""
        if t1 > t0:
            self.edges.append((resource, t0, t1))

    def wait_begin(self, resource: str, t: float) -> None:
        """Start an *open* wait edge on ``resource``.

        Use this form when the wait's end is not yet known (a PCIe fetch
        entering a backlogged queue, a contended resource acquisition):
        if the span is truncated — flushed at end of run while still
        blocked — the open wait is closed at the truncation point instead
        of vanishing, so work stuck on a collapsed resource still
        attributes its blocked time to it.
        """
        self._open_waits[resource] = t

    def wait_end(self, resource: str, t: float) -> None:
        """Close an open wait edge (no-op if it was never begun)."""
        t0 = self._open_waits.pop(resource, None)
        if t0 is not None and t > t0:
            self.edges.append((resource, t0, t))

    def bump(self, key: str, n: float = 1) -> None:
        """Increment a numeric annotation in ``args`` (e.g. miss counts)."""
        self.args[key] = self.args.get(key, 0) + n

    def adopt(self, other: "Span", phases: Optional[Iterable[str]] = None,
              claim: bool = False) -> None:
        """Copy phases and wait edges from ``other`` (e.g. a message-level
        hardware span into each member RPC's span) so per-RPC breakdowns
        include the shared hardware time.  ``phases`` restricts which
        names copy (it filters edges by resource name too).

        Intended semantics: the *adopter* becomes the reporting owner of
        the copied intervals.  With ``claim=True`` the donor records what
        it gave away, so ``SpanLog.breakdown(dedup=True)`` can skip the
        donor's copies and avoid double-counting when both spans are
        finished; the causal layer likewise drops donor spans from its
        critical-path roots.  With ``claim=False`` (the default, and the
        pre-existing behaviour) both spans keep reporting the intervals
        and phase totals intentionally double-count the shared hardware
        time — shares are fractions of *phase* time, not wall time.
        """
        wanted = None if phases is None else frozenset(phases)
        donated = set()
        for name, t0, t1 in other.phases:
            if wanted is None or name in wanted:
                self.phases.append((name, t0, t1))
                donated.add(name)
        for resource, t0, t1 in other.edges:
            if wanted is None or resource in wanted:
                self.edges.append((resource, t0, t1))
        if claim:
            if other._donated is None:
                other._donated = donated
            else:
                other._donated.update(donated)

    @property
    def is_donor(self) -> bool:
        """True once another span claimed this span's intervals."""
        return self._donated is not None

    # -- lifecycle ------------------------------------------------------

    def finish(self, t: float) -> None:
        """Close the span (and any still-open phases/waits) at ``t``."""
        if self.t1 is not None:
            return
        for phase, t0 in list(self._open.items()):
            self.phases.append((phase, t0, t))
        self._open.clear()
        for resource, t0 in list(self._open_waits.items()):
            if t > t0:
                self.edges.append((resource, t0, t))
        self._open_waits.clear()
        self.t1 = t
        self._log._finished(self)

    @property
    def duration(self) -> float:
        """Span length in ns (0 while unfinished)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def phase_total(self, phase: str) -> float:
        """Summed duration of all sub-intervals named ``phase``."""
        return sum(t1 - t0 for name, t0, t1 in self.phases if name == phase)

    def __repr__(self) -> str:
        return "Span(%s, track=%s, t0=%.0f, dur=%.0f, phases=%d)" % (
            self.name, self.track, self.t0, self.duration, len(self.phases))


class SpanLog:
    """Collects finished spans and aggregates phase-level breakdowns.

    ``max_spans`` bounds memory in long sweeps: past the cap, further
    spans are still timed by their producers but dropped on finish (the
    ``dropped`` counter makes the truncation visible).  ``run_id``
    segregates spans from successive simulator runs inside one sweep; the
    Chrome-trace exporter maps it to the ``pid`` field.

    The log also tracks *live* spans (begun, not yet finished) so an
    end-of-run :meth:`flush` can close work still stuck on a collapsed
    resource.  Without it, attribution suffers survivorship bias: the
    RPCs most damaged by a bottleneck are exactly the ones that never
    finish within the measurement window, so they would never be
    logged and the bottleneck would be *under*-represented.
    """

    enabled = True

    def __init__(self, max_spans: int = 200_000):
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self.run_id = 0
        #: Optional labels per run id (set by Telemetry.install).
        self.run_labels: Dict[int, str] = {}
        #: Live (unfinished) spans by identity, in creation order.
        self._live: Dict[int, Span] = {}
        #: Single-entry breakdown memo: (n_spans, name, dedup) -> table.
        self._bd_key: Optional[Tuple[int, Optional[str], bool]] = None
        self._bd_table: Dict[str, Dict[str, float]] = {}

    def new_run(self, label: str = "") -> int:
        """Start a new run scope; returns its id (Chrome-trace pid)."""
        self.run_id += 1
        self.run_labels[self.run_id] = label or ("run%d" % self.run_id)
        return self.run_id

    def begin(self, name: str, track: str, t: float, **args) -> Span:
        """Create a live span starting at virtual time ``t``."""
        span = Span(self, name, track, t, self.run_id or self.new_run(), args)
        self._live[id(span)] = span
        return span

    def _finished(self, span: Span) -> None:
        self._live.pop(id(span), None)
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    @property
    def live(self) -> int:
        """Number of begun-but-unfinished spans."""
        return len(self._live)

    def flush(self, t: float) -> int:
        """Finish every live span at ``t`` (the end of a run).

        Truncated spans get ``args["truncated"] = True`` and their open
        phases/waits closed at ``t``, then enter the log like any other
        finished span.  Returns how many spans were flushed.  Call this
        only once the simulator driving those spans has stopped — a
        later ``finish`` from the producer becomes a no-op.
        """
        stuck = list(self._live.values())
        for span in stuck:
            span.args["truncated"] = True
            span.finish(t)
        return len(stuck)

    def __len__(self) -> int:
        return len(self.spans)

    # -- aggregation ----------------------------------------------------

    def breakdown(self, name: Optional[str] = None,
                  dedup: bool = False) -> Dict[str, Dict[str, float]]:
        """Aggregate phase durations over finished spans.

        Returns ``{phase: {count, total_ns, mean_ns, max_ns, share}}``
        where ``share`` is the phase's fraction of all phase time.
        ``name`` restricts aggregation to spans with that name (e.g.
        only ``"rpc"`` spans).  ``dedup=True`` skips phases a donor span
        gave away through ``Span.adopt(claim=True)``, so shared hardware
        intervals count once (on the adopter) instead of twice.

        The result is memoised per finished-span count, so repeated
        queries (harness tables asking for several ``phase_share``\\ s)
        aggregate once instead of once per call.  Treat the returned
        table as read-only.
        """
        key = (len(self.spans), name, dedup)
        if key == self._bd_key:
            return self._bd_table
        totals: Dict[str, List[float]] = {}
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            donated = span._donated if dedup else None
            for phase, t0, t1 in span.phases:
                if donated is not None and phase in donated:
                    continue
                cell = totals.get(phase)
                if cell is None:
                    cell = [0, 0.0, 0.0]  # count, total, max
                    totals[phase] = cell
                dur = t1 - t0
                cell[0] += 1
                cell[1] += dur
                if dur > cell[2]:
                    cell[2] = dur
        grand = sum(cell[1] for cell in totals.values()) or 1.0
        out: Dict[str, Dict[str, float]] = {}
        for phase, (count, total, peak) in totals.items():
            out[phase] = {
                "count": count,
                "total_ns": total,
                "mean_ns": total / count if count else 0.0,
                "max_ns": peak,
                "share": total / grand,
            }
        self._bd_key = key
        self._bd_table = out
        return out

    def phase_share(self, phase: str, name: Optional[str] = None) -> float:
        """Fraction of all phase time spent in ``phase`` (0 if unseen).

        Served from the memoised breakdown: querying N phases in a row
        (as the harness tables do) costs one aggregation pass, not N.
        """
        table = self.breakdown(name)
        return table.get(phase, {}).get("share", 0.0)


class NullSpanLog:
    """Disabled span log: producers skip span creation entirely."""

    enabled = False
    #: Immutable on purpose: the null object is a process-wide singleton,
    #: so a mutable list here would leak accidental appends across runs.
    spans: Tuple[Span, ...] = ()
    dropped = 0
    run_id = 0

    def new_run(self, label: str = "") -> int:
        """No run scopes when disabled."""
        return 0

    def begin(self, name: str, track: str, t: float, **args):
        """Callers must not reach this on the disabled path; returning
        None keeps misuse loud (attribute errors) instead of silent."""
        return None

    live = 0

    def flush(self, t: float) -> int:
        """Nothing to flush when disabled."""
        return 0

    def __len__(self) -> int:
        return 0

    def breakdown(self, name: Optional[str] = None,
                  dedup: bool = False) -> Dict[str, Dict[str, float]]:
        """An empty breakdown."""
        return {}

    def phase_share(self, phase: str, name: Optional[str] = None) -> float:
        """Nothing was recorded."""
        return 0.0


#: Shared stub installed on simulators constructed without telemetry.
null_span_log = NullSpanLog()
