"""Causal wait-graph analysis: critical paths, attribution, what-if.

Phases (:mod:`repro.obs.span`) say where time was *spent*; wait edges
say what the work was *blocked on*.  Every blocking interaction in the
stack — credit exhaustion in ``flock/credits.py``, QP-scheduler holds
tracked by ``flock/qp_scheduler.py``, QP/MTT cache-miss PCIe fetches in
``hw/rnic.py``/``hw/pcie.py``, link serialisation and propagation in
``net/fabric.py``, CQ-poll delay in ``verbs/cq.py``, server-side worker
queueing in ``flock/rpc.py``, and generic ``sim/resources.py``
acquisitions — records a typed ``(resource, t0, t1)`` edge on the span
it delayed.  This module turns those edges into the answer to the one
causal question every figure in the paper reduces to: *which resource
gated the RPC?*

* :func:`critical_path` walks one finished span backward from its end
  through its longest waits-for chain, producing :class:`Segment`\\ s
  that exactly tile ``[t0, t1]`` (uncovered time is attributed to
  :data:`GAP_RESOURCE`, i.e. the CPU was making progress).
* :func:`critical_paths` extracts a path per finished root span in a
  :class:`~repro.obs.span.SpanLog` (donor spans whose intervals were
  claimed by an adopter are skipped, so shared hardware time counts
  once).
* :func:`attribute` folds paths into a blocked-time attribution table
  ``{resource: {count, total_ns, share, p99_ns}}`` whose shares sum to
  exactly 1.
* :func:`folded_stacks` exports paths in the collapsed-stack text
  format ``flamegraph.pl`` and speedscope load directly.
* :func:`what_if` zeroes one resource's critical-path contribution and
  reports the upper-bound speedup removing it could unlock — e.g.
  "removing ``pcie_stall`` waits bounds Fig. 2a post-cliff recovery at
  2.9x".

Like :mod:`repro.obs.span`, this module is import-cycle-free: it never
imports the simulator (``sim/core.py`` imports ``repro.obs`` at class
definition time), so it carries its own percentile helper.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .span import Span

__all__ = [
    "GAP_RESOURCE",
    "RESOURCES",
    "Segment",
    "CriticalPath",
    "critical_path",
    "critical_paths",
    "attribute",
    "folded_lines",
    "folded_stacks",
    "what_if",
    "what_if_all",
    "attribution_report",
    "format_attribution",
]

#: Attribution bucket for critical-path time not covered by any wait
#: edge: the work was progressing (CPU/NIC pipeline), not blocked.
GAP_RESOURCE = "cpu"

#: Canonical wait-edge resources in stack order, used to order tables.
#: Producers are free to add more (e.g. ``resource:<name>`` generics).
RESOURCES = (
    "credit_wait",    # flock/credits.py — sender out of credits (§5.1)
    "qp_hold",        # flock/rpc.py + qp_scheduler.py — QP deactivated
    "ring_space",     # flock/rpc.py — receiver ring back-pressure (§4.1)
    "server_queue",   # flock/rpc.py — ring landing → worker pop
    "pcie_stall",     # hw/rnic.py + hw/pcie.py — QP/MTT miss DMA fetch
    "nic_throttle",   # hw/rnic.py — NIC pipeline rate limiting
    "ecn_throttle",   # verbs/qp.py — DCQCN pacing after an ECN rate cut
    "pfc_pause",      # net/congestion — sender PAUSE-flow-controlled
    "tx_port",        # hw/rnic.py — shared TX port serialisation
    "wire",           # hw/rnic.py — link-bandwidth serialisation
    "switch_queue",   # net/congestion — egress output-queue backlog
    "propagation",    # net/fabric.py — switch hops + flight time
    "cq_poll",        # verbs/cq.py — CQE ready → reaped by a poller
    GAP_RESOURCE,
)

_RESOURCE_ORDER = {name: i for i, name in enumerate(RESOURCES)}


def _percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of an already sorted sequence.

    Mirrors ``repro.sim.rand.percentile`` (kept local: importing the
    simulator from ``repro.obs`` would create a cycle).
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * frac


class Segment:
    """One contiguous stretch of a critical path, blamed on a resource."""

    __slots__ = ("resource", "t0", "t1")

    def __init__(self, resource: str, t0: float, t1: float):
        self.resource = resource
        self.t0 = t0
        self.t1 = t1

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:
        return "Segment(%s, %.0f..%.0f)" % (self.resource, self.t0, self.t1)


class CriticalPath:
    """The longest waits-for chain through one finished span.

    ``segments`` are in time order and exactly tile ``[span.t0,
    span.t1]``: every nanosecond of the span's latency is blamed on
    exactly one resource (or :data:`GAP_RESOURCE` when nothing blocked
    the work).
    """

    __slots__ = ("span", "segments")

    def __init__(self, span: Span, segments: List[Segment]):
        self.span = span
        self.segments = segments

    @property
    def duration(self) -> float:
        return self.span.duration

    def resource_ns(self, resource: str) -> float:
        """Total path time attributed to ``resource``."""
        return sum(s.duration for s in self.segments
                   if s.resource == resource)

    def __repr__(self) -> str:
        return "CriticalPath(%s, dur=%.0f, segments=%d)" % (
            self.span.name, self.duration, len(self.segments))


def _resource_rank(resource: str) -> Tuple[int, str]:
    """Deterministic resource ordering: canonical stack order first,
    unknown resources after, alphabetically."""
    return (_RESOURCE_ORDER.get(resource, len(RESOURCES)), resource)


def critical_path(span: Span, gap_resource: str = GAP_RESOURCE) -> CriticalPath:
    """Extract the critical path of one finished span.

    Backward-greedy walk: starting from the span's end, repeatedly pick
    the wait edge that covers the cursor and reaches furthest back (the
    *longest* waits-for chain); where no edge covers the cursor, emit a
    gap segment back to the nearest earlier edge end.  Edges are clamped
    to ``[t0, t1]``; edges recorded entirely outside the span (e.g. a
    CQ-poll edge stamped after the initiator already finished the span)
    are ignored.  The result tiles the span exactly, so per-resource
    totals sum to the span's latency.
    """
    if span.t1 is None:
        raise ValueError("critical_path needs a finished span: %r" % (span,))
    t_begin, t_end = span.t0, span.t1
    edges = [(res, max(t0, t_begin), min(t1, t_end))
             for res, t0, t1 in span.edges]
    edges = [e for e in edges if e[2] > e[1]]
    segments: List[Segment] = []
    cursor = t_end
    while cursor > t_begin:
        best = None
        latest_end = t_begin  # nearest edge end strictly before cursor
        for res, e0, e1 in edges:
            if e0 < cursor <= e1:
                # Edge covers the cursor; prefer the one reaching
                # furthest back (the longest waits-for chain).
                if (best is None or e0 < best[1]
                        or (e0 == best[1]
                            and _resource_rank(res) < _resource_rank(best[0]))):
                    best = (res, e0, e1)
            elif e1 <= cursor and e1 > latest_end:
                latest_end = e1
        if best is not None:
            segments.append(Segment(best[0], best[1], cursor))
            cursor = best[1]
        else:
            segments.append(Segment(gap_resource, latest_end, cursor))
            cursor = latest_end
    segments.reverse()
    return CriticalPath(span, segments)


def critical_paths(log, name: Optional[str] = None,
                   run: Optional[int] = None) -> List[CriticalPath]:
    """Critical paths for every finished root span in ``log``.

    Donor spans (whose intervals another span claimed via
    ``adopt(claim=True)``) are excluded — their wait time reappears on
    the adopting RPC spans, and counting both would double-bill the
    shared hardware waits.  ``name`` restricts to spans with that name;
    ``run`` restricts to one run scope (``Span.pid``).
    """
    paths = []
    for span in log.spans:
        if span.t1 is None or span.is_donor:
            continue
        if name is not None and span.name != name:
            continue
        if run is not None and span.pid != run:
            continue
        paths.append(critical_path(span))
    return paths


def attribute(paths: Iterable[CriticalPath]) -> Dict[str, Dict[str, float]]:
    """Fold critical paths into a blocked-time attribution table.

    Returns ``{resource: {count, total_ns, share, p99_ns}}`` ordered by
    descending share (ties broken by canonical resource order), where
    ``share`` is the resource's fraction of all critical-path time —
    shares sum to exactly 1 — and ``p99_ns`` is the 99th percentile of
    individual segment durations.
    """
    durs: Dict[str, List[float]] = {}
    for path in paths:
        for seg in path.segments:
            durs.setdefault(seg.resource, []).append(seg.duration)
    grand = sum(sum(v) for v in durs.values())
    out: Dict[str, Dict[str, float]] = {}
    order = sorted(durs,
                   key=lambda r: (-sum(durs[r]), _resource_rank(r)))
    for resource in order:
        values = sorted(durs[resource])
        total = sum(values)
        out[resource] = {
            "count": len(values),
            "total_ns": total,
            "share": (total / grand) if grand else 0.0,
            "p99_ns": _percentile(values, 99.0),
        }
    return out


def folded_lines(weights: Dict[str, float]) -> str:
    """Render a ``frames -> weight`` mapping in collapsed-stack format.

    Keys are ``;``-joined frame stacks, weights are rounded to integer
    nanoseconds; lines come out sorted so identical inputs produce
    byte-identical output.  Shared by the critical-path exporter below
    and the host-time profiler (:mod:`repro.obs.simprof`).
    """
    lines = ["%s %d" % (key, int(round(weights[key])))
             for key in sorted(weights)]
    return "\n".join(lines) + ("\n" if lines else "")


def folded_stacks(paths: Iterable[CriticalPath]) -> str:
    """Collapsed-stack export: ``<span name>;<resource> <ns>`` lines.

    The format ``flamegraph.pl`` and speedscope ingest directly; frames
    are ``root span -> blocking resource``, weights are integer
    nanoseconds of critical-path time.  Lines are sorted, so identical
    runs produce byte-identical output.
    """
    weights: Dict[str, float] = {}
    for path in paths:
        prefix = path.span.name
        for seg in path.segments:
            key = "%s;%s" % (prefix, seg.resource)
            weights[key] = weights.get(key, 0.0) + seg.duration
    return folded_lines(weights)


def what_if(paths: Sequence[CriticalPath], resource: str) -> Dict[str, float]:
    """Upper-bound speedup from removing ``resource`` entirely.

    Zeroes the resource's critical-path contribution: if the run spent
    ``R`` ns of its ``T`` ns of critical-path time blocked on
    ``resource``, a closed-loop workload could at best complete the same
    work in ``T - R``, i.e. a throughput/latency improvement bounded by
    ``T / (T - R)``.  An *upper* bound because the freed time may expose
    the next bottleneck rather than convert fully into progress.
    """
    total = sum(p.duration for p in paths)
    removed = sum(p.resource_ns(resource) for p in paths)
    remaining = total - removed
    if total <= 0.0:
        bound = 1.0
    elif remaining <= 0.0:
        bound = math.inf
    else:
        bound = total / remaining
    return {"resource_ns": removed, "total_ns": total,
            "speedup_bound": bound}


def what_if_all(paths: Sequence[CriticalPath]) -> Dict[str, float]:
    """``{resource: speedup_bound}`` for every resource on the paths,
    ordered like :func:`attribute` (descending contribution)."""
    table = attribute(paths)
    return {resource: what_if(paths, resource)["speedup_bound"]
            for resource in table}


def attribution_report(paths: Sequence[CriticalPath]) -> Dict[str, object]:
    """JSON-ready bundle: path count, attribution table, what-if bounds."""
    table = attribute(paths)
    return {
        "paths": len(paths),
        "critical_path_ns": sum(p.duration for p in paths),
        "attribution": table,
        "what_if": what_if_all(paths),
    }


def format_attribution(table: Dict[str, Dict[str, float]],
                       bounds: Optional[Dict[str, float]] = None,
                       title: str = "Critical-path attribution") -> str:
    """Human-readable attribution table (shares of critical-path time).

    ``bounds`` (from :func:`what_if_all`) adds the upper-bound speedup
    from removing each resource.
    """
    headers = ["resource", "count", "total us", "share", "p99 ns"]
    if bounds is not None:
        headers.append("what-if x")
    rows = []
    for resource, cell in table.items():
        row = [resource,
               "%d" % cell["count"],
               "%.1f" % (cell["total_ns"] / 1000.0),
               "%.1f%%" % (cell["share"] * 100.0),
               "%.0f" % cell["p99_ns"]]
        if bounds is not None:
            bound = bounds.get(resource, 1.0)
            row.append("inf" if math.isinf(bound) else "%.2f" % bound)
        rows.append(row)
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(headers))))
    return "\n".join(lines)
