"""Telemetry exporters: Chrome trace-event JSON and breakdown tables.

The Chrome trace-event format (the JSON array flavour) is understood by
``chrome://tracing`` and Perfetto, which makes a simulated run visually
explorable: one *process* per simulator run, one *thread* per span track
(a client thread, a NIC, the wire), complete (``"ph": "X"``) events for
spans and their phases.  Timestamps are microseconds in the trace file —
virtual nanoseconds divided by 1000 — so a 500 µs measurement window
reads naturally in the UI.

``format_breakdown`` renders a :meth:`repro.obs.span.SpanLog.breakdown`
dict as the harness's paper-style text table.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .span import PHASES, SpanLog

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "format_breakdown",
]


def _phase_sort_key(phase: str):
    """Order phases by canonical stack position, unknown names last."""
    try:
        return (0, PHASES.index(phase))
    except ValueError:
        return (1, phase)


def chrome_trace(log: SpanLog) -> Dict[str, Any]:
    """Convert a span log to a Chrome trace-event JSON object.

    Emits one ``X`` (complete) event per span and per phase, plus ``M``
    metadata events naming processes (runs) and threads (tracks).  Events
    are sorted by timestamp so consumers see a monotonic stream.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[tuple, int] = {}
    for span in log.spans:
        key = (span.pid, span.track)
        tid = tids.get(key)
        if tid is None:
            tid = len(tids) + 1
            tids[key] = tid
            events.append({
                "name": "thread_name", "ph": "M", "pid": span.pid,
                "tid": tid, "args": {"name": span.track},
            })
        end = span.t1 if span.t1 is not None else span.t0
        events.append({
            "name": span.name, "cat": "span", "ph": "X",
            "ts": span.t0 / 1e3, "dur": (end - span.t0) / 1e3,
            "pid": span.pid, "tid": tid, "args": dict(span.args),
        })
        for phase, t0, t1 in span.phases:
            events.append({
                "name": phase, "cat": "phase", "ph": "X",
                "ts": t0 / 1e3, "dur": (t1 - t0) / 1e3,
                "pid": span.pid, "tid": tid, "args": {"span": span.name},
            })
    for run_id, label in log.run_labels.items():
        events.append({
            "name": "process_name", "ph": "M", "pid": run_id, "tid": 0,
            "args": {"name": label},
        })
    meta = [ev for ev in events if ev["ph"] == "M"]
    data = sorted((ev for ev in events if ev["ph"] != "M"),
                  key=lambda ev: (ev["pid"], ev["tid"], ev["ts"]))
    return {
        "traceEvents": meta + data,
        "displayTimeUnit": "ns",
        "otherData": {"dropped_spans": log.dropped},
    }


def write_chrome_trace(log: SpanLog, path: str) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(log), fh)


def format_breakdown(table: Dict[str, Dict[str, float]],
                     title: str = "Latency breakdown") -> str:
    """Render a phase-breakdown dict as an aligned text table.

    Phases appear in canonical stack order; unknown phases sort last
    alphabetically.  Durations print in microseconds.
    """
    header = ["phase", "count", "total us", "mean ns", "max ns", "share"]
    rows: List[List[str]] = []
    for phase in sorted(table, key=_phase_sort_key):
        cell = table[phase]
        rows.append([
            phase,
            "%d" % cell["count"],
            "%.1f" % (cell["total_ns"] / 1e3),
            "%.0f" % cell["mean_ns"],
            "%.0f" % cell["max_ns"],
            "%.1f%%" % (100.0 * cell["share"]),
        ])
    if not rows:
        rows.append(["(no spans recorded)", "", "", "", "", ""])
    widths = [max(len(header[i]), max(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines = [title,
             "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)
