"""The bench store: regression gating over committed scorecards.

``benchmarks/baselines/`` holds one committed ``BENCH_<figure>.json``
per benchmark figure.  After a fresh benchmark run writes its own
scorecards, :func:`compare_dirs` matches them up by figure and flags:

* a gated metric drifting beyond its baseline tolerance in the *worse*
  direction ("higher"-is-better metrics may only fall so far, "lower"
  only rise, "equal" may not move at all);
* a shape check that held in the baseline but fails now.

Improvements are reported but never gate.  Comparisons are skipped (not
failed) when run conditions differ — most importantly ``bench_scale``,
since scaled-down smoke runs produce numbers that are not comparable to
full-scale baselines.  The CLI front-end (``repro-bench bench-compare``)
exits nonzero iff regressions were found, which is the CI gate.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from typing import List, Optional

from .anomaly import diff_anomaly_sets
from .scorecard import Scorecard, load_scorecard

__all__ = [
    "MetricDelta",
    "CompareReport",
    "compare_scorecards",
    "compare_dirs",
]

#: Meta keys that must match between baseline and current run for the
#: comparison to be meaningful.  ``fidelity`` keeps a fluid/hybrid run
#: from being gated against a packet-model baseline (committed
#: baselines predating the key compare as before).
_GATING_META = ("bench_scale", "fidelity")


@dataclass
class MetricDelta:
    """One metric compared across runs."""

    figure: str
    name: str
    baseline: float
    current: float
    better: str
    regression: bool
    detail: str = ""

    def __str__(self) -> str:
        flag = "REGRESSION" if self.regression else "ok"
        return "%-10s %s/%s: %.4f -> %.4f (%s)%s" % (
            flag, self.figure, self.name, self.baseline, self.current,
            self.better, (" — " + self.detail) if self.detail else "")


@dataclass
class CompareReport:
    """Outcome of comparing a run against the committed baselines."""

    deltas: List[MetricDelta] = field(default_factory=list)
    #: Figure-level skips with reasons (scale mismatch, missing files).
    skipped: List[str] = field(default_factory=list)
    #: Baseline-passing shape checks that fail in the current run.
    failed_checks: List[str] = field(default_factory=list)
    #: Anomaly-set drift (new / vanished / moved anomalies) between the
    #: runs' ``meta["anomalies"]`` blocks.  Informational only — drift
    #: surfaces in :meth:`format` but never flips :attr:`ok`; the gated
    #: metrics and held checks are the contract, the anomaly diff is the
    #: explanation of *where* a regression bit.
    anomaly_flags: List[str] = field(default_factory=list)
    #: Host-cost drift (wall-clock, events/sec) between the runs'
    #: ``meta["host"]`` blocks.  Informational only — host timings are
    #: machine-dependent, so drift surfaces in :meth:`format` but never
    #: flips :attr:`ok`; committed baselines may not even carry the
    #: block (it is omitted for unprofiled legacy runs).
    host_flags: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.failed_checks

    def format(self) -> str:
        lines = ["bench-compare: %d metrics, %d regressions, "
                 "%d failed checks, %d skipped"
                 % (len(self.deltas), len(self.regressions),
                    len(self.failed_checks), len(self.skipped))]
        for d in self.deltas:
            if d.regression:
                lines.append("  " + str(d))
        for name in self.failed_checks:
            lines.append("  REGRESSION check %s now fails" % name)
        for flag in self.anomaly_flags:
            lines.append("  anomaly %s" % flag)
        for flag in self.host_flags:
            lines.append("  host %s" % flag)
        for s in self.skipped:
            lines.append("  skip %s" % s)
        if self.ok:
            lines.append("  all gated metrics within tolerance")
        return "\n".join(lines)


def _is_regression(better: str, base: float, cur: float,
                   rtol: float, atol: float) -> bool:
    tol = atol + rtol * abs(base)
    if better == "higher":
        return cur < base - tol
    if better == "lower":
        return cur > base + tol
    if better == "equal":
        return abs(cur - base) > tol
    return False  # "info" never gates


def compare_scorecards(baseline: Scorecard,
                       current: Scorecard) -> CompareReport:
    """Compare one figure's scorecards; tolerance and direction come
    from the *baseline* (the committed contract)."""
    report = CompareReport()
    for key in _GATING_META:
        b, c = baseline.meta.get(key), current.meta.get(key)
        if b is not None and c is not None and b != c:
            report.skipped.append(
                "%s: %s mismatch (baseline=%s current=%s)"
                % (baseline.figure, key, b, c))
            return report
    for bm in baseline.metrics:
        cm = current.metric(bm.name)
        if cm is None:
            report.skipped.append("%s/%s: metric missing from current run"
                                  % (baseline.figure, bm.name))
            continue
        regressed = _is_regression(bm.better, bm.value, cm.value,
                                   bm.rtol, bm.atol)
        report.deltas.append(MetricDelta(
            figure=baseline.figure, name=bm.name,
            baseline=bm.value, current=cm.value, better=bm.better,
            regression=regressed,
            detail="tolerance rtol=%g atol=%g" % (bm.rtol, bm.atol)
            if regressed else ""))
    held = {c.name for c in baseline.checks if c.passed}
    for check in current.checks:
        if not check.passed and check.name in held:
            report.failed_checks.append(
                "%s/%s%s" % (current.figure, check.name,
                             (": " + check.detail) if check.detail else ""))
    diff = diff_anomaly_sets(baseline.meta.get("anomalies"),
                             current.meta.get("anomalies"))
    for verb in ("new", "vanished", "moved"):
        for entry in diff[verb]:
            report.anomaly_flags.append(
                "%s %s: %s" % (baseline.figure, verb, entry))
    report.host_flags.extend(_host_drift(baseline, current))
    return report


def _host_drift(baseline: Scorecard, current: Scorecard) -> List[str]:
    """Informational host-cost drift between two runs' ``meta["host"]``
    blocks; empty unless both runs carry one."""
    base = baseline.meta.get("host")
    cur = current.meta.get("host")
    if not base or not cur:
        return []
    flags = []
    for name, fmt in (("wall_s", "%.2fs"), ("events_per_sec", "%.0f/s")):
        b, c = base.get(name), cur.get(name)
        if not b or c is None:
            continue
        flags.append("%s %s: %s -> %s (%+.0f%%)"
                     % (baseline.figure, name, fmt % b, fmt % c,
                        (c - b) / b * 100.0))
    return flags


def _merge(into: CompareReport, part: CompareReport) -> None:
    into.deltas.extend(part.deltas)
    into.skipped.extend(part.skipped)
    into.failed_checks.extend(part.failed_checks)
    into.anomaly_flags.extend(part.anomaly_flags)
    into.host_flags.extend(part.host_flags)


def compare_dirs(baseline_dir: str, current_dir: str,
                 figures: Optional[List[str]] = None) -> CompareReport:
    """Compare every ``BENCH_*.json`` in ``current_dir`` against its
    committed twin in ``baseline_dir``.

    Baselines with no current counterpart are recorded as skips (the
    figure was not run), not failures; unknown current figures are
    ignored (a new figure cannot regress).  ``figures`` restricts the
    comparison to the named figures.
    """
    report = CompareReport()
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if not baselines:
        report.skipped.append("no baselines in %s" % baseline_dir)
        return report
    for bpath in baselines:
        base = load_scorecard(bpath)
        if figures is not None and base.figure not in figures:
            continue
        cpath = os.path.join(current_dir, os.path.basename(bpath))
        if not os.path.exists(cpath):
            report.skipped.append("%s: not produced by this run"
                                  % base.figure)
            continue
        _merge(report, compare_scorecards(base, load_scorecard(cpath)))
    return report
