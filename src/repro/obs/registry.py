"""Typed metrics instruments and the central registry.

Every layer of the stack (RNIC caches, PCIe link, fabric, verbs queues,
FLock schedulers) exposes its hot-path statistics through three typed
instruments rather than ad-hoc attributes:

* :class:`Counter` — a monotonically increasing total (messages sent,
  cache misses, PCIe stall nanoseconds, ...),
* :class:`Gauge` — a point-in-time value, either set explicitly or backed
  by a zero-argument callable sampled at snapshot time (queue depth,
  pipeline occupancy), and
* :class:`Histogram` — a distribution with cheap online moments plus a
  bounded sample reservoir for percentiles (coalescing degree, CQ poll
  batch size).

Instruments are created through a :class:`Registry`, memoized by
``(name, labels)`` so two components asking for the same metric share one
instrument.  The default registry installed on every simulator is the
:class:`NullRegistry`, whose instruments are shared no-op singletons: the
hot paths always call ``counter.inc()`` unconditionally, and the disabled
path costs one empty method call — no branches, no allocation, no dict
lookups (components cache their instruments at construction time).

This module is intentionally dependency-free (stdlib only) so the
simulation kernel itself can import it without cycles.
"""

from __future__ import annotations

import io
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "Registry",
    "null_registry",
]


def _label_key(labels: Dict[str, Any]) -> Tuple:
    """Canonical hashable form of a label set."""
    return tuple(sorted(labels.items()))


def _format_name(name: str, labels: Dict[str, Any]) -> str:
    """Prometheus-style display name: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join("%s=%s" % (k, v) for k, v in sorted(labels.items()))
    return "%s{%s}" % (name, inner)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[Dict[str, Any]] = None):
        self.name = name
        self.labels = labels or {}
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (default 1) to the total."""
        self.value += n

    def __repr__(self) -> str:
        return "Counter(%s=%g)" % (_format_name(self.name, self.labels), self.value)


class Gauge:
    """A point-in-time value, set directly or read from a callable."""

    __slots__ = ("name", "labels", "_value", "fn")

    def __init__(self, name: str, labels: Optional[Dict[str, Any]] = None,
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.labels = labels or {}
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        """Record the current value."""
        self._value = value

    @property
    def value(self) -> float:
        """The current value (sampling the backing callable if present)."""
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def __repr__(self) -> str:
        return "Gauge(%s=%g)" % (_format_name(self.name, self.labels), self.value)


class Histogram:
    """A distribution: online count/sum/min/max plus a bounded reservoir.

    The reservoir keeps the first ``max_samples`` observations for
    percentile queries; the moments stay exact regardless.  This is a
    deliberate trade-off: simulation sweeps observe millions of values,
    and the interesting percentile structure is stable early.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "samples", "max_samples")

    def __init__(self, name: str, labels: Optional[Dict[str, Any]] = None,
                 max_samples: int = 65536):
        self.name = name
        self.labels = labels or {}
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: List[float] = []
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < self.max_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate percentile ``p`` in [0, 100] from the reservoir."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[-1]
        rank = p / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        """Count/sum/min/max/mean/p50/p99 as a plain dict."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d, mean=%g)" % (
            _format_name(self.name, self.labels), self.count, self.mean)


class Registry:
    """Central factory and store for named instruments.

    Instruments are memoized by ``(name, labels)``: asking twice returns
    the same object, so components on different nodes can either share a
    global total (no labels) or keep per-node series (e.g.
    ``registry.counter("pcie.reads", nic="server0.rnic")``).
    """

    enabled = True

    def __init__(self):
        self._counters: Dict[Tuple, Counter] = {}
        self._gauges: Dict[Tuple, Gauge] = {}
        self._histograms: Dict[Tuple, Histogram] = {}

    # -- factories ------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter ``name`` with optional labels."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = Counter(name, labels)
            self._counters[key] = inst
        return inst

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels) -> Gauge:
        """Get or create the gauge ``name``; ``fn`` backs it if given."""
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = Gauge(name, labels, fn=fn)
            self._gauges[key] = inst
        elif fn is not None:
            inst.fn = fn
        return inst

    def histogram(self, name: str, max_samples: int = 65536,
                  **labels) -> Histogram:
        """Get or create the histogram ``name`` with optional labels."""
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = Histogram(name, labels, max_samples=max_samples)
            self._histograms[key] = inst
        return inst

    # -- export ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instrument values keyed by display name."""
        return {
            "counters": {
                _format_name(c.name, c.labels): c.value
                for c in self._counters.values()
            },
            "gauges": {
                _format_name(g.name, g.labels): g.value
                for g in self._gauges.values()
            },
            "histograms": {
                _format_name(h.name, h.labels): h.summary()
                for h in self._histograms.values()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """The snapshot as flat CSV rows: type,name,field,value."""
        out = io.StringIO()
        out.write("type,name,field,value\n")
        snap = self.snapshot()
        for name in sorted(snap["counters"]):
            out.write("counter,%s,value,%g\n" % (name, snap["counters"][name]))
        for name in sorted(snap["gauges"]):
            out.write("gauge,%s,value,%g\n" % (name, snap["gauges"][name]))
        for name in sorted(snap["histograms"]):
            for field in ("count", "sum", "min", "max", "mean", "p50", "p99"):
                out.write("histogram,%s,%s,%g\n"
                          % (name, field, snap["histograms"][name][field]))
        return out.getvalue()


class NullCounter:
    """No-op counter: the disabled hot path."""

    __slots__ = ()
    value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Discard the increment."""


class NullGauge:
    """No-op gauge: the disabled hot path."""

    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""


class NullHistogram:
    """No-op histogram: the disabled hot path."""

    __slots__ = ()
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def percentile(self, p: float) -> float:
        """Nothing was recorded."""
        return 0.0

    def summary(self) -> Dict[str, float]:
        """An all-zero summary."""
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "p50": 0.0, "p99": 0.0}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry stub handing out shared no-op instruments.

    Installed on every :class:`repro.sim.Simulator` by default, so
    instrumented components can cache and call their instruments
    unconditionally at near-zero cost.
    """

    enabled = False

    def counter(self, name: str, **labels) -> NullCounter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels) -> NullGauge:
        """The shared no-op gauge (the callable is never sampled)."""
        return _NULL_GAUGE

    def histogram(self, name: str, max_samples: int = 65536,
                  **labels) -> NullHistogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """An empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: int = 2) -> str:
        """An empty JSON snapshot."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """Header-only CSV."""
        return "type,name,field,value\n"


#: Shared stub installed on simulators constructed without telemetry.
null_registry = NullRegistry()
