"""Typed metrics instruments and the central registry.

Every layer of the stack (RNIC caches, PCIe link, fabric, verbs queues,
FLock schedulers) exposes its hot-path statistics through three typed
instruments rather than ad-hoc attributes:

* :class:`Counter` — a monotonically increasing total (messages sent,
  cache misses, PCIe stall nanoseconds, ...),
* :class:`Gauge` — a point-in-time value, either set explicitly or backed
  by a zero-argument callable sampled at snapshot time (queue depth,
  pipeline occupancy), and
* :class:`Histogram` — a distribution with exact online moments plus a
  bounded-memory mergeable :class:`repro.obs.sketch.QuantileSketch` for
  percentiles (coalescing degree, CQ poll batch size, latencies).

Instruments are created through a :class:`Registry`, memoized by
``(name, labels)`` so two components asking for the same metric share one
instrument.  The default registry installed on every simulator is the
:class:`NullRegistry`, whose instruments are shared no-op singletons: the
hot paths always call ``counter.inc()`` unconditionally, and the disabled
path costs one empty method call — no branches, no allocation, no dict
lookups (components cache their instruments at construction time).

This module is intentionally dependency-free (stdlib only) so the
simulation kernel itself can import it without cycles.
"""

from __future__ import annotations

import io
import json
from typing import Any, Callable, Dict, Optional, Tuple

from .sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "Registry",
    "SUMMARY_KEYS",
    "null_registry",
]

#: The shared summary schema: every histogram summary — live or null —
#: carries exactly these keys in this order, and ``to_csv`` emits one
#: row per key.  A test pins live and null implementations in lockstep.
SUMMARY_KEYS = ("count", "sum", "min", "max", "mean", "p50", "p99", "p999")


def _zero_summary() -> Dict[str, float]:
    """The canonical all-zero summary (count is an int, rest floats)."""
    out: Dict[str, float] = {}
    for key in SUMMARY_KEYS:
        out[key] = 0 if key == "count" else 0.0
    return out


def _label_key(labels: Dict[str, Any]) -> Tuple:
    """Canonical hashable form of a label set."""
    return tuple(sorted(labels.items()))


def _format_name(name: str, labels: Dict[str, Any]) -> str:
    """Prometheus-style display name: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join("%s=%s" % (k, v) for k, v in sorted(labels.items()))
    return "%s{%s}" % (name, inner)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[Dict[str, Any]] = None):
        self.name = name
        self.labels = labels or {}
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (default 1) to the total."""
        self.value += n

    def __repr__(self) -> str:
        return "Counter(%s=%g)" % (_format_name(self.name, self.labels), self.value)


class Gauge:
    """A point-in-time value, set directly or read from a callable."""

    __slots__ = ("name", "labels", "_value", "fn")

    def __init__(self, name: str, labels: Optional[Dict[str, Any]] = None,
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.labels = labels or {}
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        """Record the current value."""
        self._value = value

    @property
    def value(self) -> float:
        """The current value (sampling the backing callable if present)."""
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def __repr__(self) -> str:
        return "Gauge(%s=%g)" % (_format_name(self.name, self.labels), self.value)


class Histogram:
    """A distribution: exact count/sum/min/max plus a mergeable sketch.

    Percentiles come from a bounded-memory
    :class:`repro.obs.sketch.QuantileSketch` (<=1% relative error at
    every rank), replacing the seed-era first-N sample buffer whose
    percentiles were biased toward the start of the run.  Because the
    sketch merges exactly, parallel sweep workers can ship their
    histograms back and the merged percentiles are identical to a
    single-process run.

    ``max_samples`` is accepted for backward compatibility and ignored:
    the sketch's memory is bounded by its bucket count, not a sample
    cap.
    """

    __slots__ = ("name", "labels", "sketch")

    def __init__(self, name: str, labels: Optional[Dict[str, Any]] = None,
                 max_samples: int = 65536,
                 relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY):
        self.name = name
        self.labels = labels or {}
        self.sketch = QuantileSketch(relative_accuracy)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sketch.observe(value)

    @property
    def count(self) -> int:
        """Exact number of observations."""
        return self.sketch.count

    @property
    def total(self) -> float:
        """Exact sum of all observations."""
        return self.sketch.total

    @property
    def min(self) -> float:
        """Exact minimum (inf when empty)."""
        return self.sketch.min

    @property
    def max(self) -> float:
        """Exact maximum (-inf when empty)."""
        return self.sketch.max

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.sketch.mean

    def percentile(self, p: float) -> float:
        """Percentile ``p`` in [0, 100]; exact at the endpoints, within
        the sketch's relative-error bound everywhere else."""
        if not self.sketch.count:
            return 0.0
        if p <= 0:
            return self.sketch.min
        if p >= 100:
            return self.sketch.max
        return self.sketch.percentile(p)

    def summary(self) -> Dict[str, float]:
        """The :data:`SUMMARY_KEYS` schema as a plain dict."""
        if not self.sketch.count:
            return _zero_summary()
        return {
            "count": self.sketch.count,
            "sum": self.sketch.total,
            "min": self.sketch.min,
            "max": self.sketch.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's sketch into this one (exact)."""
        self.sketch.merge(other.sketch)
        return self

    def state(self) -> dict:
        """Picklable full state (see :meth:`QuantileSketch.to_dict`)."""
        return self.sketch.to_dict()

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`state` snapshot into this histogram."""
        self.sketch.merge(QuantileSketch.from_dict(state))

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d, mean=%g)" % (
            _format_name(self.name, self.labels), self.count, self.mean)


class Registry:
    """Central factory and store for named instruments.

    Instruments are memoized by ``(name, labels)``: asking twice returns
    the same object, so components on different nodes can either share a
    global total (no labels) or keep per-node series (e.g.
    ``registry.counter("pcie.reads", nic="server0.rnic")``).
    """

    enabled = True

    def __init__(self):
        self._counters: Dict[Tuple, Counter] = {}
        self._gauges: Dict[Tuple, Gauge] = {}
        self._histograms: Dict[Tuple, Histogram] = {}

    # -- factories ------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter ``name`` with optional labels."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = Counter(name, labels)
            self._counters[key] = inst
        return inst

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels) -> Gauge:
        """Get or create the gauge ``name``; ``fn`` backs it if given."""
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = Gauge(name, labels, fn=fn)
            self._gauges[key] = inst
        elif fn is not None:
            inst.fn = fn
        return inst

    def histogram(self, name: str, max_samples: int = 65536,
                  **labels) -> Histogram:
        """Get or create the histogram ``name`` with optional labels."""
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = Histogram(name, labels, max_samples=max_samples)
            self._histograms[key] = inst
        return inst

    # -- export ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instrument values keyed by display name."""
        return {
            "counters": {
                _format_name(c.name, c.labels): c.value
                for c in self._counters.values()
            },
            "gauges": {
                _format_name(g.name, g.labels): g.value
                for g in self._gauges.values()
            },
            "histograms": {
                _format_name(h.name, h.labels): h.summary()
                for h in self._histograms.values()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """The snapshot as flat CSV rows: type,name,field,value."""
        out = io.StringIO()
        out.write("type,name,field,value\n")
        snap = self.snapshot()
        for name in sorted(snap["counters"]):
            out.write("counter,%s,value,%g\n" % (name, snap["counters"][name]))
        for name in sorted(snap["gauges"]):
            out.write("gauge,%s,value,%g\n" % (name, snap["gauges"][name]))
        for name in sorted(snap["histograms"]):
            for field in SUMMARY_KEYS:
                out.write("histogram,%s,%s,%g\n"
                          % (name, field, snap["histograms"][name][field]))
        return out.getvalue()

    # -- cross-process state --------------------------------------------

    def export_state(self) -> dict:
        """A picklable snapshot of every instrument's *full* state.

        Unlike :meth:`snapshot` (display names, summarized histograms),
        this keeps the ``(name, labels)`` keys and the complete sketch
        buckets, so a worker process can ship its registry across a
        pickle boundary and the parent can :meth:`merge_state` it
        without losing percentile resolution.  Gauges are sampled (their
        backing callables cannot travel between processes).
        """
        return {
            "counters": [(c.name, key[1], c.value)
                         for key, c in self._counters.items()],
            "gauges": [(g.name, key[1], g.value)
                       for key, g in self._gauges.items()],
            "histograms": [(h.name, key[1], h.state())
                           for key, h in self._histograms.items()],
        }

    def merge_state(self, state: dict) -> None:
        """Fold an :meth:`export_state` snapshot into this registry.

        Counters add, histogram sketches merge bucket-exactly, gauges
        take the incoming value (so folding worker states in input
        order leaves the last sweep point's gauge values — the same
        values a serial run would report at the end).  Merging is
        deterministic given the fold order; the parallel sweep executor
        folds worker states in input order.
        """
        for name, lbl, value in state["counters"]:
            self.counter(name, **dict(lbl)).value += value
        for name, lbl, value in state["gauges"]:
            self.gauge(name, **dict(lbl)).set(value)
        for name, lbl, hstate in state["histograms"]:
            self.histogram(name, **dict(lbl)).merge_state(hstate)


class NullCounter:
    """No-op counter: the disabled hot path."""

    __slots__ = ()
    value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Discard the increment."""


class NullGauge:
    """No-op gauge: the disabled hot path."""

    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""


class NullHistogram:
    """No-op histogram: the disabled hot path."""

    __slots__ = ()
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def percentile(self, p: float) -> float:
        """Nothing was recorded."""
        return 0.0

    def summary(self) -> Dict[str, float]:
        """An all-zero summary over the shared :data:`SUMMARY_KEYS`."""
        return _zero_summary()


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry stub handing out shared no-op instruments.

    Installed on every :class:`repro.sim.Simulator` by default, so
    instrumented components can cache and call their instruments
    unconditionally at near-zero cost.
    """

    enabled = False

    def counter(self, name: str, **labels) -> NullCounter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels) -> NullGauge:
        """The shared no-op gauge (the callable is never sampled)."""
        return _NULL_GAUGE

    def histogram(self, name: str, max_samples: int = 65536,
                  **labels) -> NullHistogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """An empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: int = 2) -> str:
        """An empty JSON snapshot."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """Header-only CSV."""
        return "type,name,field,value\n"


#: Shared stub installed on simulators constructed without telemetry.
null_registry = NullRegistry()
