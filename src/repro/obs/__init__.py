"""Full-stack observability: spans, metrics, and trace export.

Three pillars, all opt-in and near-zero-cost when disabled:

* **Per-RPC spans** (:mod:`repro.obs.span`) — every RPC and every wire
  message can carry a :class:`Span` through client enqueue → doorbell
  MMIO → RNIC processing (with cache-miss/PCIe-stall sub-phases) → wire
  → server queue → handler → response, recorded in virtual time and
  aggregated into phase-level latency breakdowns.
* **Metrics registry** (:mod:`repro.obs.registry`) — typed
  counters/gauges/histograms wired into the hot paths of the RNIC, PCIe,
  fabric, verbs, and FLock layers; the default :class:`NullRegistry`
  hands out shared no-op instruments so the uninstrumented path costs
  one empty method call.
* **Export** (:mod:`repro.obs.export`) — Chrome trace-event JSON
  (loadable in Perfetto / ``chrome://tracing``) plus metrics snapshots
  as JSON/CSV, surfaced on the CLI as ``--trace`` / ``--metrics`` /
  ``--breakdown``.

On top of the pillars sit the **auditors** (:mod:`repro.obs.audit`) —
end-of-run invariant checks (Little's law per queue, byte/CQE/credit
conservation, cache accounting) cross-validating structural component
counters against the registry — and the **scorecards / bench store**
(:mod:`repro.obs.scorecard`, :mod:`repro.obs.benchstore`): per-figure
``BENCH_*.json`` fidelity records compared against committed baselines
to gate CI on regressions.

See ``docs/observability.md`` for the span model, metric names by layer,
and CLI usage.
"""

from . import faults
from .anomaly import (
    Anomaly,
    detect_changepoints,
    detect_cliffs,
    detect_counter_bursts,
    detect_knees,
    detect_run_anomalies,
    detect_sweep_anomalies,
    diff_anomaly_sets,
    severity_label,
)
from .audit import (
    AuditContext,
    AuditError,
    AuditReport,
    Violation,
    audit_enabled,
    run_audit,
)
from .benchstore import CompareReport, MetricDelta, compare_dirs, compare_scorecards
from .causal import (
    GAP_RESOURCE,
    RESOURCES,
    CriticalPath,
    Segment,
    attribute,
    attribution_report,
    critical_path,
    critical_paths,
    folded_lines,
    folded_stacks,
    format_attribution,
    what_if,
    what_if_all,
)
from .explain import (
    Explanation,
    attribution_blocks,
    explain_between,
    explain_changepoint,
    explain_sweep_anomalies,
    format_explanation,
    shift_table,
    top_shift,
)
from .export import chrome_trace, format_breakdown, write_chrome_trace
from .occupancy import OccupancyTracker, occupancy_enabled
from .registry import (
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    null_registry,
)
from .runstore import RunRecord, RunStore, default_store_dir
from .scorecard import Check, Metric, Scorecard, load_scorecard
from .simprof import SimProfile, component_bucket, profile_enabled
from .sketch import QuantileSketch
from .span import PHASES, NullSpanLog, Span, SpanLog, null_span_log
from .telemetry import Telemetry, current_telemetry, disable, enable
from .windows import SloThresholds, SloTimeline

__all__ = [
    "Anomaly",
    "AuditContext",
    "AuditError",
    "AuditReport",
    "Check",
    "Explanation",
    "CompareReport",
    "Counter",
    "CriticalPath",
    "GAP_RESOURCE",
    "Metric",
    "MetricDelta",
    "RESOURCES",
    "Scorecard",
    "Segment",
    "Violation",
    "attribute",
    "attribution_blocks",
    "attribution_report",
    "audit_enabled",
    "compare_dirs",
    "compare_scorecards",
    "critical_path",
    "critical_paths",
    "default_store_dir",
    "detect_changepoints",
    "detect_cliffs",
    "detect_counter_bursts",
    "detect_knees",
    "detect_run_anomalies",
    "detect_sweep_anomalies",
    "diff_anomaly_sets",
    "explain_between",
    "explain_changepoint",
    "explain_sweep_anomalies",
    "faults",
    "format_explanation",
    "severity_label",
    "shift_table",
    "top_shift",
    "folded_lines",
    "folded_stacks",
    "format_attribution",
    "load_scorecard",
    "component_bucket",
    "occupancy_enabled",
    "profile_enabled",
    "run_audit",
    "what_if",
    "what_if_all",
    "Gauge",
    "Histogram",
    "NullRegistry",
    "NullSpanLog",
    "OccupancyTracker",
    "PHASES",
    "QuantileSketch",
    "Registry",
    "RunRecord",
    "RunStore",
    "SimProfile",
    "SloThresholds",
    "SloTimeline",
    "Span",
    "SpanLog",
    "Telemetry",
    "chrome_trace",
    "current_telemetry",
    "disable",
    "enable",
    "format_breakdown",
    "null_registry",
    "null_span_log",
    "write_chrome_trace",
]
