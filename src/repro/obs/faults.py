"""Test-only fault injection for auditor mutation tests.

An auditor that never fires is untested: to prove each invariant check
can actually catch the bug class it guards against, the test suite seeds
deliberate accounting bugs (drop a credit refill, leak a CQE,
double-count a cache hit) and asserts the matching auditor — and only
that auditor — reports a violation.

The hook is a module-level set of active fault names.  Instrumented
sites guard with ``if ACTIVE and "name" in ACTIVE`` so the production
path costs one truthiness test of an (almost always) empty set.  Faults
are only ever enabled deliberately: by tests, or by the CLI honoring
the ``REPRO_FAULTS`` environment variable (a comma-separated fault
list) — which CI uses to manufacture a known-bad run for the run-store
regression gate.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Set

__all__ = ["ACTIVE", "FAULT_NAMES", "FAULTS_ENV", "clear", "inject",
           "inject_from_env", "injected", "is_active"]

#: Environment variable naming faults to activate (comma-separated).
FAULTS_ENV = "REPRO_FAULTS"

#: Names of every fault site wired into the stack; ``inject`` rejects
#: unknown names so a typo cannot silently test nothing.
FAULT_NAMES = frozenset({
    # flock/credits.py: a grant arrives but the credits are never added.
    "credits.drop_refill",
    # verbs/qp.py: a signaled send completion is counted but never
    # DMA-ed into the CQ.
    "verbs.leak_cqe",
    # hw/rnic.py: a QP-cache hit increments the metrics counter twice.
    "rnic.double_count_hit",
    # harness/microbench.py: the echo handler cost steps up 25x halfway
    # through the measurement window — a manufactured latency
    # changepoint the anomaly detectors must catch (CI's known-bad run).
    "bench.step_handler_cost",
})

#: The currently active fault names (empty in production).
ACTIVE: Set[str] = set()


def inject(name: str) -> None:
    """Activate the fault ``name`` (must be a known fault site)."""
    if name not in FAULT_NAMES:
        raise ValueError("unknown fault %r (known: %s)"
                         % (name, ", ".join(sorted(FAULT_NAMES))))
    ACTIVE.add(name)


def clear(name: str = None) -> None:
    """Deactivate ``name``, or every fault when called without one."""
    if name is None:
        ACTIVE.clear()
    else:
        ACTIVE.discard(name)


def inject_from_env() -> List[str]:
    """Activate every fault named in ``REPRO_FAULTS``; returns the names
    activated (empty when the variable is unset).  Unknown names raise,
    exactly like :func:`inject` — a typo'd CI perturbation that silently
    injected nothing would defeat the regression gate it exists for."""
    names = [n.strip() for n in
             os.environ.get(FAULTS_ENV, "").split(",") if n.strip()]
    for name in names:
        inject(name)
    return names


def is_active(name: str) -> bool:
    """True when the fault ``name`` is currently injected."""
    return name in ACTIVE


@contextmanager
def injected(*names: str) -> Iterator[None]:
    """Context manager activating ``names`` for the enclosed block."""
    for name in names:
        inject(name)
    try:
        yield
    finally:
        for name in names:
            ACTIVE.discard(name)
