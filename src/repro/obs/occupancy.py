"""Resource occupancy timelines: per-window busy fractions and depths.

End-to-end latency says a run got slow; occupancy says *which resource*
was saturated while it did (the Collie lesson — anomaly hunting needs
per-resource signals).  An :class:`OccupancyTracker` keeps, for every
registered series, a per-virtual-time-window accumulation over the same
window grid as :class:`repro.obs.windows.SloTimeline` — so occupancy
heatmaps, census heatmaps, and SLO timelines all share columns.

Three series kinds cover every resource in the model:

* ``level`` — an integer level that steps up and down (inflight DMA
  reads, outstanding fabric transfers, CQ depth, credits in use, active
  QPs).  The tracker integrates level·dt into each window: *mean* is
  time-weighted average depth, *peak* the high-water mark, and —
  when the series has a capacity — *busy_frac* is mean/capacity.
* ``busy`` — explicit busy intervals for serially-reused resources
  (switch egress ports): *busy_frac* is the fraction of the window the
  resource was transmitting.
* ``sample`` — point samples (queue depth in bytes at enqueue): *mean*
  and *peak* over the window's samples.

The tracker is passive: components push transitions into it from their
existing code paths, gated by a cached ``self._occ`` reference exactly
like the ``self._obs`` metrics gating — off means one ``is None`` test
per call site, and **nothing** here schedules events or touches RNG, so
enabling occupancy never changes simulation results.

Enable with ``REPRO_OCCUPANCY=1`` or the ``--occupancy`` / ``--profile``
CLI flags; the harness installs the tracker on ``sim.occupancy``
*before* the cluster is built (components cache the reference at
construction, like telemetry).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from .windows import windows_per_run

__all__ = [
    "OCCUPANCY_ENV",
    "OccupancyTracker",
    "occupancy_enabled",
]

#: Environment switch (``--occupancy`` and ``--profile`` set it).
OCCUPANCY_ENV = "REPRO_OCCUPANCY"

_TRUTHY = ("1", "true", "yes", "on")


def occupancy_enabled(default: bool = False) -> bool:
    """True when ``REPRO_OCCUPANCY`` is set truthy."""
    raw = os.environ.get(OCCUPANCY_ENV)
    if raw is None:
        return default
    return raw.strip().lower() in _TRUTHY


class _Series:
    """One resource's accumulating per-window state."""

    __slots__ = ("kind", "capacity", "level", "since", "area", "peak",
                 "sum", "count")

    def __init__(self, kind: str, n_windows: int, t0: float,
                 capacity: Optional[float]):
        self.kind = kind
        self.capacity = capacity
        self.level = 0.0
        self.since = t0
        #: integrated level·dt (ns) per window (``level``/``busy``).
        self.area = [0.0] * n_windows
        #: high-water mark per window.
        self.peak = [0.0] * n_windows
        #: point-sample accumulators (``sample`` kind only).
        self.sum = [0.0] * n_windows
        self.count = [0] * n_windows


class OccupancyTracker:
    """Per-window occupancy over the measurement span ``[t0, t1)``.

    Activity outside the span is clipped away — warmup and drain do not
    pollute the heatmap.
    """

    def __init__(self, t0: float, t1: float,
                 n_windows: Optional[int] = None):
        if t1 <= t0:
            raise ValueError("empty occupancy span")
        self.t0 = t0
        self.t1 = t1
        self.n_windows = n_windows if n_windows else windows_per_run()
        self.window_ns = (t1 - t0) / self.n_windows
        self._series: Dict[str, _Series] = {}
        self._finished = False

    # -- series management ----------------------------------------------

    def _get(self, name: str, kind: str,
             capacity: Optional[float]) -> _Series:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = _Series(kind, self.n_windows,
                                             self.t0, capacity)
        elif capacity is not None and s.capacity is None:
            s.capacity = capacity
        return s

    def _window_of(self, t: float) -> int:
        idx = int((t - self.t0) / self.window_ns)
        if idx < 0:
            return 0
        if idx >= self.n_windows:
            return self.n_windows - 1
        return idx

    def _spread(self, s: _Series, a: float, b: float,
                value: float) -> None:
        """Integrate ``value`` over [a, b) clipped to the span, into the
        series' area bins; bump peaks for every covered window."""
        a = max(a, self.t0)
        b = min(b, self.t1)
        if b <= a:
            return
        i0 = self._window_of(a)
        i1 = self._window_of(b) if b < self.t1 else self.n_windows - 1
        area = s.area
        peak = s.peak
        for i in range(i0, i1 + 1):
            w_start = self.t0 + i * self.window_ns
            w_end = w_start + self.window_ns
            overlap = min(b, w_end) - max(a, w_start)
            if overlap <= 0:
                continue
            area[i] += value * overlap
            if value > peak[i]:
                peak[i] = value

    def _close_level(self, s: _Series, now: float) -> None:
        """Integrate the current level up to ``now``."""
        if now > s.since:
            if s.level:
                self._spread(s, s.since, now, s.level)
            s.since = now

    # -- recording primitives (component hook API) ----------------------

    def add(self, name: str, now: float, delta: float,
            capacity: Optional[float] = None) -> None:
        """Step a level series by ``delta`` at virtual time ``now``."""
        s = self._get(name, "level", capacity)
        self._close_level(s, now)
        s.level += delta
        if self.t0 <= now < self.t1:
            idx = self._window_of(now)
            if s.level > s.peak[idx]:
                s.peak[idx] = s.level

    def set_level(self, name: str, now: float, level: float,
                  capacity: Optional[float] = None) -> None:
        """Set a level series to an absolute value at ``now``."""
        s = self._get(name, "level", capacity)
        self._close_level(s, now)
        s.level = float(level)
        if self.t0 <= now < self.t1:
            idx = self._window_of(now)
            if s.level > s.peak[idx]:
                s.peak[idx] = s.level

    def busy(self, name: str, start: float, end: float) -> None:
        """Record a busy interval [start, end) for a serial resource."""
        if end <= start:
            return
        s = self._get(name, "busy", 1.0)
        self._spread(s, start, end, 1.0)

    def sample(self, name: str, now: float, value: float,
               capacity: Optional[float] = None) -> None:
        """Record a point sample (e.g. queue depth at enqueue time)."""
        if not (self.t0 <= now < self.t1):
            return
        s = self._get(name, "sample", capacity)
        idx = self._window_of(now)
        s.sum[idx] += value
        s.count[idx] += 1
        if value > s.peak[idx]:
            s.peak[idx] = value

    # -- reporting ------------------------------------------------------

    def finish(self, now: float) -> None:
        """Close out level integration at end of run.  Idempotent."""
        if self._finished:
            return
        self._finished = True
        for s in self._series.values():
            if s.kind == "level":
                self._close_level(s, max(now, s.since))

    def report(self) -> Dict[str, Any]:
        """Heatmap-ready JSON: one row per series, per-window ``mean`` /
        ``peak`` / ``busy_frac`` columns sharing the SLO window grid."""
        rows: List[Dict[str, Any]] = []
        w = self.window_ns
        for name in sorted(self._series):
            s = self._series[name]
            if s.kind == "sample":
                mean = [round(s.sum[i] / s.count[i], 6) if s.count[i]
                        else None for i in range(self.n_windows)]
            else:
                mean = [round(s.area[i] / w, 6)
                        for i in range(self.n_windows)]
            row: Dict[str, Any] = {
                "name": name,
                "kind": s.kind,
                "capacity": s.capacity,
                "mean": mean,
                "peak": [round(p, 6) for p in s.peak],
            }
            if s.capacity:
                row["busy_frac"] = [
                    round(m / s.capacity, 6) if m is not None else None
                    for m in mean]
            rows.append(row)
        return {
            "t0_ns": self.t0,
            "t1_ns": self.t1,
            "window_ns": w,
            "n_windows": self.n_windows,
            "series": rows,
        }
