"""Virtual-time-windowed SLO tracking.

End-of-run aggregates hide trajectories: a run whose p99 is fine for
90% of the window and collapses in the last tenth reports the same
single number as a uniformly mediocre one.  A :class:`SloTimeline`
splits the measurement window into fixed-width *virtual-time* windows
and keeps, per window:

* a mergeable :class:`repro.obs.sketch.QuantileSketch` of completion
  latencies → per-window p50/p99/p999,
* the completed-op count → per-window goodput (Mops),
* deltas of registered cumulative *counter sources* (ECN marks, PFC
  pauses, switch drops, ...) sampled at window rollover.

Windows advance with the observations themselves — no simulator events
are scheduled, no RNG is touched, so attaching a timeline never changes
a run's results (the serial-vs-parallel byte-identity contract keeps
holding).  Counter sources are sampled when the first observation of a
later window arrives (and once more at :meth:`SloTimeline.finish`); a
delta spanning several silent windows is attributed to the last closed
window, which is exact whenever ops complete every window and
conservative otherwise.

Thresholds turn timelines into *SLO violation events*: every window
whose p50/p99/p999 exceeds its bound — or whose goodput falls below the
floor — emits an event carrying the window's virtual timestamps.  The
default thresholds come from the environment so CI and long soak runs
can arm them without threading parameters::

    REPRO_SLO_WINDOWS=12        # windows per measurement window (default 8)
    REPRO_SLO_P50_US=5          # optional per-window latency bounds
    REPRO_SLO_P99_US=50
    REPRO_SLO_P999_US=200
    REPRO_SLO_MIN_MOPS=0.5      # optional per-window goodput floor

Every figure runner attaches a timeline to its
:class:`repro.harness.metrics.Recorder`; the report rides on
:class:`repro.harness.metrics.RunResult` as plain JSON-safe data, lands
in scorecard ``meta["slo"]`` blocks, and exports via the CLI's
``--slo-timeline FILE``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .sketch import QuantileSketch

__all__ = [
    "SloThresholds",
    "SloTimeline",
    "attach_switch_sources",
    "slo_timeline",
    "windows_per_run",
]

#: Environment knobs (see module docstring).
WINDOWS_ENV = "REPRO_SLO_WINDOWS"
P50_ENV = "REPRO_SLO_P50_US"
P99_ENV = "REPRO_SLO_P99_US"
P999_ENV = "REPRO_SLO_P999_US"
MIN_MOPS_ENV = "REPRO_SLO_MIN_MOPS"

#: Default number of windows a measurement window is split into.
DEFAULT_WINDOWS = 8


def _env_float(name: str) -> Optional[float]:
    """Parse an optional float env var; unset or invalid means None."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def windows_per_run(default: int = DEFAULT_WINDOWS) -> int:
    """The configured window count per measurement window (>= 1)."""
    raw = os.environ.get(WINDOWS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, default)


@dataclass
class SloThresholds:
    """Per-window SLO bounds; ``None`` disarms a bound."""

    p50_us: Optional[float] = None
    p99_us: Optional[float] = None
    p999_us: Optional[float] = None
    #: Per-window goodput floor in Mops; windows below it violate.
    min_goodput_mops: Optional[float] = None

    @classmethod
    def from_env(cls) -> "SloThresholds":
        """Thresholds armed via the ``REPRO_SLO_*`` environment vars."""
        return cls(p50_us=_env_float(P50_ENV), p99_us=_env_float(P99_ENV),
                   p999_us=_env_float(P999_ENV),
                   min_goodput_mops=_env_float(MIN_MOPS_ENV))

    @property
    def armed(self) -> bool:
        """True when at least one bound is set."""
        return any(v is not None for v in (
            self.p50_us, self.p99_us, self.p999_us, self.min_goodput_mops))

    def to_dict(self) -> Dict[str, Optional[float]]:
        """JSON-safe form (only used when armed)."""
        return {"p50_us": self.p50_us, "p99_us": self.p99_us,
                "p999_us": self.p999_us,
                "min_goodput_mops": self.min_goodput_mops}


class _Window:
    """One window's accumulating state."""

    __slots__ = ("ops", "sketch", "counters")

    def __init__(self):
        self.ops = 0
        self.sketch: Optional[QuantileSketch] = None
        self.counters: Dict[str, float] = {}


class SloTimeline:
    """Windowed latency/goodput/counter tracking over [t0, t1)."""

    def __init__(self, t0: float, t1: float,
                 n_windows: Optional[int] = None,
                 thresholds: Optional[SloThresholds] = None,
                 relative_accuracy: float = 0.01):
        if t1 <= t0:
            raise ValueError("empty SLO window span")
        self.t0 = t0
        self.t1 = t1
        self.n_windows = n_windows if n_windows else windows_per_run()
        self.window_ns = (t1 - t0) / self.n_windows
        self.thresholds = (thresholds if thresholds is not None
                           else SloThresholds.from_env())
        self.relative_accuracy = relative_accuracy
        self._windows: Dict[int, _Window] = {}
        self._sources: Dict[str, Callable[[], float]] = {}
        self._last_sample: Dict[str, float] = {}
        self._cursor = 0
        self._finished = False

    # -- wiring ---------------------------------------------------------

    def add_source(self, name: str, fn: Callable[[], float]) -> None:
        """Register a cumulative counter callable; per-window deltas are
        recorded at rollover.  Must be added before the run starts."""
        self._sources[name] = fn
        self._last_sample[name] = float(fn())

    # -- recording ------------------------------------------------------

    def _window(self, idx: int) -> _Window:
        win = self._windows.get(idx)
        if win is None:
            win = self._windows[idx] = _Window()
        return win

    def _sample_sources(self, into_idx: int) -> None:
        """Record each source's delta since the last sample into window
        ``into_idx``."""
        if not self._sources:
            return
        win = self._window(into_idx)
        for name, fn in self._sources.items():
            now_val = float(fn())
            delta = now_val - self._last_sample[name]
            self._last_sample[name] = now_val
            win.counters[name] = win.counters.get(name, 0.0) + delta

    def _advance(self, idx: int) -> None:
        """Close windows behind ``idx``; counter deltas land in the last
        closed window."""
        if idx > self._cursor:
            self._sample_sources(idx - 1)
            self._cursor = idx

    def observe(self, now: float, latency_ns: float) -> None:
        """Record one completed op at virtual time ``now`` with the
        given latency.  Ops outside [t0, t1) are ignored."""
        if self._finished or not (self.t0 <= now < self.t1):
            return
        idx = int((now - self.t0) / self.window_ns)
        if idx >= self.n_windows:  # float edge at t1
            idx = self.n_windows - 1
        self._advance(idx)
        win = self._window(idx)
        win.ops += 1
        if win.sketch is None:
            win.sketch = QuantileSketch(self.relative_accuracy)
        win.sketch.observe(latency_ns)

    def finish(self) -> None:
        """Close out the timeline (samples sources one final time into
        the last window).  Idempotent."""
        if self._finished:
            return
        self._sample_sources(self.n_windows - 1)
        self._finished = True

    # -- reporting ------------------------------------------------------

    def _violations(self, rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Threshold sweep over the computed window rows."""
        th = self.thresholds
        if not th.armed:
            return []
        events: List[Dict[str, Any]] = []

        def emit(row, metric, value, bound):
            events.append({
                "window": row["window"], "t0_ns": row["t0_ns"],
                "t1_ns": row["t1_ns"], "metric": metric,
                "value": value, "threshold": bound,
            })

        for row in rows:
            for metric, bound in (("p50_us", th.p50_us),
                                  ("p99_us", th.p99_us),
                                  ("p999_us", th.p999_us)):
                value = row[metric]
                if bound is not None and value is not None and value > bound:
                    emit(row, metric, value, bound)
            if (th.min_goodput_mops is not None
                    and row["goodput_mops"] < th.min_goodput_mops):
                emit(row, "goodput_mops", row["goodput_mops"],
                     th.min_goodput_mops)
        return events

    def report(self) -> Dict[str, Any]:
        """The timeline as plain JSON-safe data (finishes first).

        Returns ``{"window_ns", "t0_ns", "t1_ns", "windows": [...],
        "violations": [...]}`` (+ ``"thresholds"`` when armed); one row
        per window with ops, goodput_mops, p50/p99/p999_us (None when
        the window saw no completions) and per-window counter deltas.
        """
        self.finish()
        rows: List[Dict[str, Any]] = []
        for idx in range(self.n_windows):
            win = self._windows.get(idx)
            ops = win.ops if win else 0
            row: Dict[str, Any] = {
                "window": idx,
                "t0_ns": self.t0 + idx * self.window_ns,
                "t1_ns": self.t0 + (idx + 1) * self.window_ns,
                "ops": ops,
                "goodput_mops": round(ops / self.window_ns * 1e3, 6),
            }
            for key, p in (("p50_us", 50.0), ("p99_us", 99.0),
                           ("p999_us", 99.9)):
                row[key] = (round(win.sketch.percentile(p) / 1e3, 4)
                            if win is not None and win.sketch is not None
                            else None)
            if win is not None and win.counters:
                row["counters"] = {k: win.counters[k]
                                   for k in sorted(win.counters)}
            rows.append(row)
        out: Dict[str, Any] = {
            "window_ns": self.window_ns,
            "t0_ns": self.t0,
            "t1_ns": self.t1,
            "windows": rows,
            "violations": self._violations(rows),
        }
        if self.thresholds.armed:
            out["thresholds"] = self.thresholds.to_dict()
        return out


def slo_timeline(window_start: float, window_end: float,
                 n_windows: Optional[int] = None,
                 thresholds: Optional[SloThresholds] = None) -> SloTimeline:
    """The timeline every figure runner attaches over its measurement
    window, honoring the ``REPRO_SLO_*`` environment configuration."""
    return SloTimeline(window_start, window_end, n_windows=n_windows,
                       thresholds=thresholds)


def attach_switch_sources(timeline: SloTimeline, fabric) -> SloTimeline:
    """Wire the congestion switch's cumulative counters (ECN marks, PFC
    pause events, drops) as per-window sources when the fabric runs the
    switched congestion model; a no-op on the contention-free fabric.
    Returns the timeline for chaining."""
    switch = getattr(fabric, "switch", None)
    if switch is not None:
        timeline.add_source("ecn_marks", lambda: switch.total_ecn_marks)
        timeline.add_source("pfc_pauses", lambda: switch.total_pause_events)
        timeline.add_source("switch_drops", lambda: switch.total_drops)
    return timeline


def attach_fidelity_sources(timeline: SloTimeline, fabric) -> SloTimeline:
    """Wire the hybrid fidelity controller's transition counters as
    per-window sources, so demotion storms show up on the same timeline
    (and in anomaly changepoints) as the congestion signals that caused
    them; a no-op in pure packet/fluid modes.  Returns the timeline for
    chaining."""
    controller = getattr(fabric, "fidelity_controller", None)
    if controller is not None:
        timeline.add_source("fidelity_demotions", lambda: controller.demotions)
        timeline.add_source("fidelity_promotions",
                            lambda: controller.promotions)
    return timeline
