"""Applications the paper evaluates FLock with: a MICA-like KV store,
FLockTX distributed transactions, and a HydraList-like ordered index."""

from .hydralist import HydraList
from .hydralist_numa import NumaHydraList, SearchLayerReplica
from .kvstore import KvEntry, KvPartition, partition_of, replicas_of

__all__ = [
    "HydraList",
    "KvEntry",
    "KvPartition",
    "NumaHydraList",
    "SearchLayerReplica",
    "partition_of",
    "replicas_of",
]
