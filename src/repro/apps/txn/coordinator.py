"""Transaction coordinator: OCC + 2PC + primary-backup (paper Fig. 13).

A coordinator at the client drives each transaction through four phases:

1. **Execution** — RPC to each involved primary: read R∪W, lock W
   (failure to lock aborts immediately).
2. **Validation** — re-check read-set versions.  FLockTX uses one-sided
   ``fl_read`` of the version words whose addresses the execution phase
   returned; FaSST (no one-sided verbs on UD) validates with an RPC.
3. **Logging** — ship updates to every backup replica; replicas ACK.
4. **Commit** — RPC to the primaries: install updates and unlock.

The transport is pluggable so the *same* coordinator logic runs over
FLock and over FaSST, isolating the communication layer exactly as the
paper's §8.5 comparison does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Tuple

from ..kvstore import partition_of, replicas_of
from .messages import (
    RPC_ABORT,
    RPC_COMMIT,
    RPC_EXEC,
    RPC_LOG,
    RPC_VALIDATE,
    AbortRequest,
    CommitRequest,
    ExecRequest,
    LogRequest,
    ValidateRequest,
)

__all__ = ["Transaction", "TxnOutcome", "Coordinator",
           "FlockTxTransport", "FasstTxTransport"]

_txn_counter = itertools.count(1)


@dataclass
class Transaction:
    """R and W sets; reads and writes are disjoint key sets."""

    reads: List[Any] = field(default_factory=list)
    writes: List[Tuple[Any, Any]] = field(default_factory=list)

    @property
    def write_keys(self) -> List[Any]:
        return [k for k, _v in self.writes]

    @property
    def read_only(self) -> bool:
        return not self.writes


class TxnOutcome:
    """Terminal states of a transaction run."""

    COMMITTED = "committed"
    ABORTED = "aborted"
    LOST = "lost"  # FaSST-style packet loss: the coroutine gave up


class FlockTxTransport:
    """FLockTX's communication layer: RPC + one-sided validation reads."""

    supports_one_sided = True

    def __init__(self, flock_node, handles: Dict[int, Any],
                 version_rkeys: Dict[int, int], thread_id: int):
        self.node = flock_node
        self.handles = handles
        self.version_rkeys = version_rkeys
        self.thread_id = thread_id

    def call(self, server_id: int, rpc_id: int, size: int,
             payload: Any) -> Generator:
        response = yield from self.node.fl_call(
            self.handles[server_id], self.thread_id, rpc_id, size, payload)
        return response.payload

    def read_word(self, server_id: int, addr: int) -> Generator:
        wc = yield from self.node.fl_read(
            self.handles[server_id], self.thread_id, addr,
            self.version_rkeys[server_id], 8)
        return wc.payload if wc.ok else None


class FasstTxTransport:
    """FaSST's communication layer: UD RPCs only; loss → None."""

    supports_one_sided = False

    def __init__(self, endpoint, servers: Dict[int, Tuple[Any, Any]]):
        #: server_id -> (UdRpcServer, its QP this endpoint targets)
        self.endpoint = endpoint
        self.servers = servers

    def call(self, server_id: int, rpc_id: int, size: int,
             payload: Any) -> Generator:
        server, qp = self.servers[server_id]
        response = yield from self.endpoint.call(server, qp, rpc_id, size,
                                                 payload)
        return None if response is None else response.payload

    def read_word(self, server_id: int, addr: int) -> Generator:
        raise NotImplementedError("UD transports have no one-sided reads")
        yield  # pragma: no cover


class Coordinator:
    """Runs transactions over a pluggable transport."""

    def __init__(self, transport, n_servers: int, coordinator_id: int = 0):
        self.transport = transport
        self.n_servers = n_servers
        self.coordinator_id = coordinator_id
        self.committed = 0
        self.aborted = 0
        self.lost = 0

    # -- key placement ------------------------------------------------------

    def primary_of(self, key: Any) -> int:
        return partition_of(key, self.n_servers)

    # -- the protocol ---------------------------------------------------------

    def run(self, txn: Transaction) -> Generator:
        """Execute one transaction; returns a :class:`TxnOutcome` value."""
        txn_id = (self.coordinator_id << 32) | next(_txn_counter)
        by_server: Dict[int, Tuple[List[Any], List[Any]]] = {}
        for key in txn.reads:
            by_server.setdefault(self.primary_of(key), ([], []))[0].append(key)
        for key in txn.write_keys:
            by_server.setdefault(self.primary_of(key), ([], []))[1].append(key)

        # Phase 1: execution (read R∪W, lock W at each primary).
        results: Dict[int, Any] = {}
        locked: List[int] = []
        for server_id in sorted(by_server):
            reads, writes = by_server[server_id]
            request = ExecRequest(txn_id=txn_id, read_keys=reads,
                                  write_keys=writes)
            result = yield from self.transport.call(
                server_id, RPC_EXEC, request.wire_size, request)
            if result is None:
                yield from self._abort(txn_id, by_server, locked)
                self.lost += 1
                return TxnOutcome.LOST
            if not result.ok:
                yield from self._abort(txn_id, by_server, locked)
                self.aborted += 1
                return TxnOutcome.ABORTED
            results[server_id] = result
            if writes:
                locked.append(server_id)

        # Phase 2: validation of the read set.
        if txn.reads and not (txn.read_only and len(txn.reads) == 1):
            valid = yield from self._validate(txn_id, by_server, results)
            if valid is None:
                yield from self._abort(txn_id, by_server, locked)
                self.lost += 1
                return TxnOutcome.LOST
            if not valid:
                yield from self._abort(txn_id, by_server, locked)
                self.aborted += 1
                return TxnOutcome.ABORTED

        if txn.read_only:
            self.committed += 1
            return TxnOutcome.COMMITTED

        # Phase 3: logging to backups (they ACK before commit).
        updates_by_server: Dict[int, List[Tuple[Any, Any, int]]] = {}
        for key, value in txn.writes:
            server_id = self.primary_of(key)
            old_version = results[server_id].versions.get(key, 0)
            updates_by_server.setdefault(server_id, []).append(
                (key, value, old_version + 1))
        for server_id, updates in sorted(updates_by_server.items()):
            for replica in replicas_of(server_id, self.n_servers)[1:]:
                request = LogRequest(txn_id=txn_id, partition_id=server_id,
                                     updates=updates)
                ack = yield from self.transport.call(
                    replica, RPC_LOG, request.wire_size, request)
                if ack is None:
                    # Updates may be partially replicated; a real system
                    # would run recovery.  The experiment records a loss.
                    self.lost += 1
                    return TxnOutcome.LOST

        # Phase 4: commit at the primaries (serialization point passed).
        for server_id, updates in sorted(updates_by_server.items()):
            request = CommitRequest(
                txn_id=txn_id,
                updates=[(k, v) for k, v, _ver in updates])
            ack = yield from self.transport.call(
                server_id, RPC_COMMIT, request.wire_size, request)
            if ack is None:
                self.lost += 1
                return TxnOutcome.LOST
        self.committed += 1
        return TxnOutcome.COMMITTED

    # -- helpers ----------------------------------------------------------------

    def _validate(self, txn_id: int, by_server, results) -> Generator:
        """True if every read-set version is unchanged and unlocked."""
        if self.transport.supports_one_sided:
            for server_id, (reads, _writes) in sorted(by_server.items()):
                result = results[server_id]
                for key in reads:
                    word = yield from self.transport.read_word(
                        server_id, result.read_addrs[key])
                    if word is None:
                        return None
                    if word != (result.versions[key] << 1):
                        return False
            return True
        for server_id, (reads, _writes) in sorted(by_server.items()):
            if not reads:
                continue
            request = ValidateRequest(keys=reads)
            result = yield from self.transport.call(
                server_id, RPC_VALIDATE, request.wire_size, request)
            if result is None:
                return None
            expected = results[server_id]
            for key in reads:
                if result.version_words.get(key) != (expected.versions[key] << 1):
                    return False
        return True

    def _abort(self, txn_id: int, by_server, locked: List[int]) -> Generator:
        for server_id in locked:
            _reads, writes = by_server[server_id]
            request = AbortRequest(txn_id=txn_id, locked_keys=writes)
            yield from self.transport.call(server_id, RPC_ABORT,
                                           request.wire_size, request)
