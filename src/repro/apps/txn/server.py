"""Transaction server: partitioned, replicated KV + protocol handlers.

One :class:`TxnServer` runs on each server node.  It is the primary for
one partition and a backup replica for the others (3-way primary-backup
as in §8.5.2).  The handlers are transport-agnostic plain functions of
``request -> (size, payload, cpu_ns)``, so the same server logic binds to
FLock (``fl_reg_handler``) or to a FaSST/UD server unchanged — exactly
the isolation the paper's comparison needs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..kvstore import GET_NS, LOCK_NS, PUT_NS, KvPartition
from .messages import (
    RPC_ABORT,
    RPC_COMMIT,
    RPC_EXEC,
    RPC_LOG,
    RPC_VALIDATE,
    AbortRequest,
    Ack,
    CommitRequest,
    ExecRequest,
    ExecResult,
    LogRequest,
    ValidateRequest,
    ValidateResult,
)

__all__ = ["TxnServer"]


class TxnServer:
    """Protocol logic of one server node."""

    def __init__(self, server_id: int, primary: KvPartition,
                 replicas: Dict[int, KvPartition]):
        self.server_id = server_id
        #: The partition this server is primary for.
        self.primary = primary
        #: partition_id -> local backup copy (includes primary's own id).
        self.replicas = replicas
        self.execs = 0
        self.commits = 0
        self.aborts = 0
        self.logs = 0

    # -- binding to a transport --------------------------------------------

    def bind(self, register: Callable[[int, Callable], None]) -> None:
        """Install the five protocol handlers via ``register(rpc_id, fn)``."""
        register(RPC_EXEC, self.handle_exec)
        register(RPC_VALIDATE, self.handle_validate)
        register(RPC_LOG, self.handle_log)
        register(RPC_COMMIT, self.handle_commit)
        register(RPC_ABORT, self.handle_abort)

    # -- handlers (request -> (size, payload, cpu_ns)) --------------------------

    def handle_exec(self, request) -> Tuple[int, Any, float]:
        """Execution phase: lock W, read R∪W, return versions + addresses."""
        req: ExecRequest = request.payload
        self.execs += 1
        cost = 0.0
        locked: List[Any] = []
        ok = True
        for key in req.write_keys:
            cost += LOCK_NS
            if self.primary.try_lock(key, req.txn_id):
                locked.append(key)
            else:
                ok = False
                break
        if not ok:
            for key in locked:
                self.primary.unlock(key, req.txn_id)
                cost += LOCK_NS
            result = ExecResult(ok=False)
            return result.wire_size, result, cost
        result = ExecResult(ok=True)
        for key in list(req.read_keys) + list(req.write_keys):
            cost += GET_NS
            entry = self.primary.get(key)
            result.values[key] = entry.value if entry else None
            result.versions[key] = entry.version if entry else 0
        for key in req.read_keys:
            result.read_addrs[key] = self.primary.addr_of(key)
        return result.wire_size, result, cost

    def handle_validate(self, request) -> Tuple[int, Any, float]:
        """Two-sided validation: return packed version words."""
        req: ValidateRequest = request.payload
        words = {key: self.primary.version_of(key) for key in req.keys}
        result = ValidateResult(version_words=words)
        return result.wire_size, result, GET_NS * len(req.keys)

    def handle_log(self, request) -> Tuple[int, Any, float]:
        """Logging phase: a backup applies updates in order."""
        req: LogRequest = request.payload
        self.logs += 1
        partition = self.replicas.get(req.partition_id)
        if partition is None:
            return Ack(ok=False).wire_size, Ack(ok=False), 50.0
        for key, value, version in req.updates:
            partition.apply_replica_update(key, value, version)
        return Ack().wire_size, Ack(), PUT_NS * len(req.updates)

    def handle_commit(self, request) -> Tuple[int, Any, float]:
        """Commit phase: install at the primary, bump versions, unlock."""
        req: CommitRequest = request.payload
        self.commits += 1
        for key, value in req.updates:
            self.primary.commit_update(key, value, req.txn_id)
        return Ack().wire_size, Ack(), PUT_NS * len(req.updates)

    def handle_abort(self, request) -> Tuple[int, Any, float]:
        req: AbortRequest = request.payload
        self.aborts += 1
        for key in req.locked_keys:
            self.primary.unlock(key, req.txn_id)
        return Ack().wire_size, Ack(), LOCK_NS * len(req.locked_keys)
