"""Wire-level payloads of the transaction protocol (paper Fig. 13)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = [
    "RPC_EXEC", "RPC_VALIDATE", "RPC_LOG", "RPC_COMMIT", "RPC_ABORT",
    "ExecRequest", "ExecResult", "ValidateRequest", "ValidateResult",
    "LogRequest", "CommitRequest", "AbortRequest", "Ack",
]

RPC_EXEC = 10
RPC_VALIDATE = 11
RPC_LOG = 12
RPC_COMMIT = 13
RPC_ABORT = 14

#: Wire-size accounting (bytes per key entry in each message kind).
KEY_BYTES = 8
VALUE_BYTES = 40
VERSION_BYTES = 8
ADDR_BYTES = 8


@dataclass
class ExecRequest:
    """Execution phase: read R∪W and lock W at the primary."""

    txn_id: int
    read_keys: List[Any]
    write_keys: List[Any]

    @property
    def wire_size(self) -> int:
        return 16 + KEY_BYTES * (len(self.read_keys) + len(self.write_keys))


@dataclass
class ExecResult:
    """Values + versions for R∪W, version-word addresses for R, and
    whether every W lock was acquired."""

    ok: bool
    values: Dict[Any, Any] = field(default_factory=dict)
    versions: Dict[Any, int] = field(default_factory=dict)
    read_addrs: Dict[Any, int] = field(default_factory=dict)

    @property
    def wire_size(self) -> int:
        return 8 + (VALUE_BYTES + VERSION_BYTES) * len(self.values) \
            + ADDR_BYTES * len(self.read_addrs)


@dataclass
class ValidateRequest:
    """Two-sided validation fallback (FaSST has no one-sided reads)."""

    keys: List[Any]

    @property
    def wire_size(self) -> int:
        return 8 + KEY_BYTES * len(self.keys)


@dataclass
class ValidateResult:
    version_words: Dict[Any, int]

    @property
    def wire_size(self) -> int:
        return 8 + VERSION_BYTES * len(self.version_words)


@dataclass
class LogRequest:
    """Logging phase: ship updates to a backup replica."""

    txn_id: int
    partition_id: int
    updates: List[Tuple[Any, Any, int]]  # (key, value, new version)

    @property
    def wire_size(self) -> int:
        return 16 + (KEY_BYTES + VALUE_BYTES + VERSION_BYTES) * len(self.updates)


@dataclass
class CommitRequest:
    """Commit phase: install updates at the primary and unlock."""

    txn_id: int
    updates: List[Tuple[Any, Any]]  # (key, value)

    @property
    def wire_size(self) -> int:
        return 16 + (KEY_BYTES + VALUE_BYTES) * len(self.updates)


@dataclass
class AbortRequest:
    txn_id: int
    locked_keys: List[Any]

    @property
    def wire_size(self) -> int:
        return 16 + KEY_BYTES * len(self.locked_keys)


@dataclass
class Ack:
    ok: bool = True

    @property
    def wire_size(self) -> int:
        return 8
