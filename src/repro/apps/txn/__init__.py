"""FLockTX: distributed transactions with OCC, 2PC, and replication (§8.5)."""

from .coordinator import (
    Coordinator,
    FasstTxTransport,
    FlockTxTransport,
    Transaction,
    TxnOutcome,
)
from .messages import (
    RPC_ABORT,
    RPC_COMMIT,
    RPC_EXEC,
    RPC_LOG,
    RPC_VALIDATE,
    AbortRequest,
    Ack,
    CommitRequest,
    ExecRequest,
    ExecResult,
    LogRequest,
    ValidateRequest,
    ValidateResult,
)
from .server import TxnServer

__all__ = [
    "AbortRequest",
    "Ack",
    "CommitRequest",
    "Coordinator",
    "ExecRequest",
    "ExecResult",
    "FasstTxTransport",
    "FlockTxTransport",
    "LogRequest",
    "RPC_ABORT",
    "RPC_COMMIT",
    "RPC_EXEC",
    "RPC_LOG",
    "RPC_VALIDATE",
    "Transaction",
    "TxnOutcome",
    "TxnServer",
    "ValidateRequest",
    "ValidateResult",
]
