"""HydraList-like in-memory ordered index (paper §8.6).

HydraList (Mathew & Min, VLDB'20) splits an ordered index into a **data
list** of fat nodes and a replicated **search layer** that is updated
*asynchronously*: structural changes (node splits) are queued and merged
into the search layer in the background, so lookups may traverse one or
two extra links until the layer catches up.  We implement that design
for real — a linked list of sorted data nodes plus a search layer array
rebuilt lazily from a pending-splits queue — because the eval's
characteristic behaviour (scan cost ≫ get cost, variable service times)
comes from the structure.

The CPU cost model returned by :meth:`get_cost_ns`/:meth:`scan_cost_ns`
feeds the RPC handlers in the Figs. 16-18 experiments.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Optional, Tuple

__all__ = ["HydraList"]

#: Cost model (ns) for handler charging.
GET_BASE_NS = 150.0
GET_PER_LEVEL_NS = 6.0
SCAN_BASE_NS = 260.0
SCAN_PER_KEY_NS = 7.0


class _DataNode:
    """A fat leaf: sorted keys with parallel values, plus a next link."""

    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.next: Optional["_DataNode"] = None

    @property
    def min_key(self):
        return self.keys[0] if self.keys else None


class HydraList:
    """Ordered map with an asynchronously maintained search layer."""

    def __init__(self, node_capacity: int = 64):
        if node_capacity < 2:
            raise ValueError("node capacity must be >= 2")
        self.node_capacity = node_capacity
        head = _DataNode()
        self._head = head
        #: Search layer: sorted (min_key, node) arrays, possibly stale.
        self._layer_keys: List[Any] = []
        self._layer_nodes: List[_DataNode] = [head]
        #: Structural updates not yet merged into the search layer —
        #: HydraList's asynchronous-update mechanism.
        self._pending_splits: List[_DataNode] = []
        self.size = 0
        self.stale_traversals = 0

    # -- search layer -----------------------------------------------------

    def _locate(self, key: Any) -> _DataNode:
        """Find the data node that should hold ``key``; chases next links
        past any splits the search layer has not absorbed yet."""
        if self._layer_keys:
            idx = bisect.bisect_right(self._layer_keys, key)
            node = self._layer_nodes[idx]
        else:
            node = self._layer_nodes[0]
        while node.next is not None and node.next.keys and node.next.keys[0] <= key:
            node = node.next
            self.stale_traversals += 1
        return node

    def merge_search_layer(self) -> int:
        """Apply all pending structural updates (the background updater
        thread's job in HydraList).  Returns how many were merged."""
        if not self._pending_splits:
            return 0
        merged = len(self._pending_splits)
        for node in self._pending_splits:
            idx = bisect.bisect_left(self._layer_keys, node.min_key)
            self._layer_keys.insert(idx, node.min_key)
            self._layer_nodes.insert(idx + 1, node)
        self._pending_splits = []
        return merged

    @property
    def pending_structural_updates(self) -> int:
        return len(self._pending_splits)

    # -- operations ----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        node = self._locate(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self.size += 1
        if len(node.keys) > self.node_capacity:
            self._split(node)

    def _split(self, node: _DataNode) -> None:
        half = len(node.keys) // 2
        sibling = _DataNode()
        sibling.keys = node.keys[half:]
        sibling.values = node.values[half:]
        node.keys = node.keys[:half]
        node.values = node.values[:half]
        sibling.next = node.next
        node.next = sibling
        # The split is visible through next-links immediately; the search
        # layer learns about it asynchronously.
        self._pending_splits.append(sibling)
        # Bound staleness like the real updater thread does.
        if len(self._pending_splits) >= 128:
            self.merge_search_layer()

    def get(self, key: Any) -> Optional[Any]:
        node = self._locate(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return None

    def remove(self, key: Any) -> bool:
        node = self._locate(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            del node.keys[idx]
            del node.values[idx]
            self.size -= 1
            return True
        return False

    def scan(self, start_key: Any, count: int) -> List[Tuple[Any, Any]]:
        """Up to ``count`` (key, value) pairs with key >= start_key."""
        if count < 0:
            raise ValueError("negative scan count")
        out: List[Tuple[Any, Any]] = []
        node: Optional[_DataNode] = self._locate(start_key)
        idx = bisect.bisect_left(node.keys, start_key)
        while node is not None and len(out) < count:
            while idx < len(node.keys) and len(out) < count:
                out.append((node.keys[idx], node.values[idx]))
                idx += 1
            node = node.next
            idx = 0
        return out

    def items(self):
        node: Optional[_DataNode] = self._head
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    def bulk_load(self, pairs) -> None:
        """Fast sorted bootstrap for large experiment populations."""
        node = self._head
        for key, value in pairs:
            if node.keys and key <= node.keys[-1]:
                self.insert(key, value)
                continue
            if len(node.keys) >= self.node_capacity:
                sibling = _DataNode()
                sibling.next = node.next
                node.next = sibling
                self._pending_splits.append(sibling)
                node = sibling
            node.keys.append(key)
            node.values.append(value)
            self.size += 1
        self.merge_search_layer()

    # -- cost model for RPC handlers --------------------------------------------

    def get_cost_ns(self) -> float:
        levels = max(1, len(self._layer_keys).bit_length())
        return GET_BASE_NS + GET_PER_LEVEL_NS * levels

    def scan_cost_ns(self, count: int) -> float:
        levels = max(1, len(self._layer_keys).bit_length())
        return SCAN_BASE_NS + GET_PER_LEVEL_NS * levels + SCAN_PER_KEY_NS * count
