"""Partitioned in-memory key-value store (MICA-like substrate, §8.5.2).

FLockTX and the FaSST comparison both run over this store, mirroring the
paper's use of MICA "without caching key-value pairs".  Each partition
lives on one server; entries carry a version and a lock bit for
optimistic concurrency control.

For FLockTX's validation phase the store *publishes each entry's
version word in a registered memory region*: the word packs
``version << 1 | locked`` at a stable address, so coordinators validate
read-sets with one-sided RDMA reads exactly as the paper's Fig. 13 shows
(``fl_read`` of the address returned during execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["KvEntry", "KvPartition", "partition_of", "replicas_of"]

#: CPU cost charged by handlers per store operation (ns).
GET_NS = 120.0
PUT_NS = 160.0
LOCK_NS = 60.0


@dataclass
class KvEntry:
    """One key's record: value, OCC version, lock owner."""

    value: Any = None
    version: int = 0
    lock_owner: Optional[int] = None

    @property
    def locked(self) -> bool:
        return self.lock_owner is not None

    @property
    def version_word(self) -> int:
        """The packed word published for one-sided validation."""
        return (self.version << 1) | (1 if self.locked else 0)


class KvPartition:
    """One server's partition, optionally exposing version words in a
    registered region for one-sided validation."""

    def __init__(self, partition_id: int, region=None, words_per_key: int = 8):
        self.partition_id = partition_id
        self.entries: Dict[Any, KvEntry] = {}
        self.region = region
        self.words_per_key = words_per_key
        self._addrs: Dict[Any, int] = {}
        self._next_off = 0
        # Statistics for experiment reports.
        self.gets = 0
        self.puts = 0
        self.lock_failures = 0

    # -- address publication ---------------------------------------------

    def addr_of(self, key: Any) -> int:
        """Stable address of the key's version word (for fl_read)."""
        addr = self._addrs.get(key)
        if addr is None:
            if self.region is None:
                raise RuntimeError("partition has no registered region")
            addr = self.region.addr + self._next_off
            self._next_off += self.words_per_key
            if self._next_off > self.region.length:
                raise RuntimeError("version region exhausted")
            self._addrs[key] = addr
        return addr

    def _publish(self, key: Any, entry: KvEntry) -> None:
        if self.region is not None:
            self.region.words[self.addr_of(key)] = entry.version_word

    # -- store operations ----------------------------------------------------

    def load(self, items: Iterable[Tuple[Any, Any]]) -> None:
        """Bulk-populate (bootstrap)."""
        for key, value in items:
            entry = KvEntry(value=value, version=1)
            self.entries[key] = entry
            self._publish(key, entry)

    def get(self, key: Any) -> Optional[KvEntry]:
        self.gets += 1
        return self.entries.get(key)

    def try_lock(self, key: Any, owner: int) -> bool:
        """Lock for OCC write intent; fails if already locked by another."""
        entry = self.entries.get(key)
        if entry is None:
            entry = KvEntry(version=0)
            self.entries[key] = entry
        if entry.lock_owner is not None and entry.lock_owner != owner:
            self.lock_failures += 1
            return False
        entry.lock_owner = owner
        self._publish(key, entry)
        return True

    def unlock(self, key: Any, owner: int) -> bool:
        entry = self.entries.get(key)
        if entry is None or entry.lock_owner != owner:
            return False
        entry.lock_owner = None
        self._publish(key, entry)
        return True

    def commit_update(self, key: Any, value: Any, owner: int) -> int:
        """Apply a validated write and release the lock; bumps version."""
        entry = self.entries.get(key)
        if entry is None or entry.lock_owner != owner:
            raise RuntimeError("commit of unlocked key %r" % (key,))
        entry.value = value
        entry.version += 1
        entry.lock_owner = None
        self.puts += 1
        self._publish(key, entry)
        return entry.version

    def apply_replica_update(self, key: Any, value: Any, version: int) -> None:
        """Replica-side update (logging phase): installs value+version."""
        entry = self.entries.get(key)
        if entry is None:
            entry = KvEntry()
            self.entries[key] = entry
        if version >= entry.version:
            entry.value = value
            entry.version = version
        self._publish(key, entry)

    def version_of(self, key: Any) -> int:
        entry = self.entries.get(key)
        return entry.version_word if entry is not None else 0


def partition_of(key: int, n_partitions: int) -> int:
    """Key → primary partition (stable hash)."""
    return (key * 2654435761 & 0xFFFFFFFF) % n_partitions


def replicas_of(partition_id: int, n_servers: int, n_replicas: int = 3) -> List[int]:
    """Primary + backup server ids (3-way chain as in §8.5.2)."""
    n = min(n_replicas, n_servers)
    return [(partition_id + i) % n_servers for i in range(n)]
