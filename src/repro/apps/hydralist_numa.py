"""NUMA-replicated HydraList (the full design of Mathew & Min, VLDB'20).

The single-layer :class:`repro.apps.hydralist.HydraList` captures the
asynchronous-update mechanism; this variant adds HydraList's other key
idea: the **search layer is replicated per NUMA node**.  Every structural
change (node split) is broadcast to each replica's pending queue, and a
background *search-layer updater* merges them independently — so readers
on one socket never touch another socket's layer, at the cost of
per-replica staleness (absorbed by next-pointer chasing, exactly like
the data list tolerates in the original).

Used by the HydraList benchmarks when ``numa_nodes > 1`` and exercised
directly by the unit tests; the default experiments keep one replica so
their cost model matches §8.6's single-node index.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, List, Optional, Tuple

from .hydralist import _DataNode

__all__ = ["NumaHydraList", "SearchLayerReplica"]


class SearchLayerReplica:
    """One NUMA node's private search layer with its pending-update queue."""

    __slots__ = ("keys", "nodes", "pending", "stale_traversals", "merges")

    def __init__(self, head: _DataNode):
        self.keys: List[Any] = []
        self.nodes: List[_DataNode] = [head]
        #: Splits broadcast but not yet merged into this replica.
        self.pending: List[_DataNode] = []
        self.stale_traversals = 0
        self.merges = 0

    def locate(self, key: Any) -> _DataNode:
        """Descend this replica, then chase next-links past unmerged
        splits (the staleness-tolerance mechanism)."""
        if self.keys:
            idx = bisect.bisect_right(self.keys, key)
            node = self.nodes[idx]
        else:
            node = self.nodes[0]
        while (node.next is not None and node.next.keys
               and node.next.keys[0] <= key):
            node = node.next
            self.stale_traversals += 1
        return node

    def merge(self) -> int:
        """Apply every pending structural update; returns how many."""
        if not self.pending:
            return 0
        merged = len(self.pending)
        for node in self.pending:
            idx = bisect.bisect_left(self.keys, node.min_key)
            self.keys.insert(idx, node.min_key)
            self.nodes.insert(idx + 1, node)
        self.pending = []
        self.merges += 1
        return merged

    @property
    def lag(self) -> int:
        return len(self.pending)


class NumaHydraList:
    """Ordered map with per-NUMA-replicated, asynchronously updated
    search layers over one shared data list."""

    def __init__(self, node_capacity: int = 64, numa_nodes: int = 2,
                 updater_batch: int = 128):
        if node_capacity < 2:
            raise ValueError("node capacity must be >= 2")
        if numa_nodes < 1:
            raise ValueError("need at least one NUMA node")
        self.node_capacity = node_capacity
        self.updater_batch = updater_batch
        head = _DataNode()
        self._head = head
        self.replicas: List[SearchLayerReplica] = [
            SearchLayerReplica(head) for _ in range(numa_nodes)]
        self.size = 0

    # -- replica selection ---------------------------------------------------

    def _replica(self, numa: int) -> SearchLayerReplica:
        return self.replicas[numa % len(self.replicas)]

    def _broadcast_split(self, sibling: _DataNode) -> None:
        for replica in self.replicas:
            replica.pending.append(sibling)
        # Bound staleness the way the updater thread does: merge a
        # replica once its queue grows past the batch size.
        for replica in self.replicas:
            if len(replica.pending) >= self.updater_batch:
                replica.merge()

    # -- operations ----------------------------------------------------------

    def insert(self, key: Any, value: Any, numa: int = 0) -> None:
        node = self._replica(numa).locate(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self.size += 1
        if len(node.keys) > self.node_capacity:
            half = len(node.keys) // 2
            sibling = _DataNode()
            sibling.keys = node.keys[half:]
            sibling.values = node.values[half:]
            node.keys = node.keys[:half]
            node.values = node.values[:half]
            sibling.next = node.next
            node.next = sibling
            self._broadcast_split(sibling)

    def get(self, key: Any, numa: int = 0) -> Optional[Any]:
        node = self._replica(numa).locate(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return None

    def remove(self, key: Any, numa: int = 0) -> bool:
        node = self._replica(numa).locate(key)
        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            del node.keys[idx]
            del node.values[idx]
            self.size -= 1
            return True
        return False

    def scan(self, start_key: Any, count: int,
             numa: int = 0) -> List[Tuple[Any, Any]]:
        if count < 0:
            raise ValueError("negative scan count")
        out: List[Tuple[Any, Any]] = []
        node: Optional[_DataNode] = self._replica(numa).locate(start_key)
        idx = bisect.bisect_left(node.keys, start_key)
        while node is not None and len(out) < count:
            while idx < len(node.keys) and len(out) < count:
                out.append((node.keys[idx], node.values[idx]))
                idx += 1
            node = node.next
            idx = 0
        return out

    def items(self) -> Iterable[Tuple[Any, Any]]:
        """All pairs in key order (from the shared data list)."""
        node: Optional[_DataNode] = self._head
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next

    # -- the background search-layer updater ------------------------------------

    def run_updater_pass(self) -> int:
        """One pass of the background updater: merge every replica's
        pending queue.  Returns total structural updates applied."""
        return sum(replica.merge() for replica in self.replicas)

    def max_replica_lag(self) -> int:
        return max(replica.lag for replica in self.replicas)
