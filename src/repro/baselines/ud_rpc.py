"""UD-based RPC systems (the HERD/FaSST/eRPC design point, §2.2).

One datagram QP per endpoint thread talks to many peers, so the RNIC
caches almost no connection state — but every message costs server CPU:
polling the completion queue, recycling receive buffers
(``ibv_post_recv``), and software transport work (reliability +
congestion control, which the hardware no longer provides).  The paper's
Fig. 2(b) shows this CPU tax saturating the server while the NIC is far
from its limits; eRPC and FaSST below are cost-profile variants of this
common engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..config import CpuConfig
from ..net.fabric import Fabric, Node
from ..net.packet import Reassembler, segment
from ..sim import Event, Simulator, Store
from ..verbs import QueuePair, Transport, Verb, WorkRequest

__all__ = ["UdRpcServer", "UdEndpoint", "UdRequest", "UdResponse", "UdChunk"]

_req_ids = itertools.count(1)


@dataclass
class UdRequest:
    req_id: int
    rpc_id: int
    size: int
    payload: Any
    reply_qp: QueuePair
    created_ns: float


@dataclass
class UdResponse:
    req_id: int
    size: int
    payload: Any


@dataclass
class UdChunk:
    """One MTU-sized fragment of a payload larger than UD's 4 KB limit.

    Table 1: UD transfers above the MTU must be split by the application
    and reassembled at the receiver, handling reordering.
    """

    msg_id: int
    chunk_idx: int
    n_chunks: int
    payload: Any
    #: Payload bytes this fragment carries (feeds the receiver's
    #: ``Reassembler.pending_bytes`` leak accounting).
    nbytes: int = 0


class UdRpcServer:
    """A server running one UD QP + worker per core (run-to-completion)."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: Optional[CpuConfig] = None,
                 n_workers: Optional[int] = None,
                 recv_pool_per_worker: int = 512,
                 extra_sw_ns: float = 0.0):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.cpu = cpu or node.cpu_cfg
        self.n_workers = n_workers if n_workers is not None else len(node.cpu)
        #: Extra per-message software cost (congestion control profile).
        self.extra_sw_ns = extra_sw_ns
        self.handlers: Dict[int, Callable] = {}
        self.qps: List[QueuePair] = []
        self.recv_pool = recv_pool_per_worker
        self.requests_handled = 0
        self._started = False
        for _ in range(self.n_workers):
            qp = QueuePair(sim, node, fabric, Transport.UD)
            qp.post_recv(4096, n=recv_pool_per_worker)
            self.qps.append(qp)

    def register_handler(self, rpc_id: int, handler: Callable) -> None:
        """``handler(request) -> (size, payload, app CPU ns)``."""
        self.handlers[rpc_id] = handler

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for idx in range(self.n_workers):
            self.sim.spawn(self._worker(idx), name="ud-worker%d" % idx)

    @property
    def recv_drops(self) -> int:
        return sum(qp.recv_drops for qp in self.qps)

    def qp_for_client(self, client_index: int) -> QueuePair:
        """Clients are spread over server endpoints round-robin."""
        return self.qps[client_index % len(self.qps)]

    def _worker(self, idx: int) -> Generator[Event, None, None]:
        core = self.node.cpu[idx % len(self.node.cpu)]
        qp = self.qps[idx]
        cpu = self.cpu
        while True:
            wc = yield qp.recv_cq.wait_pop()
            request: UdRequest = wc.payload
            # Critical path: poll the CQ and run the receive-side software
            # transport before the handler can see the request.
            yield core.charge(
                cpu.cq_poll_ns + cpu.ud_sw_transport_ns + self.extra_sw_ns,
                "net-ud",
            )
            handler = self.handlers[request.rpc_id]
            size, payload, app_ns = handler(request)
            if app_ns > 0:
                yield core.charge(app_ns, "app")
            # Response doorbell, then the reply is in flight.
            yield core.charge(cpu.mmio_ns, "net-ud")
            qp.post_send(
                WorkRequest(verb=Verb.SEND, length=size, signaled=False,
                            payload=UdResponse(request.req_id, size, payload)),
                remote=request.reply_qp,
            )
            self.requests_handled += 1
            # Post-processing off the latency path but on the CPU budget:
            # recycle the consumed receive buffer (ibv_post_recv) and do
            # the send-side transport bookkeeping (§2.2's CPU tax).
            qp.post_recv(4096)
            yield core.charge(
                cpu.ud_recv_recycle_ns + cpu.ud_sw_transport_ns
                + self.extra_sw_ns,
                "net-ud",
            )


class UdEndpoint:
    """A client-side RPC endpoint: one UD QP owned by one thread.

    Multiple coroutines of the thread may keep requests outstanding; a
    per-endpoint dispatcher routes responses back by request id.  An
    optional session credit window (eRPC-style flow control) bounds the
    outstanding requests per endpoint.
    """

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: Optional[CpuConfig] = None,
                 session_credits: Optional[int] = None,
                 extra_sw_ns: float = 0.0,
                 timeout_ns: Optional[float] = None):
        self.sim = sim
        self.node = node
        self.cpu = cpu or node.cpu_cfg
        self.extra_sw_ns = extra_sw_ns
        self.timeout_ns = timeout_ns
        self.qp = QueuePair(sim, node, fabric, Transport.UD)
        self.qp.post_recv(4096, n=4096)
        self.pending: Dict[int, Event] = {}
        self.lost_requests = 0
        self.completed = 0
        #: Reassembly state for inbound multi-chunk messages.  Partial
        #: messages whose remaining chunks were lost are expired on the
        #: next arrival so lossy runs don't accumulate unbounded state.
        self.reassembler = Reassembler()
        self.reassembly_timeout_ns = (
            timeout_ns if timeout_ns is not None else 100_000.0)
        self._credits = Store(sim)
        if session_credits:
            for _ in range(session_credits):
                self._credits.try_put(None)
        self._session_credits = session_credits
        sim.spawn(self._dispatcher(), name="ud-dispatch")

    def call(self, server: UdRpcServer, server_qp: QueuePair, rpc_id: int,
             size: int, payload: Any = None
             ) -> Generator[Event, None, Optional[UdResponse]]:
        """Issue one RPC; returns the response, or None on packet loss
        (UD leaves loss recovery to the application, Table 1)."""
        server.start()
        if self._session_credits:
            yield self._credits.get()
        req_id = next(_req_ids)
        request = UdRequest(req_id=req_id, rpc_id=rpc_id, size=size,
                            payload=payload, reply_qp=self.qp,
                            created_ns=self.sim.now)
        ev = Event(self.sim)
        self.pending[req_id] = ev
        # Marshalling + doorbell are on the critical path; the software
        # transport bookkeeping overlaps the request's flight time.
        yield self.sim.timeout(self.cpu.marshal_ns + self.cpu.mmio_ns)
        self.qp.post_send(
            WorkRequest(verb=Verb.SEND, length=size, signaled=False,
                        payload=request),
            remote=server_qp,
        )
        yield self.sim.timeout(self.cpu.ud_sw_transport_ns + self.extra_sw_ns)
        if self.timeout_ns is not None:
            timeout = self.sim.timeout(self.timeout_ns)
            result = yield self.sim.any_of([ev, timeout])
            if ev in result:
                response = result[ev]
            else:
                # Lost in the fabric or dropped at an overloaded server.
                self.pending.pop(req_id, None)
                self.lost_requests += 1
                response = None
        else:
            response = yield ev
        if self._session_credits:
            self._credits.try_put(None)
        if response is not None:
            self.completed += 1
        return response

    def send_large(self, target_qp: QueuePair, nbytes: int,
                   payload: Any = None) -> Generator[Event, None, int]:
        """Ship a payload larger than the UD MTU: split into 4 KB chunks,
        one UD send each (the application-side burden of Table 1).
        Returns the number of chunks sent."""
        msg_id = next(_req_ids)
        chunks = segment(nbytes, 4096)
        for idx, chunk_len in enumerate(chunks):
            yield self.sim.timeout(self.cpu.marshal_ns + self.cpu.mmio_ns)
            self.qp.post_send(
                WorkRequest(verb=Verb.SEND, length=chunk_len, signaled=False,
                            payload=UdChunk(msg_id, idx, len(chunks),
                                            payload, nbytes=chunk_len)),
                remote=target_qp,
            )
        return len(chunks)

    @staticmethod
    def receive_large(reassembler: Reassembler, chunk: "UdChunk"):
        """Feed one received chunk; returns the chunk list when the
        message completes, None otherwise."""
        return reassembler.add(chunk.msg_id, chunk.chunk_idx,
                               chunk.n_chunks, chunk.payload)

    def receive_chunk(self, chunk: "UdChunk"):
        """Feed one chunk into this endpoint's own reassembler.

        Expires stale partial messages first (chunks lost under UD mean
        some messages never complete), then accounts the new chunk with
        its size and arrival time.  Returns the chunk list when the
        message completes, None otherwise.
        """
        self.reassembler.expire(self.sim.now, self.reassembly_timeout_ns)
        return self.reassembler.add(
            chunk.msg_id, chunk.chunk_idx, chunk.n_chunks, chunk.payload,
            nbytes=chunk.nbytes, now=self.sim.now)

    def _dispatcher(self) -> Generator[Event, None, None]:
        while True:
            wc = yield self.qp.recv_cq.wait_pop()
            response: UdResponse = wc.payload
            yield self.sim.timeout(self.cpu.cq_poll_ns)
            ev = self.pending.pop(response.req_id, None)
            if ev is not None and not ev.triggered:
                ev.succeed(response)
            # Recycling the receive ring happens after delivery.
            self.qp.post_recv(4096)
            yield self.sim.timeout(self.cpu.ud_recv_recycle_ns)
