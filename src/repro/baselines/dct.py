"""Dynamically Connected Transport (DCT) baseline (paper §10).

Mellanox DCT keeps connection counts low by creating and destroying
QP connections *on demand*: one initiator context reaches any remote,
but switching targets tears down the current connection and performs a
connect handshake with the next one.  The paper cites prior findings
that this "leads to performance degradation" when a thread alternates
between remote machines — the effect this baseline reproduces against
FLock's persistent (but scheduled) connection pool.

The data path reuses the RC write-based RPC mechanics; what DCT changes
is purely the connection lifecycle.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, Optional

from ..config import CpuConfig
from ..net.fabric import Fabric, Node
from ..sim import Event, Simulator
from ..verbs import QueuePair, Transport, Verb, WorkRequest
from ..flock.message import CoalescedMessage, RpcRequest, RpcResponse
from ..flock.ringbuf import RingBuffer
from .farm import RcRpcServer

__all__ = ["DctEndpoint", "DCT_CONNECT_NS"]

#: One DC connect handshake (half a round trip each way plus NIC setup);
#: the value matches the ~2x degradation prior work reports for
#: alternating targets at microsecond RPC scales.
DCT_CONNECT_NS = 2_000.0

_seq = itertools.count(1)


class _DctTarget:
    """Server-side state for one (endpoint, server) pair."""

    __slots__ = ("server_qp", "req_region", "resp_region", "resp_ring",
                 "client_qp", "pending")

    def __init__(self):
        self.server_qp = None
        self.req_region = None
        self.resp_region = None
        self.resp_ring = None
        self.client_qp = None
        self.pending: Dict[int, Event] = {}


class DctEndpoint:
    """One DC initiator: talks to many servers, one connection at a time."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: Optional[CpuConfig] = None,
                 connect_ns: float = DCT_CONNECT_NS,
                 ring_slots: int = 128):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.cpu = cpu or node.cpu_cfg
        self.connect_ns = connect_ns
        self.ring_slots = ring_slots
        self._targets: Dict[int, _DctTarget] = {}
        #: The single currently connected target (DCT semantics).
        self.connected_to: Optional[int] = None
        self.connects = 0
        self.switches = 0

    # -- connection lifecycle ------------------------------------------------

    def _target(self, server_id: int, server: RcRpcServer) -> _DctTarget:
        target = self._targets.get(server_id)
        if target is None:
            target = _DctTarget()
            client_qp = QueuePair(self.sim, self.node, self.fabric,
                                  Transport.RC)
            server_qp, req_region, req_ring, inbox, _w = server.accept_channel()
            client_qp.connect(server_qp)
            resp_region = self.node.memory.register(self.ring_slots * 4096)
            resp_ring = RingBuffer(self.sim, resp_region, self.ring_slots)
            target.client_qp = client_qp
            target.server_qp = server_qp
            target.req_region = req_region
            target.resp_region = resp_region
            target.resp_ring = resp_ring

            def on_request(msg, _ring=req_ring, _sqp=server_qp,
                           _resp=resp_region, _inbox=inbox):
                _inbox.try_put(((_ring, _sqp, _resp), msg))

            req_ring.on_message = on_request

            def on_response(msg, _target=target):
                _target.resp_ring.consume(msg.total_bytes)
                response: RpcResponse = msg.entries[0]
                ev = _target.pending.pop(response.seq_id, None)
                if ev is not None and not ev.triggered:
                    ev.succeed(response)

            resp_ring.on_message = on_response
            self._targets[server_id] = target
        return target

    def _ensure_connected(self, server_id: int) -> Generator[Event, None, None]:
        """DCT's defining cost: switching the active connection pays a
        connect handshake (and implicitly tears the old one down)."""
        if self.connected_to == server_id:
            return
        if self.connected_to is not None:
            self.switches += 1
        self.connects += 1
        self.connected_to = server_id
        yield self.sim.timeout(self.connect_ns)

    # -- RPC -----------------------------------------------------------------

    def call(self, server_id: int, server: RcRpcServer, rpc_id: int,
             size: int, payload: Any = None
             ) -> Generator[Event, None, RpcResponse]:
        """One RPC to ``server``; reconnects first if the endpoint was
        talking to a different remote."""
        server.start()
        target = self._target(server_id, server)
        yield from self._ensure_connected(server_id)
        seq = next(_seq)
        request = RpcRequest(thread_id=0, seq_id=seq, rpc_id=rpc_id,
                             size=size, payload=payload,
                             created_ns=self.sim.now)
        ev = Event(self.sim)
        target.pending[seq] = ev
        yield self.sim.timeout(self.cpu.marshal_ns
                               + self.cpu.copy_ns_per_byte * size
                               + self.cpu.header_build_ns + self.cpu.mmio_ns)
        msg = CoalescedMessage(entries=[request])
        target.client_qp.post_send(WorkRequest(
            verb=Verb.WRITE, length=msg.total_bytes,
            remote_addr=target.req_region.addr,
            rkey=target.req_region.rkey, payload=msg, signaled=False,
        ))
        response = yield ev
        return response
