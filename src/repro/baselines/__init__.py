"""Baseline systems the paper compares against.

* :mod:`.raw_read` — one-sided RC reads (Fig. 2a motivation)
* :mod:`.ud_rpc` — generic UD RPC engine (Fig. 2b motivation)
* :mod:`.erpc` — eRPC cost profile over the UD engine (Figs. 6-8, 16-18)
* :mod:`.fasst` — FaSST cost profile over the UD engine (Figs. 14-15)
* :mod:`.farm` — RC RPC with FaRM-style spinlock QP sharing / dedicated
  per-thread QPs (Fig. 9)
"""

from .dct import DCT_CONNECT_NS, DctEndpoint
from .erpc import ERPC_SESSION_CREDITS, ErpcEndpoint, ErpcServer
from .farm import RcHandle, RcRpcClient, RcRpcServer
from .fasst import FASST_TIMEOUT_NS, FasstEndpoint, FasstServer
from .raw_read import ReadClient
from .scalerpc import ScaleRpcClient, ScaleRpcServer
from .ud_rpc import UdChunk, UdEndpoint, UdRequest, UdResponse, UdRpcServer

__all__ = [
    "DCT_CONNECT_NS",
    "DctEndpoint",
    "ERPC_SESSION_CREDITS",
    "ErpcEndpoint",
    "ErpcServer",
    "FASST_TIMEOUT_NS",
    "FasstEndpoint",
    "FasstServer",
    "RcHandle",
    "RcRpcClient",
    "RcRpcServer",
    "ReadClient",
    "ScaleRpcClient",
    "ScaleRpcServer",
    "UdChunk",
    "UdEndpoint",
    "UdRequest",
    "UdResponse",
    "UdRpcServer",
]
