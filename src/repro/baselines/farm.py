"""RC write-based RPC with FaRM-style QP sharing (paper §8.3.1, Fig. 9).

FaRM shares QPs between threads with a **spinlock**: whoever holds the
lock marshals its own request and posts its own RDMA write — no
coalescing, full serialization.  The paper's Fig. 9 compares three
configurations, all implemented here:

* ``threads_per_qp=1`` — no sharing, a dedicated QP per thread;
* ``threads_per_qp=2/4`` — FaRM-like spinlock sharing;

against FLock's combining-based sharing.  The RPC mechanics mirror
FLock's two-RDMA-write scheme (request ring at the server, response ring
at the client) for a fair comparison, minus coalescing, credits, and
scheduling.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..config import CpuConfig
from ..net.fabric import Fabric, Node
from ..sim import Event, Simulator, SpinLock, Store
from ..verbs import QueuePair, Transport, Verb, WorkRequest
from ..flock.message import CoalescedMessage, RpcRequest, RpcResponse
from ..flock.ringbuf import RingBuffer

__all__ = ["RcRpcServer", "RcRpcClient", "RcHandle"]

_thread_seq = itertools.count(1)


class _RcChannel:
    """One client QP with its rings and (optional) spinlock."""

    __slots__ = ("index", "client_qp", "server_qp", "req_region", "resp_region",
                 "resp_ring", "lock", "pending", "posted")

    def __init__(self, index: int, client_qp: QueuePair, server_qp: QueuePair,
                 req_region, resp_region, resp_ring: RingBuffer,
                 lock: Optional[SpinLock]):
        self.index = index
        self.client_qp = client_qp
        self.server_qp = server_qp
        self.req_region = req_region
        self.resp_region = resp_region
        self.resp_ring = resp_ring
        self.lock = lock
        self.pending: Dict[Tuple[int, int], Event] = {}
        self.posted = 0


class RcHandle:
    """A client's set of RC channels to one server."""

    def __init__(self, channels: List[_RcChannel], threads_per_qp: int):
        self.channels = channels
        self.threads_per_qp = threads_per_qp

    def channel_for(self, thread_id: int) -> _RcChannel:
        return self.channels[(thread_id // self.threads_per_qp)
                             % len(self.channels)]


class RcRpcServer:
    """Server half: per-core workers drain per-QP request rings."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: Optional[CpuConfig] = None,
                 n_workers: Optional[int] = None,
                 ring_slots: int = 256):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.cpu = cpu or node.cpu_cfg
        self.ring_slots = ring_slots
        self.n_workers = n_workers if n_workers is not None else len(node.cpu)
        self.handlers: Dict[int, Callable] = {}
        self._inboxes: List[Store] = [Store(sim) for _ in range(self.n_workers)]
        self._rings_per_worker = [0] * self.n_workers
        self._rr = 0
        self.requests_handled = 0
        self._started = False

    def register_handler(self, rpc_id: int, handler: Callable) -> None:
        self.handlers[rpc_id] = handler

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for idx in range(self.n_workers):
            self.sim.spawn(self._worker(idx), name="rc-worker%d" % idx)

    def accept_channel(self) -> Tuple[QueuePair, Any, RingBuffer, Store, int]:
        """Create the server side of one channel; returns routing info."""
        server_qp = QueuePair(self.sim, self.node, self.fabric, Transport.RC)
        region = self.node.memory.register(self.ring_slots * 4096)
        ring = RingBuffer(self.sim, region, self.ring_slots)
        worker = self._rr % self.n_workers
        self._rr += 1
        self._rings_per_worker[worker] += 1
        inbox = self._inboxes[worker]
        return server_qp, region, ring, inbox, worker

    def _worker(self, idx: int) -> Generator[Event, None, None]:
        core = self.node.cpu[idx % len(self.node.cpu)]
        inbox = self._inboxes[idx]
        cpu = self.cpu
        while True:
            channel, msg = yield inbox.get()
            channel_ring, server_qp, resp_region = channel
            channel_ring.consume(msg.total_bytes)
            request: RpcRequest = msg.entries[0]
            yield core.charge(
                cpu.ring_poll_ns
                + cpu.ring_scan_per_qp_ns * self._rings_per_worker[idx]
                + cpu.decode_ns,
                "net-poll",
            )
            size, payload, app_ns = self.handlers[request.rpc_id](request)
            if app_ns > 0:
                yield core.charge(app_ns, "app")
            response = RpcResponse(thread_id=request.thread_id,
                                   seq_id=request.seq_id,
                                   rpc_id=request.rpc_id, size=size,
                                   payload=payload)
            rmsg = CoalescedMessage(entries=[response])
            yield core.charge(cpu.header_build_ns + cpu.mmio_ns, "net-send")
            server_qp.post_send(WorkRequest(
                verb=Verb.WRITE, length=rmsg.total_bytes,
                remote_addr=resp_region.addr, rkey=resp_region.rkey,
                payload=rmsg, signaled=False,
            ))
            self.requests_handled += 1


class RcRpcClient:
    """Client half: spinlock-shared (or dedicated) QPs, one write per RPC."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: Optional[CpuConfig] = None, ring_slots: int = 256):
        self.sim = sim
        self.node = node
        self.fabric = fabric
        self.cpu = cpu or node.cpu_cfg
        self.ring_slots = ring_slots

    def connect(self, server: RcRpcServer, n_qps: int,
                threads_per_qp: int = 1) -> RcHandle:
        server.start()
        channels: List[_RcChannel] = []
        for index in range(n_qps):
            client_qp = QueuePair(self.sim, self.node, self.fabric, Transport.RC)
            server_qp, req_region, req_ring, inbox, _worker = server.accept_channel()
            client_qp.connect(server_qp)
            resp_region = self.node.memory.register(self.ring_slots * 4096)
            resp_ring = RingBuffer(self.sim, resp_region, self.ring_slots)
            lock = SpinLock(self.sim) if threads_per_qp > 1 else None
            channel = _RcChannel(index, client_qp, server_qp, req_region,
                                 resp_region, resp_ring, lock)
            channels.append(channel)

            def on_request(msg, _ring=req_ring, _sqp=server_qp,
                           _resp=resp_region, _inbox=inbox):
                _inbox.try_put(((_ring, _sqp, _resp), msg))

            req_ring.on_message = on_request

            def on_response(msg, _channel=channel):
                _channel.resp_ring.consume(msg.total_bytes)
                response: RpcResponse = msg.entries[0]
                ev = _channel.pending.pop(
                    (response.thread_id, response.seq_id), None)
                if ev is not None and not ev.triggered:
                    ev.succeed(response)

            resp_ring.on_message = on_response
        return RcHandle(channels, threads_per_qp)

    def call(self, handle: RcHandle, thread_id: int, rpc_id: int, size: int,
             payload: Any = None) -> Generator[Event, None, RpcResponse]:
        """One RPC: lock (if shared), marshal, one RDMA write, await reply."""
        channel = handle.channel_for(thread_id)
        seq = next(_thread_seq)
        request = RpcRequest(thread_id=thread_id, seq_id=seq, rpc_id=rpc_id,
                             size=size, payload=payload,
                             created_ns=self.sim.now)
        ev = Event(self.sim)
        channel.pending[(thread_id, seq)] = ev
        if channel.lock is not None:
            yield channel.lock.acquire()
        try:
            yield self.sim.timeout(self.cpu.marshal_ns
                                   + self.cpu.copy_ns_per_byte * size
                                   + self.cpu.header_build_ns
                                   + self.cpu.mmio_ns)
            msg = CoalescedMessage(entries=[request])
            channel.posted += 1
            channel.client_qp.post_send(WorkRequest(
                verb=Verb.WRITE, length=msg.total_bytes,
                remote_addr=channel.req_region.addr,
                rkey=channel.req_region.rkey,
                payload=msg, signaled=False,
            ))
        finally:
            if channel.lock is not None:
                channel.lock.release()
        response = yield ev
        return response
