"""FaSST-like RPC baseline (Kalia et al., OSDI'16).

FaSST runs datagram RPCs with *no* software reliability: it assumes a
lossless fabric and treats a missing response as a rare catastrophic
event (the paper observes exactly this at 16-32 threads — "some client
coroutines do not make progress, which is considered as a packet loss in
their RPC implementation", §8.5.2).  Compared to eRPC it skips the
congestion-control cycles but keeps the recv-recycling and polling tax,
and its receive pools are sized for the common case — overload drops
packets.

Requests carry a timeout so the simulation surfaces losses the way FaSST
does: ``lost_requests`` counts coroutines that stopped making progress.
"""

from __future__ import annotations

from typing import Optional

from ..config import CpuConfig
from ..net.fabric import Fabric, Node
from ..sim import Simulator
from .ud_rpc import UdEndpoint, UdRpcServer

__all__ = ["FasstServer", "FasstEndpoint", "FASST_TIMEOUT_NS"]

#: Detecting a lost RPC (coroutine stuck) — generous virtual timeout.
FASST_TIMEOUT_NS = 400_000.0
#: FaSST's receive pool per worker; overload beyond this drops packets.
FASST_RECV_POOL = 256


class FasstServer(UdRpcServer):
    """UD RPC server with FaSST's cost profile and finite recv pools."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: Optional[CpuConfig] = None,
                 n_workers: Optional[int] = None,
                 recv_pool_per_worker: int = FASST_RECV_POOL):
        super().__init__(sim, node, fabric, cpu=cpu, n_workers=n_workers,
                         recv_pool_per_worker=recv_pool_per_worker,
                         extra_sw_ns=0.0)


class FasstEndpoint(UdEndpoint):
    """Client endpoint: no CC window, loss detected by timeout."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: Optional[CpuConfig] = None,
                 timeout_ns: float = FASST_TIMEOUT_NS):
        super().__init__(sim, node, fabric, cpu=cpu, session_credits=None,
                         extra_sw_ns=0.0, timeout_ns=timeout_ns)
