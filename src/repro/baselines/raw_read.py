"""Raw one-sided RDMA read clients (paper Fig. 2a motivation).

Clients hammer a server region with small RC reads over a configurable
number of QPs.  One-sided reads never touch the server CPU — the
bottleneck that emerges as QPs multiply is the server RNIC's connection
cache: beyond its capacity every read stalls on a PCIe state fetch,
which is the scalability cliff motivating the whole paper.
"""

from __future__ import annotations

from typing import Generator, List

from ..net.fabric import Fabric, Node
from ..sim import Event, Simulator
from ..verbs import QueuePair, Transport, Verb, WorkRequest

__all__ = ["ReadClient"]


class ReadClient:
    """Issues a closed loop of fixed-size reads over a set of QPs."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 server: Node, region, n_qps: int, read_size: int = 16,
                 outstanding_per_qp: int = 4):
        self.sim = sim
        self.node = node
        self.region = region
        self.read_size = read_size
        self.outstanding_per_qp = outstanding_per_qp
        self.completed = 0
        #: Optional ``(started_ns, now_ns)`` callback fired on every
        #: successful read — purely passive (no events, no RNG), used by
        #: the harness for windowed SLO latency timelines.
        self.on_complete = None
        self.qps: List[QueuePair] = []
        for _ in range(n_qps):
            cqp = QueuePair(sim, node, fabric, Transport.RC)
            sqp = QueuePair(sim, server, fabric, Transport.RC)
            cqp.connect(sqp)
            self.qps.append(cqp)

    def start(self) -> None:
        """Spawn ``outstanding_per_qp`` pipelined readers per QP."""
        for qp in self.qps:
            for _ in range(self.outstanding_per_qp):
                self.sim.spawn(self._reader(qp), name="raw-read")

    def _reader(self, qp: QueuePair) -> Generator[Event, None, None]:
        while True:
            started = self.sim.now
            wc = yield qp.post_send(WorkRequest(
                verb=Verb.READ, length=self.read_size,
                remote_addr=self.region.addr, rkey=self.region.rkey,
                signaled=False,
            ))
            if wc.ok:
                self.completed += 1
                if self.on_complete is not None:
                    self.on_complete(started, self.sim.now)
