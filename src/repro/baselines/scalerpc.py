"""ScaleRPC-like time-sharing baseline (paper §10).

ScaleRPC (Chen et al., EuroSys'19) keeps the RNIC cache warm by
*time-sharing*: clients are partitioned into connection groups and the
server serves one group per time slice, so only that group's QP state is
hot.  The paper's critique — which this model reproduces — is that the
required coordination "increases tail latency": a client whose slice
just ended parks until its group comes around again.

The data path reuses the RC write-based RPC mechanics of
:mod:`repro.baselines.farm`; the addition is the group gate.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from ..config import CpuConfig
from ..net.fabric import Fabric, Node
from ..sim import Event, Simulator
from .farm import RcHandle, RcRpcClient, RcRpcServer

__all__ = ["ScaleRpcServer", "ScaleRpcClient"]


class ScaleRpcServer(RcRpcServer):
    """RC RPC server that serves one connection group per time slice."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: CpuConfig = None, n_workers: int = None,
                 n_groups: int = 4, slice_ns: float = 50_000.0):
        super().__init__(sim, node, fabric, cpu=cpu, n_workers=n_workers)
        if n_groups < 1:
            raise ValueError("need at least one group")
        if slice_ns <= 0:
            raise ValueError("slice must be positive")
        self.n_groups = n_groups
        self.slice_ns = slice_ns
        self.current_group = 0
        self.rotations = 0
        self._group_waiters: Dict[int, List[Event]] = {
            g: [] for g in range(n_groups)}
        self._next_group_rr = 0
        sim.spawn(self._rotate(), name="scalerpc-rotate")

    def allocate_group(self) -> int:
        """Assign the next connecting client to a group round-robin."""
        group = self._next_group_rr % self.n_groups
        self._next_group_rr += 1
        return group

    def wait_for_group(self, group: int) -> Event:
        """Event firing when ``group``'s slice begins (or immediately)."""
        ev = Event(self.sim)
        if group == self.current_group:
            ev.succeed()
        else:
            self._group_waiters[group].append(ev)
        return ev

    def _rotate(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.slice_ns)
            self.current_group = (self.current_group + 1) % self.n_groups
            self.rotations += 1
            waiters = self._group_waiters[self.current_group]
            self._group_waiters[self.current_group] = []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()


class ScaleRpcClient(RcRpcClient):
    """RC RPC client gated on its connection group's time slice."""

    def connect(self, server: ScaleRpcServer, n_qps: int,
                threads_per_qp: int = 1) -> RcHandle:
        handle = super().connect(server, n_qps, threads_per_qp)
        handle.group = server.allocate_group()
        handle.server = server
        return handle

    def call(self, handle: RcHandle, thread_id: int, rpc_id: int, size: int,
             payload=None) -> Generator:
        """One RPC, but only inside the handle's group slice."""
        server: ScaleRpcServer = handle.server
        if handle.group != server.current_group:
            yield server.wait_for_group(handle.group)
        response = yield from super().call(handle, thread_id, rpc_id, size,
                                           payload)
        return response
