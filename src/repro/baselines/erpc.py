"""eRPC-like baseline (Kalia et al., NSDI'19) — the paper's main RPC rival.

eRPC runs general-purpose RPCs over UD with *software* reliability and
congestion control (Timely-style RTT tracking, sessions with credit
windows).  We model it as the UD engine with eRPC's cost profile:

* a per-session credit window (default 8 outstanding requests),
* extra per-message software cycles for the congestion-control and
  reliability bookkeeping on both ends.

Its scalability comes for free (no per-connection NIC state); its
weakness — the one Figs. 6-8 expose — is the per-message server CPU tax.
"""

from __future__ import annotations

from typing import Optional

from ..config import CpuConfig
from ..net.fabric import Fabric, Node
from ..sim import Simulator
from .ud_rpc import UdEndpoint, UdRpcServer

__all__ = ["ErpcServer", "ErpcEndpoint", "ERPC_EXTRA_SW_NS", "ERPC_SESSION_CREDITS"]

#: Extra per-message cycles for Timely congestion control + reliability
#: timers (beyond the base UD software transport).
ERPC_EXTRA_SW_NS = 120.0
#: eRPC's default session request window.
ERPC_SESSION_CREDITS = 8


class ErpcServer(UdRpcServer):
    """UD RPC server with the eRPC software cost profile."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: Optional[CpuConfig] = None,
                 n_workers: Optional[int] = None):
        super().__init__(sim, node, fabric, cpu=cpu, n_workers=n_workers,
                         recv_pool_per_worker=2048,
                         extra_sw_ns=ERPC_EXTRA_SW_NS)


class ErpcEndpoint(UdEndpoint):
    """Client endpoint with eRPC session credits + CC costs."""

    def __init__(self, sim: Simulator, node: Node, fabric: Fabric,
                 cpu: Optional[CpuConfig] = None,
                 session_credits: int = ERPC_SESSION_CREDITS):
        super().__init__(sim, node, fabric, cpu=cpu,
                         session_credits=session_credits,
                         extra_sw_ns=ERPC_EXTRA_SW_NS)
