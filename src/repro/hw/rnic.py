"""The RDMA NIC model.

One :class:`Rnic` per node.  It combines the pieces the paper's Fig. 1
identifies:

* a finite **connection cache** (QP contexts) and **translation cache**
  (MTT/MPT) backed over PCIe,
* a **processing pipeline** with a bounded message rate per direction,
* a **wire TX port** that serializes packets at link bandwidth, and
* **PCIe** for state fetches and completion DMA.

The verbs layer calls :meth:`tx_process` / :meth:`rx_process` around the
fabric hop; everything is expressed as process generators so the costs
compose in virtual time.
"""

from __future__ import annotations

from typing import Generator, Iterable

from ..config import NetConfig, NicConfig
from ..sim import Event, Resource, Simulator, TokenBucket
from .cache import LruCache
from .pcie import PcieLink

__all__ = ["Rnic"]


class Rnic:
    """Model of one RDMA-capable NIC."""

    def __init__(self, sim: Simulator, cfg: NicConfig, net: NetConfig, name: str = "rnic"):
        self.sim = sim
        self.cfg = cfg
        self.net = net
        self.name = name
        self.qp_cache = LruCache(cfg.qp_cache_entries)
        self.mtt_cache = LruCache(cfg.mtt_cache_entries)
        self.pcie = PcieLink(sim, cfg.cache_miss_ns, cfg.miss_slots)
        self._tx_port = Resource(sim, capacity=1)
        self._tx_bucket = TokenBucket(sim, cfg.message_rate, cfg.message_burst)
        self._rx_bucket = TokenBucket(sim, cfg.message_rate, cfg.message_burst)
        # Statistics.
        self.messages_tx = 0
        self.messages_rx = 0
        self.bytes_tx = 0
        self.packets_tx = 0
        self.cqes_generated = 0

    # -- wire-format helpers --------------------------------------------

    def packets_for(self, nbytes: int) -> int:
        """Number of MTU-sized packets a message occupies."""
        if nbytes <= 0:
            return 1
        return (nbytes + self.net.mtu - 1) // self.net.mtu

    def wire_bytes(self, nbytes: int) -> int:
        """On-the-wire size including per-packet headers."""
        return nbytes + self.packets_for(nbytes) * self.net.per_packet_header_bytes

    def wire_time_ns(self, nbytes: int) -> float:
        return self.wire_bytes(nbytes) / self.net.bandwidth_bytes_per_ns

    # -- state-cache lookups ---------------------------------------------

    def _lookup(
        self, qpn: int, rkeys: Iterable[int]
    ) -> Generator[Event, None, None]:
        """Touch the QP context and any memory-translation entries.

        Misses stall on PCIe; concurrent misses contend for the bounded
        PCIe read slots, which is what converts thrashing into collapse.
        """
        if not self.qp_cache.access(("qp", qpn)):
            yield from self.pcie.read()
        for rkey in rkeys:
            if not self.mtt_cache.access(("mr", rkey)):
                yield from self.pcie.read()

    # -- directional processing -------------------------------------------

    def tx_process(
        self, nbytes: int, qpn: int, rkeys: Iterable[int] = ()
    ) -> Generator[Event, None, None]:
        """NIC-side work to emit one message: state lookup, rate limit,
        and wire serialization (the TX port is held for the wire time)."""
        yield from self._lookup(qpn, rkeys)
        delay = self._tx_bucket.delay_for()
        if delay > 0:
            yield self.sim.timeout(delay)
        wire = self.wire_time_ns(nbytes)
        yield self._tx_port.acquire()
        try:
            yield self.sim.timeout(wire)
        finally:
            self._tx_port.release()
        self.messages_tx += 1
        self.bytes_tx += nbytes
        self.packets_tx += self.packets_for(nbytes)

    def rx_process(
        self, nbytes: int, qpn: int, rkeys: Iterable[int] = ()
    ) -> Generator[Event, None, None]:
        """NIC-side work to land one inbound message."""
        delay = self._rx_bucket.delay_for()
        if delay > 0:
            yield self.sim.timeout(delay)
        yield from self._lookup(qpn, rkeys)
        self.messages_rx += 1

    def cqe_dma(self) -> Generator[Event, None, None]:
        """DMA one completion entry to the host CQ (skipped when the work
        request is unsignaled; §7 selective signaling)."""
        self.cqes_generated += 1
        yield self.sim.timeout(self.cfg.cqe_dma_ns)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "messages_tx": self.messages_tx,
            "messages_rx": self.messages_rx,
            "bytes_tx": self.bytes_tx,
            "packets_tx": self.packets_tx,
            "qp_cache_miss_ratio": self.qp_cache.stats.miss_ratio,
            "pcie_reads": self.pcie.reads_issued,
            "cqes": self.cqes_generated,
        }
