"""The RDMA NIC model.

One :class:`Rnic` per node.  It combines the pieces the paper's Fig. 1
identifies:

* a finite **connection cache** (QP contexts) and **translation cache**
  (MTT/MPT) backed over PCIe,
* a **processing pipeline** with a bounded message rate per direction,
* a **wire TX port** that serializes packets at link bandwidth, and
* **PCIe** for state fetches and completion DMA.

The verbs layer calls :meth:`tx_process` / :meth:`rx_process` around the
fabric hop; everything is expressed as process generators so the costs
compose in virtual time.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from ..config import NetConfig, NicConfig
from ..obs import faults
from ..obs.span import Span
from ..sim import Event, Resource, Simulator, TokenBucket
from .cache import LruCache
from .pcie import PcieLink

__all__ = ["Rnic"]


class Rnic:
    """Model of one RDMA-capable NIC."""

    def __init__(self, sim: Simulator, cfg: NicConfig, net: NetConfig, name: str = "rnic"):
        self.sim = sim
        self.cfg = cfg
        self.net = net
        self.name = name
        self.qp_cache = LruCache(cfg.qp_cache_entries)
        self.mtt_cache = LruCache(cfg.mtt_cache_entries)
        self.pcie = PcieLink(sim, cfg.cache_miss_ns, cfg.miss_slots,
                             name=name + ".pcie")
        self._tx_port = Resource(sim, capacity=1, name="tx_port")
        #: Optional transmit-pipeline gate installed by the fabric when
        #: PFC is on: ``tx_gate(span)`` yields a generator that blocks
        #: while this node is PAUSE-flow-controlled.  The stall happens
        #: before serialization, for every destination — head-of-line
        #: blocking at the NIC.
        self.tx_gate = None
        self._tx_bucket = TokenBucket(sim, cfg.message_rate, cfg.message_burst)
        self._rx_bucket = TokenBucket(sim, cfg.message_rate, cfg.message_burst)
        #: Fluid-model FIFO clock for the wire TX port: the virtual time
        #: the serializer is booked through.  The analytic twin of
        #: ``_tx_port`` — same one-message-at-a-time semantics, no
        #: resource events.
        self._fluid_tx_free = 0.0
        # Statistics.
        self.messages_tx = 0
        self.messages_rx = 0
        self.bytes_tx = 0
        self.packets_tx = 0
        self.cqes_generated = 0
        #: CQE DMAs counted in ``cqes_generated`` whose DMA latency has
        #: not elapsed yet (the CQ push happens right after it does) —
        #: the slack term in the CQE-conservation invariant.
        self.cqes_dma_pending = 0
        # Typed instruments (no-op singletons unless telemetry installed
        # on the simulator before construction).  ``_obs`` caches
        # ``sim.instrumented`` once so the per-message hot path pays a
        # single bool test instead of null-object calls (see
        # docs/performance.md).
        self._obs = sim.instrumented
        #: Occupancy tracker (cost observatory); cached like ``_obs``.
        self._occ = sim.occupancy
        metrics = sim.metrics
        self._m_qp_hits = metrics.counter("rnic.qp_cache.hits")
        self._m_qp_misses = metrics.counter("rnic.qp_cache.misses")
        self._m_mtt_hits = metrics.counter("rnic.mtt_cache.hits")
        self._m_mtt_misses = metrics.counter("rnic.mtt_cache.misses")
        self._m_tx = metrics.counter("rnic.messages_tx")
        self._m_rx = metrics.counter("rnic.messages_rx")
        self._m_tx_bytes = metrics.counter("rnic.bytes_tx")
        self._m_cqes = metrics.counter("rnic.cqes")
        if metrics.enabled:
            # Per-NIC gauges: cheap callables sampled only at snapshot.
            metrics.gauge("rnic.qp_cache.evictions",
                          fn=lambda: self.qp_cache.stats.evictions,
                          nic=name)
            metrics.gauge("rnic.mtt_cache.evictions",
                          fn=lambda: self.mtt_cache.stats.evictions,
                          nic=name)
            metrics.gauge("rnic.tx_port.occupancy",
                          fn=lambda: self._tx_port.in_use, nic=name)
            metrics.gauge("rnic.pcie.outstanding",
                          fn=lambda: self.pcie.outstanding, nic=name)
        sim.register_component(self)

    # -- wire-format helpers --------------------------------------------

    def packets_for(self, nbytes: int) -> int:
        """Number of MTU-sized packets a message occupies."""
        if nbytes <= 0:
            return 1
        return (nbytes + self.net.mtu - 1) // self.net.mtu

    def wire_bytes(self, nbytes: int) -> int:
        """On-the-wire size including per-packet headers."""
        return nbytes + self.packets_for(nbytes) * self.net.per_packet_header_bytes

    def wire_time_ns(self, nbytes: int) -> float:
        return self.wire_bytes(nbytes) / self.net.bandwidth_bytes_per_ns

    # -- state-cache lookups ---------------------------------------------

    def _lookup(
        self, qpn: int, rkeys: Iterable[int],
        span: Optional[Span] = None,
    ) -> Generator[Event, None, None]:
        """Touch the QP context and any memory-translation entries.

        Misses stall on PCIe; concurrent misses contend for the bounded
        PCIe read slots, which is what converts thrashing into collapse.
        A carried ``span`` gets one ``pcie_stall`` sub-phase per miss and
        hit/miss annotations.
        """
        if self.qp_cache.access(("qp", qpn)):
            if self._obs:
                self._m_qp_hits.inc()
                if faults.ACTIVE and "rnic.double_count_hit" in faults.ACTIVE:
                    self._m_qp_hits.inc()
            if span is not None:
                span.bump("qp_hits")
        else:
            if self._obs:
                self._m_qp_misses.inc()
            if span is not None:
                span.bump("qp_misses")
                stall_t0 = self.sim.now
                yield from self.pcie.read(span)
                span.add_phase("pcie_stall", stall_t0, self.sim.now)
            else:
                yield from self.pcie.read()
        for rkey in rkeys:
            if self.mtt_cache.access(("mr", rkey)):
                if self._obs:
                    self._m_mtt_hits.inc()
            else:
                if self._obs:
                    self._m_mtt_misses.inc()
                if span is not None:
                    span.bump("mtt_misses")
                    stall_t0 = self.sim.now
                    yield from self.pcie.read(span)
                    span.add_phase("pcie_stall", stall_t0, self.sim.now)
                else:
                    yield from self.pcie.read()

    # -- directional processing -------------------------------------------

    def tx_process(
        self, nbytes: int, qpn: int, rkeys: Iterable[int] = (),
        span: Optional[Span] = None,
    ) -> Generator[Event, None, None]:
        """NIC-side work to emit one message: state lookup, rate limit,
        and wire serialization (the TX port is held for the wire time).
        A carried ``span`` records a ``nic_tx`` phase with ``pcie_stall``,
        ``tx_queue``, and ``wire`` sub-phases."""
        t0 = self.sim.now
        if self.tx_gate is not None:
            yield from self.tx_gate(span)
        yield from self._lookup(qpn, rkeys, span)
        delay = self._tx_bucket.delay_for()
        if delay > 0:
            if span is not None:
                span.wait("nic_throttle", self.sim.now, self.sim.now + delay)
            yield self.sim.timeout(delay)
        wire = self.wire_time_ns(nbytes)
        port_t0 = self.sim.now
        yield self._tx_port.acquire(span)
        try:
            if self._occ is not None:
                # The TX engine serializes this message starting the
                # instant the port was granted.
                self._occ.busy("rnic.tx." + self.name, self.sim.now,
                               self.sim.now + wire)
            if span is not None:
                port_t1 = self.sim.now
                if port_t1 > port_t0:
                    span.add_phase("tx_queue", port_t0, port_t1)
                span.add_phase("wire", port_t1, port_t1 + wire)
                span.wait("wire", port_t1, port_t1 + wire)
            yield self.sim.timeout(wire)
        finally:
            self._tx_port.release()
        self.messages_tx += 1
        self.bytes_tx += nbytes
        self.packets_tx += self.packets_for(nbytes)
        if self._obs:
            self._m_tx.inc()
            self._m_tx_bytes.inc(nbytes)
        if span is not None:
            span.add_phase("nic_tx", t0, self.sim.now)

    def rx_process(
        self, nbytes: int, qpn: int, rkeys: Iterable[int] = (),
        span: Optional[Span] = None,
    ) -> Generator[Event, None, None]:
        """NIC-side work to land one inbound message."""
        t0 = self.sim.now
        delay = self._rx_bucket.delay_for()
        if delay > 0:
            if span is not None:
                span.wait("nic_throttle", self.sim.now, self.sim.now + delay)
            yield self.sim.timeout(delay)
        yield from self._lookup(qpn, rkeys, span)
        self.messages_rx += 1
        if self._obs:
            self._m_rx.inc()
        if span is not None:
            span.add_phase("nic_rx", t0, self.sim.now)

    # -- analytic (fluid-model) twins --------------------------------------
    #
    # The fluid transport model (repro.net.flow) advances a whole
    # transfer in one event, so the per-stage costs above must also be
    # computable synchronously.  These twins share the exact formulas and
    # ledgers with the stepped pipeline — same cache mutations, same
    # token buckets, same counters — and return nanoseconds instead of
    # yielding events.

    def lookup_time_ns(
        self, qpn: int, rkeys: Iterable[int] = (),
        span: Optional[Span] = None, at: Optional[float] = None,
    ) -> float:
        """Analytic twin of :meth:`_lookup`: touch the QP/MTT caches and
        return the total PCIe stall for any misses (see
        :meth:`repro.hw.pcie.PcieLink.read_time_ns`).  One lookup's
        misses (QP then MTT) are serial fetches, batched into a single
        backlog booking so they pay ``n * latency`` plus one queueing
        delay behind other messages' reads."""
        misses = 0
        if self.qp_cache.access(("qp", qpn)):
            if self._obs:
                self._m_qp_hits.inc()
                if faults.ACTIVE and "rnic.double_count_hit" in faults.ACTIVE:
                    self._m_qp_hits.inc()
            if span is not None:
                span.bump("qp_hits")
        else:
            misses += 1
            if self._obs:
                self._m_qp_misses.inc()
            if span is not None:
                span.bump("qp_misses")
        for rkey in rkeys:
            if self.mtt_cache.access(("mr", rkey)):
                if self._obs:
                    self._m_mtt_hits.inc()
            else:
                misses += 1
                if self._obs:
                    self._m_mtt_misses.inc()
                if span is not None:
                    span.bump("mtt_misses")
        if misses == 0:
            return 0.0
        return self.pcie.read_time_ns(span, at=at, n=misses)

    def tx_time_ns(
        self, nbytes: int, qpn: int, rkeys: Iterable[int] = (),
        span: Optional[Span] = None,
    ) -> float:
        """Analytic twin of :meth:`tx_process`: state lookup, rate limit,
        and wire serialization against the fluid FIFO clock.  Returns the
        ns until the last byte is on the wire; bumps the same structural
        ledgers and counters as the stepped pipeline."""
        now = self.sim.now
        t = now + self.lookup_time_ns(qpn, rkeys, span)
        delay = self._tx_bucket.delay_for()
        if delay > 0:
            if span is not None:
                span.wait("nic_throttle", t, t + delay)
            t += delay
        wire = self.wire_time_ns(nbytes)
        start = self._fluid_tx_free if self._fluid_tx_free > t else t
        self._fluid_tx_free = start + wire
        if self._occ is not None:
            self._occ.busy("rnic.tx." + self.name, start, start + wire)
        if span is not None:
            if start > t:
                span.add_phase("tx_queue", t, start)
            span.add_phase("wire", start, start + wire)
            span.wait("wire", start, start + wire)
        t = start + wire
        self.messages_tx += 1
        self.bytes_tx += nbytes
        self.packets_tx += self.packets_for(nbytes)
        if self._obs:
            self._m_tx.inc()
            self._m_tx_bytes.inc(nbytes)
        if span is not None:
            span.add_phase("nic_tx", now, t)
        return t - now

    def rx_time_ns(
        self, nbytes: int, qpn: int, rkeys: Iterable[int] = (),
        span: Optional[Span] = None, at: Optional[float] = None,
    ) -> float:
        """Analytic twin of :meth:`rx_process`.  ``at`` is the virtual
        arrival time used to date span annotations (the fluid caller
        computes it without advancing the clock)."""
        t0 = self.sim.now if at is None else at
        total = self._rx_bucket.delay_for(at=t0)
        if total > 0 and span is not None:
            span.wait("nic_throttle", t0, t0 + total)
        total += self.lookup_time_ns(qpn, rkeys, span, at=t0 + total)
        if span is not None:
            span.add_phase("nic_rx", t0, t0 + total)
        return total

    def commit_rx(self) -> None:
        """Book one received message.  The stepped pipeline counts rx in
        the same event that counts the fabric delivery, so a windowed
        run cut off mid-flight still satisfies the delivered==rx audit;
        the fluid caller computes :meth:`rx_time_ns` up front and calls
        this only when the consolidated timeout actually lands."""
        self.messages_rx += 1
        if self._obs:
            self._m_rx.inc()

    def cqe_dma(self) -> Generator[Event, None, None]:
        """DMA one completion entry to the host CQ (skipped when the work
        request is unsignaled; §7 selective signaling)."""
        self.cqes_generated += 1
        if self._obs:
            self._m_cqes.inc()
        self.cqes_dma_pending += 1
        yield self.sim.timeout(self.cfg.cqe_dma_ns)
        self.cqes_dma_pending -= 1

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "messages_tx": self.messages_tx,
            "messages_rx": self.messages_rx,
            "bytes_tx": self.bytes_tx,
            "packets_tx": self.packets_tx,
            "qp_cache_miss_ratio": self.qp_cache.stats.miss_ratio,
            "pcie_reads": self.pcie.reads_issued,
            "cqes": self.cqes_generated,
        }
