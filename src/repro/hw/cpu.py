"""CPU cost accounting.

We do not simulate an OS scheduler: each simulated software thread is a
DES process, and a *core* is the implicit serial execution of one such
process.  What we do track is how much virtual time each core spends on
network-stack work versus application work, because the paper's central
CPU claim (§2.2, §8.3.1) is that UD burns most of its cycles inside the
userspace network libraries while FLock's coalescing frees them.
"""

from __future__ import annotations

from typing import Dict, Generator

from ..sim import Event, Simulator

__all__ = ["CoreMeter", "CpuMeter"]


class CoreMeter:
    """Busy-time meter for one core, split by charge category."""

    def __init__(self, sim: Simulator, name: str = "core"):
        self.sim = sim
        self.name = name
        self.busy_ns: Dict[str, float] = {}
        self._started_at = sim.now

    def charge(self, ns: float, category: str = "app") -> Event:
        """Consume ``ns`` of this core; returns the timeout to yield on."""
        if ns < 0:
            raise ValueError("negative CPU charge")
        self.busy_ns[category] = self.busy_ns.get(category, 0.0) + ns
        return self.sim.timeout(ns)

    def charge_gen(self, ns: float, category: str = "app") -> Generator[Event, None, None]:
        yield self.charge(ns, category)

    @property
    def total_busy_ns(self) -> float:
        return sum(self.busy_ns.values())

    def utilization(self) -> float:
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_busy_ns / elapsed)

    def fraction(self, category: str) -> float:
        total = self.total_busy_ns
        if total <= 0:
            return 0.0
        return self.busy_ns.get(category, 0.0) / total


class CpuMeter:
    """Aggregates the cores of one node."""

    def __init__(self, sim: Simulator, cores: int, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self.cores = [CoreMeter(sim, "%s.core%d" % (name, i)) for i in range(cores)]

    def __getitem__(self, idx: int) -> CoreMeter:
        return self.cores[idx]

    def __len__(self) -> int:
        return len(self.cores)

    def utilization(self) -> float:
        if not self.cores:
            return 0.0
        return sum(core.utilization() for core in self.cores) / len(self.cores)

    def network_fraction(self) -> float:
        """Share of busy cycles spent in network-stack categories."""
        total = sum(core.total_busy_ns for core in self.cores)
        if total <= 0:
            return 0.0
        net = sum(
            ns
            for core in self.cores
            for cat, ns in core.busy_ns.items()
            if cat.startswith("net")
        )
        return net / total
