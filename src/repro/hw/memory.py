"""Host memory regions and registration.

RDMA requires memory to be *registered* with the NIC before remote access:
registration pins pages and installs translation (MTT) and protection
(MPT) entries.  We track regions per node so that

* one-sided verbs can validate [addr, addr+len) falls inside a registered
  region with the right permissions, and
* the RNIC model can charge MTT-cache misses per region touched.

Payloads themselves are not byte-accurate; a region stores an optional
``dict`` backing so tests can verify data actually "moves" end to end.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["MemoryRegion", "HostMemory", "AccessError"]


class AccessError(Exception):
    """Out-of-bounds or permission-violating remote access."""


class MemoryRegion:
    """A registered, remotely accessible slab of host memory."""

    _next_key = 1

    def __init__(self, addr: int, length: int, *, remote_write: bool = True,
                 remote_read: bool = True, remote_atomic: bool = True):
        if length <= 0:
            raise ValueError("region length must be positive")
        self.addr = addr
        self.length = length
        self.remote_write = remote_write
        self.remote_read = remote_read
        self.remote_atomic = remote_atomic
        self.rkey = MemoryRegion._next_key
        MemoryRegion._next_key += 1
        #: 8-byte-granularity backing store for atomics and data checks.
        self.words: Dict[int, int] = {}
        #: Optional delivery hook: RDMA writes landing in this region call
        #: ``sink(payload, addr, length)`` — how ring buffers receive
        #: messages without a receive queue.
        self.sink = None

    @property
    def end(self) -> int:
        return self.addr + self.length

    def contains(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.end

    def check(self, addr: int, length: int, op: str) -> None:
        """Raise :class:`AccessError` unless the access is permitted."""
        if not self.contains(addr, length):
            raise AccessError(
                "access [%d, %d) outside region [%d, %d)"
                % (addr, addr + length, self.addr, self.end)
            )
        if op == "write" and not self.remote_write:
            raise AccessError("region %d not remote-writable" % self.rkey)
        if op == "read" and not self.remote_read:
            raise AccessError("region %d not remote-readable" % self.rkey)
        if op == "atomic" and not self.remote_atomic:
            raise AccessError("region %d does not allow remote atomics" % self.rkey)

    def read_word(self, addr: int) -> int:
        self.check(addr, 8, "read")
        return self.words.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        self.check(addr, 8, "write")
        self.words[addr] = value


class HostMemory:
    """All registered regions of one node, with a simple bump allocator."""

    def __init__(self):
        self._regions: Dict[int, MemoryRegion] = {}
        self._next_addr = 0x1000_0000

    def register(self, length: int, **perms) -> MemoryRegion:
        """Register a fresh region of ``length`` bytes."""
        region = MemoryRegion(self._next_addr, length, **perms)
        # Keep regions page-aligned and disjoint.
        self._next_addr += (length + 4095) // 4096 * 4096
        self._regions[region.rkey] = region
        return region

    def deregister(self, rkey: int) -> None:
        self._regions.pop(rkey, None)

    def lookup(self, rkey: int) -> MemoryRegion:
        try:
            return self._regions[rkey]
        except KeyError:
            raise AccessError("unknown rkey %d" % rkey) from None

    def region_for(self, addr: int, length: int) -> Optional[MemoryRegion]:
        """Find the region covering [addr, addr+length), if any."""
        for region in self._regions.values():
            if region.contains(addr, length):
                return region
        return None

    def __len__(self) -> int:
        return len(self._regions)
