"""Finite caches inside the RNIC.

The RNIC caches connection state (QP contexts, congestion-control state)
and memory-translation entries (MTT/MPT) in on-chip SRAM (paper Fig. 1).
When the working set exceeds capacity the NIC fetches evicted entries from
host memory over PCIe — the mechanism behind the paper's Fig. 2(a)
scalability cliff.  We model both caches as plain LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["LruCache", "CacheStats"]


class CacheStats:
    """Hit/miss counters, exposed by every cache for experiment reports."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self) -> str:
        return "CacheStats(hits=%d, misses=%d, evictions=%d)" % (
            self.hits,
            self.misses,
            self.evictions,
        )


class LruCache:
    """Least-recently-used cache of opaque keys.

    :meth:`access` both queries and inserts: a miss immediately installs
    the key (the NIC fetches the state and keeps it), evicting the LRU
    entry if the cache is full.  This models the NIC's behaviour where the
    fetched context is cached for subsequent packets.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def access(self, key: Hashable) -> bool:
        """Touch ``key``; returns True on hit, False on miss (with insert)."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.stats.evictions += 1
        entries[key] = None
        return False

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` if present (e.g. QP destroyed); True if it was."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()
