"""Hardware substrate: RNIC, caches, PCIe, CPU meters, host memory."""

from .cache import CacheStats, LruCache
from .cpu import CoreMeter, CpuMeter
from .memory import AccessError, HostMemory, MemoryRegion
from .pcie import PcieLink
from .rnic import Rnic

__all__ = [
    "AccessError",
    "CacheStats",
    "CoreMeter",
    "CpuMeter",
    "HostMemory",
    "LruCache",
    "MemoryRegion",
    "PcieLink",
    "Rnic",
]
