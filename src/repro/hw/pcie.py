"""PCIe link between the RNIC and host memory.

Used for two things the paper cares about:

* fetching evicted connection state on an RNIC cache miss (the dominant
  cost at high QP counts), and
* DMA of completion-queue entries, which selective signaling (§7)
  suppresses for N-1 out of N work requests.

The link supports a bounded number of concurrent outstanding reads
(``slots``), modelling the NIC's finite number of PCIe tags; when all
slots are busy further fetches queue FIFO — which is what converts a high
miss *ratio* into a throughput *collapse*.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Event, Resource, Simulator

__all__ = ["PcieLink"]


class PcieLink:
    """A host<->NIC PCIe connection with bounded outstanding reads."""

    def __init__(self, sim: Simulator, read_latency_ns: float, slots: int,
                 name: str = "pcie"):
        if read_latency_ns < 0:
            raise ValueError("negative PCIe latency")
        self.sim = sim
        self.name = name
        self.read_latency_ns = read_latency_ns
        self._slots = Resource(sim, capacity=max(1, slots), name="pcie_slots")
        self.reads_issued = 0
        self.busy_ns = 0.0
        #: Fluid-model backlog clock: the virtual time the link's
        #: aggregate service capacity is booked through.  Each analytic
        #: read books ``latency / slots`` of capacity, so the steady
        #: drain rate matches the stepped model's ``slots`` concurrent
        #: fetches of ``latency`` each.
        self._fluid_busy_until = 0.0
        #: Queue delay observed by the most recent analytic read — real
        #: contention (work booked ahead of it), which the fidelity
        #: controller reads as its thrash signal.  ``_fluid_busy_until``
        #: itself is useless for that: receive-side bookings are dated at
        #: message *arrival*, so a cold link can look "busy until" a
        #: future instant without any queueing at all.
        self._fluid_queue_ns = 0.0
        self._obs = sim.instrumented
        #: Occupancy tracker (cost observatory); cached like ``_obs``.
        self._occ = sim.occupancy
        metrics = sim.metrics
        self._m_reads = metrics.counter("pcie.reads")
        self._m_stall_ns = metrics.counter("pcie.stall_ns")
        self._m_queue_ns = metrics.counter("pcie.queue_ns")
        sim.register_component(self)

    @property
    def outstanding(self) -> int:
        return self._slots.in_use

    @property
    def queued(self) -> int:
        return self._slots.queue_len

    def read(self, span=None) -> Generator[Event, None, None]:
        """Process-style: perform one PCIe read (state fetch).

        When ``span`` is given, the whole read — slot queueing plus the
        fetch itself — is recorded as a ``pcie_stall`` wait edge for
        critical-path attribution (the work the span traces cannot make
        progress until the state arrives).  The edge is opened *before*
        queueing so a read still stuck in the backlog when the run ends
        attributes its in-flight wait when the span is flushed.
        """
        self.reads_issued += 1
        if self._obs:
            self._m_reads.inc()
        queued_at = self.sim.now
        occ = self._occ
        if occ is not None:
            occ.sample(self.name + ".queued", queued_at,
                       self._slots.queue_len)
        if span is not None:
            span.wait_begin("pcie_stall", queued_at)
        yield self._slots.acquire()
        if occ is not None:
            occ.add(self.name + ".inflight", self.sim.now, 1.0,
                    capacity=self._slots.capacity)
        try:
            if self._obs:
                self._m_queue_ns.inc(self.sim.now - queued_at)
                self._m_stall_ns.inc(self.read_latency_ns)
            self.busy_ns += self.read_latency_ns
            yield self.sim.timeout(self.read_latency_ns)
        finally:
            self._slots.release()
            if occ is not None:
                occ.add(self.name + ".inflight", self.sim.now, -1.0)
        if span is not None:
            span.wait_end("pcie_stall", self.sim.now)

    def read_time_ns(self, span=None, at=None, n=1) -> float:
        """Analytic twin of :meth:`read` for the fluid transport model.

        Keeps the same ledgers (``reads_issued``, ``busy_ns``) and
        counters (``pcie.reads`` / ``pcie.stall_ns`` / ``pcie.queue_ns``)
        so the qp-cache and byte-conservation auditors balance, but
        charges queueing against a fluid backlog clock instead of the
        slot resource: a backlogged link delays the fetch by the booked
        capacity ahead of it, at the stepped model's aggregate drain
        rate.  Returns the total stall (queue + fetch) in ns; dispatches
        no events.

        ``at`` dates the fetch at a (future) reference time — the fluid
        receive path issues its state fetch when the message *arrives*,
        not when the sender computes the transfer.  ``n`` batches one
        lookup's serial misses (QP then MTT) into a single booking:
        they queue once behind *other* messages' backlog, never behind
        each other's capacity share.
        """
        self.reads_issued += n
        if self._obs:
            self._m_reads.inc(n)
        now = self.sim.now if at is None else at
        start = self._fluid_busy_until if self._fluid_busy_until > now else now
        queue_ns = start - now
        self._fluid_queue_ns = queue_ns
        self._fluid_busy_until = start + (n * self.read_latency_ns
                                          / self._slots.capacity)
        self.busy_ns += n * self.read_latency_ns
        if self._obs:
            self._m_queue_ns.inc(queue_ns)
            self._m_stall_ns.inc(n * self.read_latency_ns)
        total = queue_ns + n * self.read_latency_ns
        if span is not None:
            span.add_phase("pcie_stall", now, now + total)
            span.wait("pcie_stall", now, now + total)
        return total
