"""Shared-resource primitives for the DES kernel.

These model contention: a CPU core, an RNIC processing unit, or a lock is a
:class:`Resource`; a completion queue or a ring of incoming messages is a
:class:`Store`.  All wait queues are strictly FIFO so simulations stay
deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "SpinLock", "TokenBucket", "TrackedStore"]


class Resource:
    """A counted resource with FIFO waiters (a semaphore).

    Usage from a process::

        yield resource.acquire()
        try:
            ...critical section...
        finally:
            resource.release()
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_waiters",
                 "contended", "wait_ns")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        #: Wait-edge resource label for causal attribution.
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        #: Acquires that found the resource full (always counted).
        self.contended = 0
        #: Cumulative contended-wait ns (only accumulated for traced
        #: acquires, i.e. when a span was passed in).
        self.wait_ns = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def acquire(self, span: Any = None) -> Event:
        """Event that fires once a unit of the resource is held.

        When contended and ``span`` is given, the wait is recorded on
        the span as an *open* wait edge named after the resource (see
        :meth:`repro.obs.span.Span.wait_begin`) and closed when the
        acquisition succeeds — so an acquirer still queued when the span
        is flushed at end of run keeps its in-flight wait.
        """
        ev = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
            self.contended += 1
            if span is not None:
                t0 = self.sim.now
                resource = self.name or "resource"
                span.wait_begin(resource, t0)

                def _note(_ev: Event) -> None:
                    waited = self.sim.now - t0
                    if waited > 0:
                        self.wait_ns += waited
                    span.wait_end(resource, self.sim.now)

                ev.add_callback(_note)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release of idle resource")
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class SpinLock(Resource):
    """A mutex that also charges CPU time while waiting.

    Models FaRM-style spinlock QP sharing: a thread spin-waiting on a lock
    burns its core.  In the DES we do not model core stealing, so the
    "burn" shows up as serialization, which is the effect that matters.
    """

    __slots__ = ("contended_acquires", "total_acquires")

    def __init__(self, sim: Simulator, name: str = ""):
        super().__init__(sim, capacity=1, name=name)
        self.contended_acquires = 0
        self.total_acquires = 0

    def acquire(self, span: Any = None) -> Event:
        self.total_acquires += 1
        if self._in_use >= self.capacity:
            self.contended_acquires += 1
        return super().acquire(span)


class Store:
    """An unbounded (or bounded) FIFO channel of items between processes."""

    __slots__ = ("sim", "capacity", "items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Event that fires once the item is in the store."""
        ev = self.sim.event()
        if self._getters:
            # Direct hand-off to the longest-waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = self.sim.event()
        if self.items:
            item = self.items.popleft()
            if self._putters:
                put_ev, put_item = self._putters.popleft()
                self.items.append(put_item)
                put_ev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple:
        """Non-blocking get; returns (ok, item)."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        if self._putters:
            put_ev, put_item = self._putters.popleft()
            self.items.append(put_item)
            put_ev.succeed()
        return True, item


class TrackedStore(Store):
    """A :class:`Store` that optionally keeps queueing-theory accounting.

    When ``track`` is True the store maintains, in addition to the FIFO
    itself:

    * ``accepted`` / ``reaped`` — items that entered / left the queue,
    * ``wait_ns`` — total time completed items spent queued,
    * ``area`` — the time integral of queue depth (``∫ L(t) dt``),
    * ``arrivals`` — entry timestamps of the items currently queued.

    These give two *independent* accountings of the same queue: the area
    integral accumulates depth × elapsed-time at every mutation, while
    the per-item waits accumulate at departure.  Little's law ties them
    together exactly — ``area == wait_ns + Σ residual waits`` — which the
    end-of-run auditors verify per queue (CQs, server worker inboxes).

    Items handed directly to a blocked getter never occupy the queue:
    they count as accepted and reaped with zero wait.  Tracking is off by
    default and the untracked paths delegate straight to :class:`Store`,
    so the perf-guard's null-telemetry contract is unaffected.
    """

    __slots__ = ("track", "name", "accepted", "reaped", "wait_ns", "area",
                 "arrivals", "_area_t")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 track: bool = False, name: str = ""):
        super().__init__(sim, capacity)
        self.track = track
        self.name = name
        self.accepted = 0
        self.reaped = 0
        self.wait_ns = 0.0
        self.area = 0.0
        self.arrivals: Deque[float] = deque()
        self._area_t = sim.now
        if track:
            # Surface the queue to the end-of-run auditors.
            sim.register_component(self)

    # -- accounting helpers ---------------------------------------------

    def _tick(self) -> None:
        """Integrate depth over the interval since the last mutation."""
        now = self.sim.now
        if now > self._area_t:
            self.area += len(self.items) * (now - self._area_t)
            self._area_t = now

    def _sync_arrivals(self) -> None:
        """Stamp arrivals for items a queued putter just slid in."""
        while len(self.arrivals) < len(self.items):
            self.arrivals.append(self.sim.now)
            self.accepted += 1

    def _note_pop(self) -> None:
        self.wait_ns += self.sim.now - self.arrivals.popleft()
        self.reaped += 1

    def residual_wait_ns(self) -> float:
        """Total wait accumulated so far by items still queued."""
        now = self.sim.now
        return sum(now - t for t in self.arrivals)

    # -- tracked mutators ------------------------------------------------

    def put(self, item: Any) -> Event:
        if not self.track:
            return super().put(item)
        self._tick()
        handed = bool(self._getters)
        depth_before = len(self.items)
        ev = super().put(item)
        if handed:
            self.accepted += 1
            self.reaped += 1
        elif len(self.items) > depth_before:
            self.accepted += 1
            self.arrivals.append(self.sim.now)
        return ev

    def try_put(self, item: Any) -> bool:
        if not self.track:
            return super().try_put(item)
        self._tick()
        handed = bool(self._getters)
        ok = super().try_put(item)
        if ok:
            self.accepted += 1
            if handed:
                self.reaped += 1
            else:
                self.arrivals.append(self.sim.now)
        return ok

    def get(self) -> Event:
        if not self.track:
            return super().get()
        self._tick()
        had_item = bool(self.items)
        ev = super().get()
        if had_item:
            self._note_pop()
            self._sync_arrivals()
        return ev

    def try_get(self) -> tuple:
        if not self.track:
            return super().try_get()
        self._tick()
        ok, item = super().try_get()
        if ok:
            self._note_pop()
            self._sync_arrivals()
        return ok, item


class TokenBucket:
    """Rate limiter: ``rate`` tokens/ns with burst up to ``burst`` tokens.

    Used to model hardware message-rate ceilings (e.g. an RNIC's packet
    processing rate) without simulating every pipeline stage.
    """

    __slots__ = ("sim", "rate", "burst", "_tokens", "_last")

    def __init__(self, sim: Simulator, rate_per_ns: float, burst: float = 1.0):
        if rate_per_ns <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate_per_ns
        self.burst = max(1.0, burst)
        self._tokens = self.burst
        self._last = 0.0

    def delay_for(self, tokens: float = 1.0, at: Optional[float] = None) -> float:
        """Consume ``tokens`` and return the ns to wait before proceeding.

        ``at`` refills as of a (future) reference time instead of the
        clock — used by the fluid transport model, which charges
        receive-side costs at the computed arrival time without
        advancing the simulation.  Out-of-order reference times never
        rewind the refill clock.
        """
        now = self.sim.now if at is None else at
        if now > self._last:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate)
            self._last = now
        self._tokens -= tokens
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate
