"""Shared-resource primitives for the DES kernel.

These model contention: a CPU core, an RNIC processing unit, or a lock is a
:class:`Resource`; a completion queue or a ring of incoming messages is a
:class:`Store`.  All wait queues are strictly FIFO so simulations stay
deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "SpinLock", "TokenBucket"]


class Resource:
    """A counted resource with FIFO waiters (a semaphore).

    Usage from a process::

        yield resource.acquire()
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Event that fires once a unit of the resource is held."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release of idle resource")
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class SpinLock(Resource):
    """A mutex that also charges CPU time while waiting.

    Models FaRM-style spinlock QP sharing: a thread spin-waiting on a lock
    burns its core.  In the DES we do not model core stealing, so the
    "burn" shows up as serialization, which is the effect that matters.
    """

    def __init__(self, sim: Simulator):
        super().__init__(sim, capacity=1)
        self.contended_acquires = 0
        self.total_acquires = 0

    def acquire(self) -> Event:
        self.total_acquires += 1
        if self._in_use >= self.capacity:
            self.contended_acquires += 1
        return super().acquire()


class Store:
    """An unbounded (or bounded) FIFO channel of items between processes."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Event that fires once the item is in the store."""
        ev = Event(self.sim)
        if self._getters:
            # Direct hand-off to the longest-waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = Event(self.sim)
        if self.items:
            item = self.items.popleft()
            if self._putters:
                put_ev, put_item = self._putters.popleft()
                self.items.append(put_item)
                put_ev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple:
        """Non-blocking get; returns (ok, item)."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        if self._putters:
            put_ev, put_item = self._putters.popleft()
            self.items.append(put_item)
            put_ev.succeed()
        return True, item


class TokenBucket:
    """Rate limiter: ``rate`` tokens/ns with burst up to ``burst`` tokens.

    Used to model hardware message-rate ceilings (e.g. an RNIC's packet
    processing rate) without simulating every pipeline stage.
    """

    def __init__(self, sim: Simulator, rate_per_ns: float, burst: float = 1.0):
        if rate_per_ns <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate_per_ns
        self.burst = max(1.0, burst)
        self._tokens = self.burst
        self._last = 0.0

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def delay_for(self, tokens: float = 1.0) -> float:
        """Consume ``tokens`` and return the ns to wait before proceeding."""
        self._refill()
        self._tokens -= tokens
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate
