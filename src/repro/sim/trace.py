"""Event tracing and time-series telemetry for simulations.

Research artifacts live and die by their observability: every experiment
in the harness can attach a :class:`Tracer` to record typed events
(message sent, credits granted, QP deactivated, ...) and a
:class:`TimeSeries` sampler to capture periodic gauges (active QPs,
coalescing degree, CPU utilization).  Both export to plain dicts/CSV so
results can be inspected or re-plotted outside the simulator.

Tracing is strictly opt-in and zero-cost when disabled: the hot paths
call ``tracer.emit(...)`` through a no-op stub unless a real tracer is
installed.
"""

from __future__ import annotations

import csv
import io
from collections import Counter, defaultdict
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .core import Event, Simulator

__all__ = ["Tracer", "NullTracer", "TimeSeries", "null_tracer"]


class TraceEvent:
    """One recorded occurrence."""

    __slots__ = ("t", "kind", "fields")

    def __init__(self, t: float, kind: str, fields: Dict[str, Any]):
        self.t = t
        self.kind = kind
        self.fields = fields

    def __repr__(self) -> str:
        return "TraceEvent(t=%.1f, %s, %r)" % (self.t, self.kind, self.fields)


class NullTracer:
    """Does nothing, costs (almost) nothing — the default."""

    enabled = False

    def emit(self, kind: str, **fields) -> None:
        """Discard the event."""

    def count(self, kind: str) -> int:
        """Nothing was recorded."""
        return 0


#: Shared stub for components constructed without a tracer.
null_tracer = NullTracer()


class Tracer:
    """Records typed events in virtual time.

    ``only`` restricts recording to a set of kinds; ``max_events`` guards
    against runaway memory in long sweeps (oldest events are dropped and
    counted).
    """

    enabled = True

    def __init__(self, sim: Simulator, only: Optional[Iterable[str]] = None,
                 max_events: int = 1_000_000):
        self.sim = sim
        self.only = frozenset(only) if only is not None else None
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._counts: Counter = Counter()

    def emit(self, kind: str, **fields) -> None:
        """Record one event at the current virtual time.

        Counts and the event list stay consistent: an event dropped at
        the ``max_events`` bound is tallied in ``dropped`` only, so
        ``count(kind)`` always equals ``len(of_kind(kind))``.
        """
        if self.only is not None and kind not in self.only:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self._counts[kind] += 1
        self.events.append(TraceEvent(self.sim.now, kind, fields))

    # -- queries --------------------------------------------------------

    def count(self, kind: str) -> int:
        return self._counts.get(kind, 0)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [ev for ev in self.events if ev.kind == kind]

    def between(self, start: float, end: float) -> List[TraceEvent]:
        return [ev for ev in self.events if start <= ev.t < end]

    def kinds(self) -> Dict[str, int]:
        return dict(self._counts)

    # -- export -----------------------------------------------------------

    def to_rows(self) -> List[Dict[str, Any]]:
        return [dict(t=ev.t, kind=ev.kind, **ev.fields) for ev in self.events]

    def to_csv(self) -> str:
        """All events as CSV text (columns = union of field names)."""
        rows = self.to_rows()
        if not rows:
            return ""
        columns: List[str] = ["t", "kind"]
        seen = set(columns)
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    columns.append(key)
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(rows)
        return out.getvalue()


class TimeSeries:
    """Periodic gauge sampler driven by a simulation process.

    ``gauges`` maps a series name to a zero-argument callable returning
    the current value; :meth:`start` spawns the sampling process.
    """

    def __init__(self, sim: Simulator, interval_ns: float):
        if interval_ns <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.interval_ns = interval_ns
        self.gauges: Dict[str, Callable[[], float]] = {}
        self.samples: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        self._started = False

    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge to sample every interval."""
        self.gauges[name] = fn

    def start(self) -> None:
        """Spawn the sampling process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.spawn(self._sampler(), name="timeseries")

    def _sampler(self):
        while True:
            yield self.sim.timeout(self.interval_ns)
            now = self.sim.now
            for name, fn in self.gauges.items():
                self.samples[name].append((now, float(fn())))

    # -- queries ----------------------------------------------------------

    def series(self, name: str) -> List[Tuple[float, float]]:
        return list(self.samples.get(name, []))

    def last(self, name: str) -> Optional[float]:
        samples = self.samples.get(name)
        return samples[-1][1] if samples else None

    def mean(self, name: str) -> float:
        samples = self.samples.get(name)
        if not samples:
            return 0.0
        return sum(v for _t, v in samples) / len(samples)

    def to_csv(self) -> str:
        """Aligned samples as CSV (one column per gauge).

        Every sample gets its own row: when a series holds several
        samples at the same timestamp (e.g. gauges re-sampled within one
        event), that timestamp spans as many rows as the deepest series,
        instead of silently keeping only the last value.
        """
        names = sorted(self.samples)
        if not names:
            return ""
        # Per-series samples grouped by timestamp, order preserved.
        grouped: Dict[str, Dict[float, List[float]]] = {}
        for name in names:
            per_t: Dict[float, List[float]] = {}
            for t, v in self.samples[name]:
                per_t.setdefault(t, []).append(v)
            grouped[name] = per_t
        times = sorted({t for per_t in grouped.values() for t in per_t})
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["t"] + names)
        for t in times:
            depth = max(len(grouped[name].get(t, ())) for name in names)
            for i in range(depth):
                row: List[Any] = [t]
                for name in names:
                    vals = grouped[name].get(t, ())
                    row.append(vals[i] if i < len(vals) else "")
                writer.writerow(row)
        return out.getvalue()
