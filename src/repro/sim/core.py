"""Discrete-event simulation kernel.

This module is the foundation of the whole reproduction: every piece of
hardware (RNIC, CPU core, PCIe link), every network hop, and every
application thread is a process running in virtual time on top of this
kernel.  The design follows the classic event/process pattern (as in SimPy,
which is not available offline): scheduled events drive generator-based
processes that ``yield`` events to wait on them.

Time is measured in integer-friendly floats of **nanoseconds**.  All
ordering is deterministic: ties in time are broken by a monotonically
increasing sequence number, so two runs with the same seed produce the same
trace.

The hot path is deliberately split in two (see ``docs/performance.md``):

* **Zero-delay triggers** (CQ completions, credit returns, direct store
  hand-offs, process kick-starts — the majority of all events in an RPC
  simulation) bypass the binary heap entirely and land on an
  *immediate-ready deque* of bare events, drained FIFO.  Any heap entry
  sharing the current timestamp was necessarily pushed *before* the clock
  reached it — i.e. before any current ready entry was appended — so the
  rule "drain the heap while its head's time is ≤ now, then the deque"
  reproduces the exact total order a single ``(time, seq)`` heap would
  produce, without per-entry sequence numbers on the fast path.
* **Delayed events** go through the classic ``(time, seq, event)`` heap.
  ``seq`` is unique per simulator, so heap comparisons never fall through
  to comparing :class:`Event` objects (which are deliberately unorderable).
  A delay so small that ``now + delay`` rounds to ``now`` is routed to the
  ready deque, keeping the invariant above airtight even under float
  rounding.

:meth:`Simulator.run` inlines the event dispatch loop — no per-event
method calls beyond the callbacks themselves — while :meth:`Simulator.step`
remains the observable single-step API with identical semantics.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from time import perf_counter, perf_counter_ns
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..obs.registry import null_registry
from ..obs.span import null_span_log

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, bad yields, ...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party passes ``cause`` to describe why; e.g. the
    sender-side thread scheduler interrupts an application thread when the
    QP it was waiting on gets deactivated.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; it becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, at which point it is placed on the simulator
    schedule and its callbacks run when the loop reaches it.  Processes
    wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value of untriggered event")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully, firing after ``delay`` ns."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        if delay == 0.0:
            self.sim._ready_append(self)
        else:
            self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires (immediately if it has)."""
        if self._processed:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for fn in callbacks:
                fn(self)


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # Flattened Event.__init__ + succeed: a Timeout is born triggered,
        # and creating one is the single most common allocation in a run.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exc = None
        self._triggered = True
        self._processed = False
        if delay == 0.0:
            sim._ready_append(self)
        elif delay > 0:
            when = sim.now + delay
            if when > sim.now:
                heapq.heappush(sim._heap, (when, sim._next_seq(), self))
            else:
                # delay too small to move the float clock: same instant
                sim._ready_append(self)
        else:
            raise ValueError("negative timeout delay: %r" % delay)


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A generator-based coroutine running in virtual time.

    The wrapped generator yields :class:`Event` objects; the process sleeps
    until each yielded event fires, then resumes with the event's value (or
    with its exception raised inside the generator).  The process itself is
    an event that fires when the generator returns, carrying the return
    value — so processes can wait on each other.

    The resume path dispatches through bound callables precomputed at
    construction (``gen.send`` / ``gen.throw``) and attaches itself to the
    yielded target via its ``add_callback`` — duck typing instead of a
    per-yield ``isinstance`` check.
    """

    __slots__ = ("gen", "name", "_waiting_on", "_send", "_throw", "_cb")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError("Process requires a generator, got %r" % (gen,))
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._send = gen.send
        self._throw = gen.throw
        #: The resume callback, bound once — attaching ``self._resume``
        #: directly would allocate a fresh bound method on every yield.
        self._cb = self._resume
        # Kick-start at the current time.
        init = Event(sim)
        init.callbacks.append(self._cb)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A no-op if the process has already finished.
        """
        if self._triggered:
            return
        waited = self._waiting_on
        if waited is not None and not waited._processed:
            # Detach from the event we were waiting on; it may still fire
            # later but must not resume us twice.
            if waited.callbacks is not None and self._cb in waited.callbacks:
                waited.callbacks.remove(self._cb)
        self._waiting_on = None
        interrupt_ev = Event(self.sim)
        interrupt_ev.callbacks.append(self._cb)
        interrupt_ev.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if self._triggered:
            # A stale wake-up (e.g. a second interrupt scheduled in the
            # same instant the process finished) must not resume a
            # completed generator.
            return
        try:
            if event._exc is None:
                target = self._send(event._value)
            else:
                target = self._throw(event._exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: unhandled interruption is a
            # cancellation, not a crash.
            self.succeed(None)
            return
        except BaseException as exc:
            if self.sim.strict:
                raise
            self.fail(exc)
            return
        # Fast-path dispatch: every legitimate yield target is an Event;
        # reaching straight for its callback list replaces both the
        # isinstance check and the bound add_callback call.
        try:
            cbs = target.callbacks
        except AttributeError:
            raise SimulationError(
                "process %r yielded %r (must yield Event)" % (self.name, target)
            )
        self._waiting_on = target
        if cbs is not None:
            cbs.append(self._cb)
        else:
            # Already processed (yielded an event that has fired): resume
            # immediately, as add_callback would.
            self._resume(target)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _results(self) -> dict:
        return {
            ev: ev._value for ev in self.events if ev._processed and ev._exc is None
        }

    def _detach(self) -> None:
        """Remove this condition's callback from still-pending events.

        Called as soon as the condition's outcome is decided: the losers
        of an :class:`AnyOf` (or the not-yet-fired events of a failed
        :class:`AllOf`) may stay pending for a long time — or forever —
        and without the detach every decided condition would leave a dead
        callback behind, growing those events' callback lists without
        bound over a long sweep.
        """
        check = self._check
        for ev in self.events:
            cbs = ev.callbacks
            if cbs is not None:
                try:
                    cbs.remove(check)
                except ValueError:
                    pass

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(self._results())
        self._detach()


class AllOf(_Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            self._detach()
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._results())


class Simulator:
    """The event loop: an immediate-ready deque + a heap of delayed events.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(100)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert sim.now == 100 and proc.value == "done"
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        #: Delayed events: (fire time, seq, event) tuples.  ``seq`` is
        #: unique, so comparisons never reach the Event in slot 2.
        self._heap: List[tuple] = []
        #: Zero-delay events triggered at the current instant, drained
        #: FIFO after every heap entry with time <= now.  Because heap
        #: entries at the current timestamp always predate (in creation
        #: order) every current ready entry, this reproduces the exact
        #: total order of a single (time, seq) heap — see module docs.
        self._ready = deque()
        #: Bound ``self._ready.append``, cached once: zero-delay triggers
        #: are the most common scheduling operation in an RPC run.
        self._ready_append = self._ready.append
        #: Tie-break counter for heap entries: a bound ``count().__next__``
        #: is one C call instead of a load/add/store round trip.
        self._next_seq = count(1).__next__
        self._n_events = 0
        #: Metrics registry consulted by instrumented components at
        #: construction time; :meth:`repro.obs.Telemetry.install` swaps in
        #: a live registry *before* the cluster is built.
        self.metrics = null_registry
        #: Span log for per-RPC/per-message tracing; disabled by default.
        self.spans = null_span_log
        #: Every instrumented component (RNICs, CQs, credit states, ...)
        #: registers itself here at construction so the end-of-run
        #: auditors (:mod:`repro.obs.audit`) can enumerate the system
        #: without the simulation threading references around.
        self.components: List[Any] = []
        #: Heap pops that would move the clock backwards (always 0 with a
        #: correct heap; the monotone-time auditor asserts it).
        self.time_regressions = 0
        #: Optional :class:`repro.obs.occupancy.OccupancyTracker`; like
        #: telemetry it must be installed *before* the cluster is built
        #: (components cache the reference at construction).  ``None``
        #: keeps every hook site to a single cached ``is None`` test.
        self.occupancy: Optional[Any] = None
        #: Host wall-clock at construction, for events/sec reporting.
        self.wall_start = perf_counter()

    # -- scheduling ----------------------------------------------------

    @property
    def instrumented(self) -> bool:
        """True when a live registry or span log is installed.

        Components consult this **once, at construction time** and cache
        the answer, hoisting every ``metrics.enabled`` / ``spans.enabled``
        test out of their per-event code — the uninstrumented hot path
        pays a single cached-bool branch instead of attribute chains and
        null-object calls.  Telemetry must therefore be installed before
        the cluster is built (the harness runners guarantee this).
        """
        return self.metrics.enabled or self.spans.enabled

    def _schedule(self, event: Event, delay: float) -> None:
        if delay == 0.0:
            self._ready_append(event)
        elif delay > 0:
            when = self.now + delay
            if when > self.now:
                heapq.heappush(self._heap, (when, self._next_seq(), event))
            else:
                self._ready_append(event)
        else:
            raise SimulationError("cannot schedule into the past")

    def event(self) -> Event:
        """A fresh pending event to be triggered manually."""
        # Flattened Event.__init__ — sim.event() is a per-RPC allocation.
        ev = Event.__new__(Event)
        ev.sim = self
        ev.callbacks = []
        ev._value = None
        ev._exc = None
        ev._triggered = False
        ev._processed = False
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now."""
        # Flattened Timeout.__init__ — the most common allocation of all.
        ev = Timeout.__new__(Timeout)
        ev.sim = self
        ev.callbacks = []
        ev._value = value
        ev._exc = None
        ev._triggered = True
        ev._processed = False
        if delay == 0.0:
            self._ready_append(ev)
        elif delay > 0:
            when = self.now + delay
            if when > self.now:
                heapq.heappush(self._heap, (when, self._next_seq(), ev))
            else:
                self._ready_append(ev)
        else:
            raise ValueError("negative timeout delay: %r" % delay)
        return ev

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process running ``gen``."""
        return Process(self, gen, name)

    def register_component(self, component: Any) -> None:
        """Record an instrumented component for end-of-run auditing."""
        self.components.append(component)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution -----------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Count of events fired so far (for perf/diagnostic reporting)."""
        return self._n_events

    def _pop_next(self) -> Optional[Event]:
        """Remove and return the next event in (time, seq) order,
        advancing the clock; None when nothing is scheduled."""
        ready = self._ready
        heap = self._heap
        if ready:
            # A heap entry fires before the ready queue only when it is
            # overdue (time regression) or shares the current instant —
            # in which case it predates every current ready entry.
            if not heap or heap[0][0] > self.now:
                return ready.popleft()
        if not heap:
            return None
        when, _seq, event = heapq.heappop(heap)
        if when < self.now:
            self.time_regressions += 1
        self.now = when
        return event

    def step(self) -> bool:
        """Fire the next event; returns False when nothing is scheduled."""
        event = self._pop_next()
        if event is None:
            return False
        self._n_events += 1
        event._fire()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or virtual time reaches ``until``.

        When ``until`` is given, the clock is advanced exactly to it even
        if the last event fires earlier.

        This is the kernel's hottest loop; it inlines event selection and
        firing (the body of :meth:`step` and :meth:`Event._fire`) so the
        per-event cost is the callbacks themselves plus a few local-variable
        operations.  Semantics are identical to ``while self.step(): ...``.
        """
        if until is not None and until < self.now:
            raise SimulationError("until=%r is in the past (now=%r)" % (until, self.now))
        heap = self._heap
        ready = self._ready
        popleft = ready.popleft
        pop = heapq.heappop
        n = self._n_events
        try:
            now = self.now  # mirror of self.now, for branch-free reads
            if until is None:
                # Drain loop: no window checks at all.
                while True:
                    if ready and (not heap or heap[0][0] > now):
                        event = popleft()
                    elif heap:
                        head = pop(heap)
                        when = head[0]
                        if when < now:
                            self.time_regressions += 1
                        self.now = now = when
                        event = head[2]
                    else:
                        break
                    n += 1
                    # Inlined Event._fire(); one callback is the norm.
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for fn in callbacks:
                                fn(event)
            else:
                while True:
                    if ready and (not heap or heap[0][0] > now):
                        event = popleft()
                    elif heap:
                        when = heap[0][0]
                        if when > until:
                            break
                        event = pop(heap)[2]
                        if when < now:
                            self.time_regressions += 1
                        self.now = now = when
                    else:
                        break
                    n += 1
                    # Inlined Event._fire(); one callback is the norm.
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for fn in callbacks:
                                fn(event)
        finally:
            self._n_events = n
        if until is not None:
            self.now = until

    def run_profiled(self, profile: Any,
                     until: Optional[float] = None) -> None:
        """Instrumented twin of :meth:`run` for the cost observatory.

        Identical event-selection semantics (same order, same clock
        behaviour, same ``until`` handling — a profiled run produces
        byte-identical simulation results), but every callback batch is
        bracketed with ``perf_counter_ns`` and charged to ``profile``
        via ``profile.account(event, callbacks, dt_ns, now)``.

        Kept as a **separate** loop so :meth:`run` — the PR 5 fast path —
        stays untouched and pays nothing when profiling is off.
        """
        if until is not None and until < self.now:
            raise SimulationError("until=%r is in the past (now=%r)" % (until, self.now))
        heap = self._heap
        ready = self._ready
        popleft = ready.popleft
        pop = heapq.heappop
        account = profile.account
        clock = perf_counter_ns
        n = self._n_events
        try:
            while True:
                if ready and (not heap or heap[0][0] > self.now):
                    event = popleft()
                elif heap:
                    when = heap[0][0]
                    if until is not None and when > until:
                        break
                    event = pop(heap)[2]
                    if when < self.now:
                        self.time_regressions += 1
                    self.now = when
                else:
                    break
                n += 1
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                t_fire = clock()
                if callbacks:
                    for fn in callbacks:
                        fn(event)
                account(event, callbacks, clock() - t_fire, self.now)
        finally:
            self._n_events = n
        if until is not None:
            self.now = until

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` fires; returns its value."""
        while not event._processed:
            if not self.step():
                raise SimulationError(
                    "simulation drained before event fired (deadlock?)"
                )
        return event.value
