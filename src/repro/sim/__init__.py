"""Discrete-event simulation kernel (events, processes, resources, RNG)."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .rand import HotColdGenerator, Streams, ZipfGenerator, percentile, summarize_latencies
from .resources import Resource, SpinLock, Store, TokenBucket, TrackedStore
from .trace import NullTracer, TimeSeries, Tracer, null_tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "HotColdGenerator",
    "Interrupt",
    "NullTracer",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "SpinLock",
    "Store",
    "Streams",
    "TimeSeries",
    "Timeout",
    "TokenBucket",
    "TrackedStore",
    "Tracer",
    "ZipfGenerator",
    "null_tracer",
    "percentile",
    "summarize_latencies",
]
