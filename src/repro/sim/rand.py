"""Deterministic random streams for simulations.

Every stochastic element (workload keys, service-time jitter, UD packet
reordering) draws from its own named child stream derived from a single
root seed, so adding a new consumer never perturbs existing ones and every
experiment is exactly reproducible.
"""

from __future__ import annotations

import hashlib
import math
import random
import zlib
from typing import List, Sequence

__all__ = ["Streams", "ZipfGenerator", "HotColdGenerator"]


class Streams:
    """A factory of independent, named random streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def stream(self, name: str) -> random.Random:
        """A child RNG uniquely determined by (root seed, name)."""
        child_seed = (self.seed << 32) ^ zlib.crc32(name.encode())
        return random.Random(child_seed)

    def child(self, point_id: str) -> "Streams":
        """A derived :class:`Streams` uniquely determined by (seed, id).

        The parallel sweep executor gives each sweep point a child stream
        factory keyed by the point's stable identity, so the seeds a point
        draws are a pure function of (root seed, point id) — independent
        of which worker process runs it or in what order.  The same
        derivation is used on the serial path, which is what makes
        ``--jobs N`` output byte-identical to ``--jobs 1``.

        The id is hashed in full (BLAKE2b over ``"seed:point_id"``) rather
        than through a 32-bit checksum: the scenario search derives one
        child per candidate fingerprint, and at 10k+ structured ids a
        truncated hash has a non-negligible birthday-collision risk that
        would silently correlate two candidates' randomness.
        """
        material = ("%d:%s" % (self.seed, point_id)).encode()
        digest = hashlib.blake2b(material, digest_size=8).digest()
        child_seed = int.from_bytes(digest, "big")
        # Fold to a stable, positive 63-bit value so the child can itself
        # derive grandchildren without unbounded seed growth.
        return Streams(child_seed & 0x7FFFFFFFFFFFFFFF)


class ZipfGenerator:
    """Zipfian key sampler over ``[0, n)`` (YCSB-style).

    Uses the Gray/Jim-Gray rejection-free method: precomputes the zeta
    constants and samples in O(1) per draw.  ``theta`` near 0.99 gives the
    familiar YCSB skew; theta=0 degenerates to uniform.
    """

    def __init__(self, n: int, theta: float = 0.99, rng: random.Random = None):
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random(0)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta) if theta > 0 else 1.0
        self._eta = (
            (1 - (2.0 / n) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)
            if theta > 0
            else 0.0
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n, integral approximation beyond a cutoff to keep
        # construction cheap for the 32M-key HydraList experiments.
        cutoff = min(n, 10000)
        s = sum(1.0 / (i ** theta) for i in range(1, cutoff + 1))
        if n > cutoff:
            if theta == 1.0:
                s += math.log(n / cutoff)
            else:
                s += ((n ** (1 - theta)) - (cutoff ** (1 - theta))) / (1 - theta)
        return s

    def next(self) -> int:
        if self.theta == 0.0:
            return self.rng.randrange(self.n)
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1) ** self._alpha))


class HotColdGenerator:
    """Hot/cold key sampler: ``hot_fraction`` of keys get ``hot_access``
    of accesses.

    Smallbank in the paper uses "4% of accounts are accessed by 90% of
    transactions"; this generator reproduces exactly that law.
    """

    def __init__(
        self,
        n: int,
        hot_fraction: float = 0.04,
        hot_access: float = 0.90,
        rng: random.Random = None,
    ):
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 < hot_fraction <= 1:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0 <= hot_access <= 1:
            raise ValueError("hot_access must be in [0, 1]")
        self.n = n
        self.n_hot = max(1, int(n * hot_fraction))
        self.hot_access = hot_access
        self.rng = rng or random.Random(0)

    def next(self) -> int:
        if self.rng.random() < self.hot_access:
            return self.rng.randrange(self.n_hot)
        if self.n_hot >= self.n:
            return self.rng.randrange(self.n)
        return self.rng.randrange(self.n_hot, self.n)


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of an already sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must be in [0, 100]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    # Numerically stable form: exact when the two anchors are equal.
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * frac


def summarize_latencies(samples: List[float]) -> dict:
    """Median/p99/p999/mean/min/max summary used by every harness."""
    if not samples:
        return {"count": 0, "median": 0.0, "p99": 0.0, "p999": 0.0,
                "mean": 0.0, "min": 0.0, "max": 0.0}
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "median": percentile(ordered, 50.0),
        "p99": percentile(ordered, 99.0),
        "p999": percentile(ordered, 99.9),
        "mean": sum(ordered) / len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
    }
