"""Hybrid-fidelity fabric: transport models, demotion controller, pins.

Covers the three fidelity modes end to end: packet stays the default
(and the kernel stays fidelity-blind — pinned structurally), fluid
conserves exactly what packet conserves on loss-free traffic, dispatches
O(1) events per transfer, and hybrid demotes hot egress ports to the
stepped model and promotes them back after the quiet period.
"""

import inspect

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    ClusterConfig,
    CongestionConfig,
    FIDELITY_ENV,
    FidelityConfig,
    NetConfig,
    resolved_fidelity_mode,
)
from repro.net import FidelityController, FluidModel, PacketModel, build_cluster
from repro.obs.audit import run_audit
from repro.obs.registry import Registry
from repro.sim.core import Simulator


def _cluster(mode, n_clients=4, seed=3, net=None, registry=False):
    """Build a cluster with the fidelity mode pinned (env ignored)."""
    sim = Simulator()
    reg = None
    if registry:
        reg = Registry()
        sim.metrics = reg
    net = net or NetConfig()
    net.fidelity = FidelityConfig(mode=mode, honor_env=False)
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=n_clients, seed=seed, net=net))
    return sim, servers, clients, fabric, reg


def _drive(sim, clients, server, fabric, sizes, rkeys=(), per_client=1):
    """Spawn ``per_client`` workers per client, each sending ``sizes``."""
    for node in clients:
        for w in range(per_client):
            def worker(node=node):
                for nbytes in sizes:
                    yield from fabric.transfer(
                        node, server, nbytes, 1, 2, rkeys=rkeys)
            sim.spawn(worker())
    sim.run()


def _totals(servers, clients, fabric):
    rnics = [n.rnic for n in list(servers) + list(clients)]
    return {
        "delivered": fabric.messages_delivered,
        "dropped": fabric.messages_dropped,
        "tx_msgs": sum(r.messages_tx for r in rnics),
        "rx_msgs": sum(r.messages_rx for r in rnics),
        "tx_bytes": sum(r.bytes_tx for r in rnics),
    }


class TestModeResolution:
    def test_default_is_packet(self, monkeypatch):
        monkeypatch.delenv(FIDELITY_ENV, raising=False)
        assert FidelityConfig().resolved().mode == "packet"
        assert resolved_fidelity_mode() == "packet"

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(FIDELITY_ENV, "fluid")
        assert FidelityConfig().resolved().mode == "fluid"
        assert resolved_fidelity_mode() == "fluid"

    def test_env_ignored_when_not_honored(self, monkeypatch):
        monkeypatch.setenv(FIDELITY_ENV, "hybrid")
        cfg = FidelityConfig(mode="fluid", honor_env=False)
        assert cfg.resolved().mode == "fluid"

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(FIDELITY_ENV, "quantum")
        with pytest.raises(ValueError):
            FidelityConfig().resolved()

    def test_unknown_mode_rejected_at_construction(self):
        with pytest.raises(ValueError):
            FidelityConfig(mode="quantum")

    def test_fabric_models_per_mode(self, monkeypatch):
        monkeypatch.delenv(FIDELITY_ENV, raising=False)
        _, _, _, fab_p, _ = _cluster("packet")
        assert isinstance(fab_p._model, PacketModel)
        assert fab_p.fidelity_controller is None
        _, _, _, fab_f, _ = _cluster("fluid")
        assert isinstance(fab_f._model, FluidModel)
        _, _, _, fab_h, _ = _cluster("hybrid")
        assert fab_h._model is None
        assert isinstance(fab_h.fidelity_controller, FidelityController)


class TestKernelStaysFidelityBlind:
    """Satellite pin: the packet default must be byte-identical because
    the kernel hot loop never learned the feature exists."""

    def test_simulator_run_has_no_fidelity_branches(self):
        src = inspect.getsource(Simulator.run).lower()
        for token in ("fidelity", "fluid", "transport", "demot"):
            assert token not in src, (
                "Simulator.run grew a %r branch — the PR 10 contract is "
                "that fidelity lives entirely in net/" % token)

    def test_event_loop_module_is_fidelity_free(self):
        src = inspect.getsource(inspect.getmodule(Simulator)).lower()
        assert "fidelity" not in src and "fluid" not in src


class TestConservationParity:
    """Satellite 3: on loss-free traffic FluidModel and PacketModel
    conserve exactly the same delivered bytes and messages."""

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=64_000),
                       min_size=1, max_size=6),
        n_clients=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=50),
        with_rkeys=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_fluid_matches_packet(self, sizes, n_clients, seed, with_rkeys):
        rkeys = (11, 12) if with_rkeys else ()
        totals = {}
        for mode in ("packet", "fluid"):
            sim, servers, clients, fabric, _ = _cluster(
                mode, n_clients=n_clients, seed=seed)
            _drive(sim, clients, servers[0], fabric, sizes, rkeys=rkeys)
            totals[mode] = _totals(servers, clients, fabric)
        assert totals["fluid"] == totals["packet"]
        sent = len(sizes) * n_clients
        assert totals["packet"]["delivered"] == sent
        assert totals["packet"]["dropped"] == 0
        assert totals["packet"]["tx_bytes"] == sum(sizes) * n_clients

    def test_uncontended_latency_agrees(self):
        """One stream, no queueing: the fluid analytic pipeline lands on
        the stepped pipeline's clock exactly, not just approximately."""
        ends = {}
        for mode in ("packet", "fluid"):
            sim, servers, clients, fabric, _ = _cluster(mode, n_clients=1)
            _drive(sim, clients[:1], servers[0], fabric, [4096] * 20,
                   rkeys=(7,))
            ends[mode] = sim.now
        assert ends["fluid"] == pytest.approx(ends["packet"], rel=1e-9)


class TestFluidEventEconomy:
    def test_fluid_dispatches_o1_events_per_transfer(self):
        """The point of the fluid model: a multi-packet transfer costs a
        constant number of kernel events instead of per-packet churn."""
        per_client, n_clients = 5, 8
        counts = {}
        for mode in ("packet", "fluid"):
            # a real switch plus QP/MTT-thrashing traffic (distinct QPs
            # and rkeys per message) makes the stepped path pay its true
            # per-packet, per-cache-miss price; the fluid path folds the
            # same work into one consolidated timeout per transfer.
            net = NetConfig(congestion=CongestionConfig(
                enabled=True, honor_env=False))
            sim, servers, clients, fabric, _ = _cluster(
                mode, n_clients=n_clients, net=net)
            for ci, node in enumerate(clients):
                def worker(node=node, ci=ci):
                    for i in range(per_client):
                        q = (ci * per_client + i) % 64 + 10
                        yield from fabric.transfer(
                            node, servers[0], 64 * 1024, q, q + 1000,
                            rkeys=(3 * q, 3 * q + 1, 3 * q + 2))
                sim.spawn(worker())
            sim.run()
            assert fabric.messages_delivered == per_client * n_clients
            counts[mode] = sim.events_processed
        n_transfers = per_client * n_clients
        # spawn + one consolidated timeout + completion per transfer,
        # plus a small constant for the run itself.
        assert counts["fluid"] <= 4 * n_transfers + 16
        assert counts["packet"] >= 4 * counts["fluid"]


def _hotspot_net():
    """A switch tuned so incast heat shows up fast at small scale."""
    return NetConfig(congestion=CongestionConfig(
        enabled=True, honor_env=False, buffer_bytes=10_240,
        ecn_kmin_bytes=2_560, ecn_kmax_bytes=7_680))


class TestHybridDemotion:
    def test_incast_demotes_only_the_hot_port(self):
        sim, servers, clients, fabric, reg = _cluster(
            "hybrid", n_clients=16, net=_hotspot_net(), registry=True)
        _drive(sim, clients, servers[0], fabric, [4096] * 8, per_client=2)
        ctl = fabric.fidelity_controller
        assert ctl.demotions > 0
        snap = fabric.fidelity_snapshot()
        assert snap["mode"] == "hybrid"
        assert servers[0].name in snap["ports"]
        # client egress ports stay fluid: the heat is all on server0.
        assert snap["demoted_ports"] in ([], [servers[0].name])
        for name in snap["ports"]:
            assert name == servers[0].name
        assert reg.counter("fidelity.demotions").value == ctl.demotions

    def test_quiet_port_promotes_back(self):
        sim, servers, clients, fabric, _ = _cluster(
            "hybrid", n_clients=16, net=_hotspot_net())
        server = servers[0]
        _drive(sim, clients, server, fabric, [4096] * 8, per_client=2)
        ctl = fabric.fidelity_controller
        assert ctl.demotions > 0

        def trickle():
            # wait out the hysteresis window, then send one cold message
            yield sim.timeout(ctl.cfg.promote_quiet_ns * 4)
            yield from fabric.transfer(clients[0], server, 64, 1, 2)
        sim.spawn(trickle())
        sim.run()
        assert ctl.promotions > 0
        assert not ctl.ports[server.name].demoted

    def test_cold_hybrid_never_demotes(self):
        sim, servers, clients, fabric, _ = _cluster("hybrid", n_clients=2)
        _drive(sim, clients, servers[0], fabric, [1024] * 4)
        assert fabric.fidelity_controller.demotions == 0
        assert fabric.fidelity_snapshot()["demoted_ports"] == []


class TestAuditsStayClean:
    @pytest.mark.parametrize("mode", ["fluid", "hybrid"])
    def test_auditors_pass(self, mode):
        sim, servers, clients, fabric, reg = _cluster(
            mode, n_clients=8, net=_hotspot_net(), registry=True)
        # sizes stay under the 10 KiB hotspot buffer: a message that can
        # never fit retries forever in either model (whole-message tail
        # drop), which is a property of the tiny buffer, not the models.
        _drive(sim, clients, servers[0], fabric, [4096, 64, 2048],
               rkeys=(3,), per_client=2)
        report = run_audit(sim, reg)
        assert report.ok, report.format()
