"""Anomaly detectors and attribution-diff explanations.

Unit half: the three detector families on hand-built series — cliffs
(largest relative step), knees (max distance to the endpoint chord),
changepoints (binary segmentation over windowed means) and counter
bursts (rolling baseline) — plus anomaly-set diffing and the explain
join.  End-to-end half: the manufactured ``bench.step_handler_cost``
fault produces changepoints a clean run does not have, the incast
runner's timeline carries switch-counter sources, and the detected set
is a pure function of its input (byte-identical on repetition).
"""

import json

import pytest

from repro.harness.incastbench import IncastConfig, run_incast_flock
from repro.harness.microbench import MicrobenchConfig, run_flock
from repro.obs import faults
from repro.obs.anomaly import (
    Anomaly,
    detect_changepoints,
    detect_cliffs,
    detect_counter_bursts,
    detect_knees,
    detect_run_anomalies,
    detect_sweep_anomalies,
    diff_anomaly_sets,
    severity_label,
)
from repro.obs.explain import (
    explain_between,
    explain_changepoint,
    explain_sweep_anomalies,
    format_explanation,
    shift_table,
    top_shift,
)

# Fig. 2a's shape: ramp, plateau, collapse past the QP cache.
FIG2A_XS = [22.0, 176.0, 704.0, 2816.0]
FIG2A_YS = [30.0, 42.0, 41.0, 5.0]


class TestCliffs:
    def test_fig2a_collapse_is_a_drop_cliff(self):
        out = detect_cliffs(FIG2A_XS, FIG2A_YS, metric="mops")
        drops = [a for a in out if a.direction == "drop"]
        assert len(drops) == 1
        cliff = drops[0]
        assert cliff.kind == "cliff"
        assert cliff.x == 2816.0
        assert cliff.span == (704.0, 2816.0)
        assert cliff.severity == pytest.approx((41.0 - 5.0) / 41.0, abs=1e-6)

    def test_one_cliff_per_direction(self):
        # Two drops: only the larger one is reported.
        out = detect_cliffs([1, 2, 3, 4], [100.0, 60.0, 58.0, 10.0])
        assert len(out) == 1
        assert out[0].x == 4

    def test_flat_curve_is_silent(self):
        assert detect_cliffs([1, 2, 3], [10.0, 10.1, 9.9]) == []

    def test_min_rel_step_gates(self):
        ys = [10.0, 8.5, 8.0]  # largest step 15% < default 25%
        assert detect_cliffs([1, 2, 3], ys) == []
        assert detect_cliffs([1, 2, 3], ys, min_rel_step=0.10)

    def test_rise_direction(self):
        out = detect_cliffs([1, 2], [10.0, 40.0])
        assert out[0].direction == "rise"
        assert "jumps" in out[0].detail

    def test_short_curves_are_silent(self):
        # Fewer than two points means no adjacent pair to compare.
        assert detect_cliffs([], []) == []
        assert detect_cliffs([1], [10.0]) == []

    def test_all_zero_levels_are_skipped(self):
        # A 0 -> 0 step has no local level to be relative to; it must
        # not divide by zero or fabricate a 100% cliff.
        assert detect_cliffs([1, 2, 3], [0.0, 0.0, 0.0]) == []

    def test_zero_to_nonzero_is_a_full_cliff(self):
        out = detect_cliffs([1, 2], [0.0, 8.0])
        assert len(out) == 1
        assert out[0].direction == "rise"
        assert out[0].severity == pytest.approx(1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            detect_cliffs([1, 2, 3], [1.0, 2.0])


class TestKnees:
    def test_saturation_knee_above_chord(self):
        out = detect_knees(FIG2A_XS, FIG2A_YS, metric="mops")
        assert len(out) == 1
        knee = out[0]
        assert knee.kind == "knee"
        assert knee.direction == "rise"
        # The plateau points sit far above the 30 -> 5 endpoint chord;
        # index-space normalization keeps geometric x spacing irrelevant.
        assert knee.x in (176.0, 704.0)

    def test_needs_three_points(self):
        # 0, 1 and 2 points: no interior point exists to bend at.
        assert detect_knees([], []) == []
        assert detect_knees([1], [1.0]) == []
        assert detect_knees([1, 2], [1.0, 2.0]) == []

    def test_three_point_bend_is_found(self):
        # The minimal curve with an interior point: sharp saturation.
        out = detect_knees([1, 2, 3], [0.0, 10.0, 10.0])
        assert len(out) == 1
        assert out[0].x == 2
        assert out[0].direction == "rise"

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            detect_knees([1, 2], [1.0, 2.0, 3.0])

    def test_flat_curve_has_no_knee(self):
        assert detect_knees([1, 2, 3, 4], [5.0, 5.0, 5.0, 5.0]) == []

    def test_straight_line_has_no_knee(self):
        assert detect_knees([1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0]) == []

    def test_sweep_wrapper_orders_stably(self):
        out = detect_sweep_anomalies(FIG2A_XS, FIG2A_YS, metric="mops",
                                     series="rc-read", figure="fig2a")
        assert [a.kind for a in out] == sorted(a.kind for a in out)
        assert all(a.figure == "fig2a" for a in out)


class TestChangepoints:
    def test_clean_series_is_silent(self):
        assert detect_changepoints([10.0, 10.2, 9.9, 10.1, 10.0, 9.8]) == []

    def test_step_detected_at_first_new_window(self):
        out = detect_changepoints([10.0, 10.0, 10.0, 10.0,
                                   40.0, 40.0, 40.0, 40.0])
        assert len(out) == 1
        k, pre, post, score = out[0]
        assert k == 4
        assert pre == pytest.approx(10.0)
        assert post == pytest.approx(40.0)
        assert score >= 3.0

    def test_small_relative_shift_gated(self):
        # Statistically crisp (zero noise) but only a 5% level change.
        assert detect_changepoints([100.0] * 4 + [105.0] * 4) == []

    def test_noisy_shift_gated_by_score(self):
        # Shift comparable to in-segment scatter: not a level change.
        assert detect_changepoints([5.0, 15.0, 4.0, 16.0,
                                    9.0, 19.0, 8.0, 20.0]) == []

    def test_two_steps_found_recursively(self):
        out = detect_changepoints([10.0] * 4 + [40.0] * 4 + [90.0] * 4)
        assert [k for k, _p, _q, _s in out] == [4, 8]

    def test_max_splits_bounds_recursion(self):
        series = []
        for level in (10.0, 40.0, 90.0, 200.0, 500.0, 1200.0):
            series += [level] * 4
        out = detect_changepoints(series, max_splits=2)
        assert len(out) == 2


class TestCounterBursts:
    def test_silent_then_burst(self):
        out = detect_counter_bursts([0.0, 0.0, 0.0, 50.0])
        assert out == [(3, 50.0, 0.0)]

    def test_below_abs_floor_is_silent(self):
        assert detect_counter_bursts([0.0, 0.0, 5.0]) == []

    def test_steady_counter_never_bursts(self):
        assert detect_counter_bursts([100.0, 110.0, 95.0, 105.0]) == []

    def test_factor_relative_to_rolling_baseline(self):
        assert detect_counter_bursts([10.0, 10.0, 10.0, 45.0]) == [
            (3, 45.0, 10.0)]
        assert detect_counter_bursts([10.0, 10.0, 10.0, 35.0]) == []


class TestAnomalyRecord:
    def test_severity_bands(self):
        assert severity_label(0.1) == "mild"
        assert severity_label(0.3) == "moderate"
        assert severity_label(0.9) == "severe"

    def test_dict_roundtrip(self):
        a = [c for c in detect_cliffs(FIG2A_XS, FIG2A_YS, metric="mops",
                                      series="rc-read", figure="fig2a")
             if c.direction == "drop"][0]
        data = a.to_dict()
        assert data["severity_band"] == "severe"
        assert Anomaly.from_dict(data).to_dict() == data
        json.dumps(data)  # JSON-safe


def make_slo(p99s, goodputs=None, counters=None, window_ns=100.0):
    """A hand-built SloTimeline.report() dict."""
    rows = []
    for i, p99 in enumerate(p99s):
        row = {"window": i, "t0_ns": i * window_ns,
               "t1_ns": (i + 1) * window_ns, "ops": 100,
               "goodput_mops": goodputs[i] if goodputs else 1.0,
               "p50_us": 1.0, "p99_us": p99, "p999_us": p99}
        if counters is not None:
            row["counters"] = {k: v[i] for k, v in counters.items()}
        rows.append(row)
    return {"window_ns": window_ns, "t0_ns": 0.0,
            "t1_ns": len(p99s) * window_ns, "windows": rows,
            "violations": []}


class TestRunAnomalies:
    def test_none_slo_yields_empty(self):
        assert detect_run_anomalies(None) == []

    def test_p99_step_becomes_changepoint_with_window_span(self):
        slo = make_slo([10.0, 10.0, 10.0, 10.0, 40.0, 40.0, 40.0, 40.0])
        out = detect_run_anomalies(slo, label="flock")
        cps = [a for a in out if a["kind"] == "changepoint"
               and a["metric"] == "p99_us"]
        assert len(cps) == 1
        assert cps[0]["x"] == 4.0
        assert cps[0]["span"] == [400.0, 500.0]
        assert cps[0]["direction"] == "rise"
        assert cps[0]["series"] == "flock"

    def test_empty_windows_skipped_and_ids_mapped_back(self):
        slo = make_slo([10.0, None, 10.0, 10.0, None,
                        40.0, 40.0, 40.0, 40.0])
        out = detect_run_anomalies(slo)
        cps = [a for a in out if a["metric"] == "p99_us"]
        assert cps and cps[0]["x"] == 5.0  # real window id, not index 3

    def test_counter_burst_detected(self):
        slo = make_slo([10.0] * 6,
                       counters={"ecn_marks": [0, 0, 0, 64, 0, 0]})
        out = detect_run_anomalies(slo)
        bursts = [a for a in out if a["kind"] == "counter_burst"]
        assert len(bursts) == 1
        assert bursts[0]["metric"] == "ecn_marks"
        assert bursts[0]["x"] == 3.0

    def test_detection_is_pure(self):
        slo = make_slo([10.0] * 4 + [40.0] * 4,
                       counters={"drops": [0, 0, 0, 0, 30, 0, 0, 0]})
        a = json.dumps(detect_run_anomalies(slo, label="x"), sort_keys=True)
        b = json.dumps(detect_run_anomalies(slo, label="x"), sort_keys=True)
        assert a == b


class TestDiffAnomalySets:
    def block(self, x=2816.0):
        a = [c for c in detect_cliffs(FIG2A_XS, FIG2A_YS, metric="mops",
                                      series="rc-read")
             if c.direction == "drop"][0].to_dict()
        a["x"] = x
        return {"sweep": [a]}

    def test_identical_sets_are_quiet(self):
        d = diff_anomaly_sets(self.block(), self.block())
        assert d == {"new": [], "vanished": [], "moved": []}

    def test_new_and_vanished(self):
        d = diff_anomaly_sets(None, self.block())
        assert len(d["new"]) == 1 and "cliff" in d["new"][0]
        d = diff_anomaly_sets(self.block(), None)
        assert len(d["vanished"]) == 1

    def test_moved(self):
        d = diff_anomaly_sets(self.block(x=704.0), self.block(x=2816.0))
        assert len(d["moved"]) == 1
        assert "704" in d["moved"][0] and "2816" in d["moved"][0]

    def test_runs_scope_distinct_from_sweep(self):
        a = self.block()["sweep"][0]
        d = diff_anomaly_sets({"sweep": [a]}, {"runs": {"flock": [a]}})
        assert len(d["new"]) == 1 and len(d["vanished"]) == 1

    def test_duplicate_identities_keyed_by_occurrence(self):
        """Two anomalies with the same (scope, kind, series, metric) are
        numbered in order, so a matched pair with identical positions is
        quiet — not collapsed into one record."""
        a1 = self.block(x=704.0)["sweep"][0]
        a2 = self.block(x=2816.0)["sweep"][0]
        d = diff_anomaly_sets({"sweep": [a1, a2]}, {"sweep": [a1, a2]})
        assert d == {"new": [], "vanished": [], "moved": []}

    def test_lost_occurrence_vanishes_not_moves(self):
        """Dropping one of two same-identity anomalies is a *vanished*
        second occurrence; the surviving first occurrence still matches
        positionally."""
        a1 = self.block(x=704.0)["sweep"][0]
        a2 = self.block(x=2816.0)["sweep"][0]
        d = diff_anomaly_sets({"sweep": [a1, a2]}, {"sweep": [a1]})
        assert d["new"] == [] and d["moved"] == []
        assert len(d["vanished"]) == 1
        assert "2816" in d["vanished"][0]

    def test_occurrences_pair_in_order(self):
        # Both sides hold two occurrences; the second one moved.
        a1 = self.block(x=704.0)["sweep"][0]
        a2 = self.block(x=2816.0)["sweep"][0]
        a2_moved = self.block(x=5632.0)["sweep"][0]
        d = diff_anomaly_sets({"sweep": [a1, a2]},
                              {"sweep": [a1, a2_moved]})
        assert d["new"] == [] and d["vanished"] == []
        assert len(d["moved"]) == 1
        assert "2816" in d["moved"][0] and "5632" in d["moved"][0]

    def test_moved_rel_tol_suppresses_small_drift(self):
        base, near = self.block(x=1000.0), self.block(x=1040.0)
        strict = diff_anomaly_sets(base, near)
        assert len(strict["moved"]) == 1
        lax = diff_anomaly_sets(base, near, moved_rel_tol=0.05)
        assert lax == {"new": [], "vanished": [], "moved": []}

    def test_empty_blocks_are_quiet(self):
        assert diff_anomaly_sets(None, None) == \
            {"new": [], "vanished": [], "moved": []}
        assert diff_anomaly_sets({}, {"sweep": []}) == \
            {"new": [], "vanished": [], "moved": []}


class TestExplain:
    BLOCKS = {
        "rc-read qps=704": {
            "paths": 10,
            "shares": {"pcie_stall": 0.04, "nic_throttle": 0.76,
                       "propagation": 0.20},
            "what_if": {"pcie_stall": 1.1, "nic_throttle": 3.0,
                        "propagation": 1.2},
        },
        "rc-read qps=2816": {
            "paths": 10,
            "shares": {"pcie_stall": 0.61, "nic_throttle": 0.30,
                       "propagation": 0.09},
            "what_if": {"pcie_stall": 2.5, "nic_throttle": 1.4,
                        "propagation": 1.1},
        },
    }

    def cliff(self):
        return [c for c in detect_cliffs(FIG2A_XS, FIG2A_YS, metric="mops",
                                         series="rc-read", figure="fig2a")
                if c.direction == "drop"][0].to_dict()

    def test_shift_table_ranks_by_gain(self):
        rows = shift_table(self.BLOCKS["rc-read qps=704"]["shares"],
                           self.BLOCKS["rc-read qps=2816"]["shares"])
        assert rows[0]["resource"] == "pcie_stall"
        assert rows[0]["delta"] == pytest.approx(0.57)
        assert top_shift(rows) == "pcie_stall"

    def test_top_shift_none_when_nothing_gained(self):
        shares = {"pcie_stall": 0.5, "nic_throttle": 0.5}
        assert top_shift(shift_table(shares, shares)) is None

    def test_explain_between_joins_what_if(self):
        exp = explain_between(self.cliff(), "rc-read qps=704",
                              "rc-read qps=2816", self.BLOCKS)
        assert exp.top_resource == "pcie_stall"
        assert exp.what_if_bound == 2.5
        assert not exp.note

    def test_missing_block_degrades_to_note(self):
        exp = explain_between(self.cliff(), "rc-read qps=704",
                              "rc-read qps=9999", self.BLOCKS)
        assert "no attribution recorded" in exp.note
        assert exp.shifts == []

    def test_sweep_explanations_resolve_labels(self):
        labels = {"704": "rc-read qps=704", "2816": "rc-read qps=2816"}
        exps = explain_sweep_anomalies([self.cliff()], self.BLOCKS, labels)
        assert len(exps) == 1
        assert exps[0].pre_label == "rc-read qps=704"
        assert exps[0].post_label == "rc-read qps=2816"
        assert exps[0].top_resource == "pcie_stall"

    def test_changepoint_without_pre_paths_is_partial(self):
        anomaly = {"kind": "changepoint", "figure": "", "series": "flock",
                   "metric": "p99_us", "x": 0.0, "span": [0.0, 100.0],
                   "direction": "rise", "severity": 0.5, "detail": "",
                   "evidence": {}}
        exp = explain_changepoint(anomaly, [], label="flock")
        assert "no critical paths" in exp.note

    def test_format_explanation_renders_shift_rows(self):
        exp = explain_between(self.cliff(), "rc-read qps=704",
                              "rc-read qps=2816", self.BLOCKS)
        text = format_explanation(exp)
        assert "cliff[drop]" in text
        assert "pcie_stall" in text
        assert "4.0% ->  61.0%" in text
        assert "what-if: removing pcie_stall" in text
        assert "2.50x" in text

    def test_explanation_dict_is_json_safe(self):
        exp = explain_between(self.cliff(), "rc-read qps=704",
                              "rc-read qps=2816", self.BLOCKS)
        json.dumps(exp.to_dict())


class TestEndToEnd:
    @pytest.fixture(autouse=True)
    def _smoke_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")

    def test_step_fault_manufactures_changepoints(self):
        cfg = MicrobenchConfig(n_clients=4, threads_per_client=2,
                               outstanding=2)
        clean = run_flock(cfg)
        assert clean.anomalies == []
        with faults.injected("bench.step_handler_cost"):
            faulty = run_flock(cfg)
        kinds = {(a["kind"], a["metric"], a["direction"])
                 for a in faulty.anomalies}
        assert ("changepoint", "p99_us", "rise") in kinds
        assert ("changepoint", "goodput_mops", "drop") in kinds
        # The manufactured shift lands mid-window (the step fires at
        # warmup + measure/2, window 4 of 8).
        p99 = [a for a in faulty.anomalies if a["metric"] == "p99_us"]
        assert all(2.0 <= a["x"] <= 6.0 for a in p99)

    def test_incast_timeline_carries_switch_counters(self):
        cfg = IncastConfig(n_senders=6, threads_per_client=4)
        result = run_incast_flock(cfg, congested=True)
        rows = result.slo["windows"]
        assert rows
        for row in rows:
            assert set(row["counters"]) == {"ecn_marks", "pfc_pauses",
                                            "switch_drops"}
            assert all(v >= 0 for v in row["counters"].values())
        # The shallow-buffer congested leg must actually mark/drop —
        # otherwise the counter sources are wired to a dead switch.
        total = sum(row["counters"]["ecn_marks"]
                    + row["counters"]["switch_drops"] for row in rows)
        assert total > 0
        # Counter-sourced anomalies (if any) reference real windows.
        for a in result.anomalies:
            if a["kind"] == "counter_burst":
                assert 0 <= a["x"] < len(rows)

    def test_uncongested_leg_has_no_counter_block(self):
        cfg = IncastConfig(n_senders=3, threads_per_client=2)
        result = run_incast_flock(cfg, congested=False)
        assert all("counters" not in row or not row["counters"]
                   for row in result.slo["windows"])
