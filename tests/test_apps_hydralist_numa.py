"""NUMA-replicated HydraList: per-replica staleness, shared data list."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import NumaHydraList


class TestBasics:
    def test_insert_get_across_numa_nodes(self):
        index = NumaHydraList(node_capacity=4, numa_nodes=3)
        index.insert(10, "x", numa=0)
        # All replicas see the shared data list.
        for numa in range(3):
            assert index.get(10, numa=numa) == "x"

    def test_remove_visible_everywhere(self):
        index = NumaHydraList(node_capacity=4, numa_nodes=2)
        index.insert(5, "v", numa=1)
        assert index.remove(5, numa=0)
        assert index.get(5, numa=1) is None

    def test_scan_ordered_from_any_replica(self):
        index = NumaHydraList(node_capacity=3, numa_nodes=2)
        for key in [9, 1, 5, 3, 7]:
            index.insert(key, key, numa=key % 2)
        for numa in (0, 1):
            assert index.scan(2, 3, numa=numa) == [(3, 3), (5, 5), (7, 7)]

    def test_bad_config(self):
        with pytest.raises(ValueError):
            NumaHydraList(node_capacity=1)
        with pytest.raises(ValueError):
            NumaHydraList(numa_nodes=0)
        index = NumaHydraList()
        with pytest.raises(ValueError):
            index.scan(0, -1)


class TestReplicatedSearchLayers:
    def test_splits_broadcast_to_every_replica(self):
        index = NumaHydraList(node_capacity=2, numa_nodes=3,
                              updater_batch=1000)
        for key in range(12):
            index.insert(key, key, numa=0)
        lags = [replica.lag for replica in index.replicas]
        assert all(lag > 0 for lag in lags)
        assert len(set(lags)) == 1  # same splits broadcast everywhere

    def test_stale_replica_still_correct(self):
        """A replica that never merged serves reads via next-chasing."""
        index = NumaHydraList(node_capacity=2, numa_nodes=2,
                              updater_batch=1000)
        for key in range(30):
            index.insert(key, key * 2, numa=0)
        index.replicas[0].merge()  # only replica 0 catches up
        for key in range(30):
            assert index.get(key, numa=1) == key * 2
        assert index.replicas[1].stale_traversals > 0
        assert index.replicas[1].lag > 0

    def test_updater_pass_clears_all_lag(self):
        index = NumaHydraList(node_capacity=2, numa_nodes=4,
                              updater_batch=1000)
        for key in range(40):
            index.insert(key, key, numa=0)
        applied = index.run_updater_pass()
        assert applied > 0
        assert index.max_replica_lag() == 0
        before = index.replicas[2].stale_traversals
        for key in range(40):
            assert index.get(key, numa=2) == key
        assert index.replicas[2].stale_traversals == before

    def test_updater_batch_bounds_lag(self):
        index = NumaHydraList(node_capacity=2, numa_nodes=2,
                              updater_batch=8)
        for key in range(500):
            index.insert(key, key, numa=0)
        assert index.max_replica_lag() < 8

    def test_merged_replica_is_faster_path(self):
        """After merging, reads on that replica stop chasing."""
        index = NumaHydraList(node_capacity=2, numa_nodes=1,
                              updater_batch=1000)
        for key in range(50):
            index.insert(key, key, numa=0)
        index.run_updater_pass()
        replica = index.replicas[0]
        before = replica.stale_traversals
        for key in range(50):
            index.get(key, numa=0)
        assert replica.stale_traversals == before


class TestAgainstReference:
    @given(st.lists(st.tuples(st.sampled_from(["ins", "del"]),
                              st.integers(min_value=0, max_value=60),
                              st.integers(min_value=0, max_value=3)),
                    max_size=200),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_from_every_replica(self, ops, numa_nodes):
        index = NumaHydraList(node_capacity=3, numa_nodes=numa_nodes,
                              updater_batch=16)
        reference = {}
        for op, key, numa in ops:
            if op == "ins":
                index.insert(key, key * 3, numa=numa)
                reference[key] = key * 3
            else:
                assert index.remove(key, numa=numa) == (key in reference)
                reference.pop(key, None)
        assert index.size == len(reference)
        assert list(index.items()) == sorted(reference.items())
        for numa in range(numa_nodes):
            for key, value in reference.items():
                assert index.get(key, numa=numa) == value
