"""Regression tests for scheduler pathologies found during calibration.

Each of these corresponds to a real failure mode the full-scale
benchmarks exposed: a bootstrap QP flood that thrashed the server NIC
cache, senders misclassified as dormant before their first credit
renewal, and thread-assignment churn that forced constant
drain-and-migrate stalls.
"""

import random

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode, assign_threads
from repro.flock.thread_scheduler import ThreadStatSnapshot
from repro.net import build_cluster
from repro.sim import Simulator


def snap(tid, median, requests, nbytes):
    return ThreadStatSnapshot(thread_id=tid, median_size=median,
                              requests=requests, bytes_sent=nbytes)


class TestBootstrapRespectsMaxAqp:
    def test_initial_active_sets_bounded(self):
        """23 clients x 48 QPs must not start with 1104 active QPs —
        the server's NIC cache would thrash before the first
        redistribution (the Fig. 2a cliff at bootstrap)."""
        sim = Simulator()
        servers, clients, fabric = build_cluster(
            sim, ClusterConfig(n_clients=23))
        cfg = FlockConfig(max_aqp=256)
        server = FlockNode(sim, servers[0], fabric, cfg)
        handles = []
        for i, node in enumerate(clients):
            client = FlockNode(sim, node, fabric, cfg, seed=i)
            handles.append(client.fl_connect(server, n_qps=48))
        total_active = server.server.total_active_qps
        # Later joiners get the shrinking average; the transient total
        # stays in the same ballpark as MAX_AQP, far below 1104.
        assert total_active < 2.5 * cfg.max_aqp
        # The client sides agree with the server's choice.
        for handle in handles:
            shandle = server.server.clients[handle.client_id]
            assert sorted(handle.active_indices) == sorted(shandle.active_set)

    def test_single_client_gets_full_allocation(self):
        sim = Simulator()
        servers, clients, fabric = build_cluster(
            sim, ClusterConfig(n_clients=1))
        cfg = FlockConfig(max_aqp=256)
        server = FlockNode(sim, servers[0], fabric, cfg)
        client = FlockNode(sim, clients[0], fabric, cfg)
        handle = client.fl_connect(server, n_qps=16)
        assert len(handle.active_indices) == 16


class TestDormancyNeedsSilence:
    def test_active_sender_without_renewals_is_not_dormant(self):
        """A sender still burning its bootstrap credits has U=0 from
        renewals but is issuing requests — it must keep its QPs."""
        sim = Simulator()
        servers, clients, fabric = build_cluster(
            sim, ClusterConfig(n_clients=1))
        # Huge credit batch: no renewal will ever be sent.
        cfg = FlockConfig(qps_per_handle=4, credit_batch=100_000,
                          credit_renew_threshold=1,
                          sched_interval_ns=100_000.0)
        server = FlockNode(sim, servers[0], fabric, cfg)
        server.fl_reg_handler(1, lambda req: (64, None, 100.0))
        client = FlockNode(sim, clients[0], fabric, cfg, seed=1)
        handle = client.fl_connect(server, n_qps=4)

        def worker(tid):
            while True:
                yield from client.fl_call(handle, tid, 1, 64)

        for tid in range(4):
            sim.spawn(worker(tid))
        sim.run(until=600_000)
        assert server.server.redistributions >= 3
        assert server.server.renewals_handled == 0
        # Still holding all four QPs despite zero renewals.
        assert len(handle.active_indices) == 4

    def test_truly_silent_sender_shrinks_to_one(self):
        sim = Simulator()
        servers, clients, fabric = build_cluster(
            sim, ClusterConfig(n_clients=2))
        cfg = FlockConfig(qps_per_handle=4, max_aqp=4,
                          sched_interval_ns=100_000.0)
        server = FlockNode(sim, servers[0], fabric, cfg)
        server.fl_reg_handler(1, lambda req: (64, None, 100.0))
        busy = FlockNode(sim, clients[0], fabric, cfg, seed=1)
        silent = FlockNode(sim, clients[1], fabric, cfg, seed=2)
        busy_handle = busy.fl_connect(server, n_qps=4)
        silent_handle = silent.fl_connect(server, n_qps=4)

        def worker(tid):
            while True:
                yield from busy.fl_call(busy_handle, tid, 1, 64)

        for tid in range(4):
            sim.spawn(worker(tid))
        sim.run(until=800_000)
        silent_active = server.server.clients[silent_handle.client_id].active_set
        assert len(silent_active) == 1


class TestAssignmentStability:
    def test_idle_thread_keeps_its_qp(self):
        """A thread that sent nothing this interval stays put — random
        reshuffling would force a pointless drain-and-migrate."""
        current = {7: 3}
        mapping = assign_threads([snap(7, 0, 0, 0)], active_qps=[1, 3],
                                 rng=random.Random(0), current=current)
        assert mapping[7] == 3

    def test_idle_thread_on_dead_qp_reassigned(self):
        current = {7: 9}  # QP 9 no longer active
        mapping = assign_threads([snap(7, 0, 0, 0)], active_qps=[1, 3],
                                 rng=random.Random(0), current=current)
        assert mapping[7] in (1, 3)

    def test_statistically_identical_intervals_identical_mapping(self):
        """Sampling noise in request counts must not reshuffle threads:
        counts within the same power-of-two bucket sort identically."""
        first = [snap(t, 64, 100 + t % 3, 6400) for t in range(16)]
        second = [snap(t, 64, 101 + (t + 1) % 3, 6400) for t in range(16)]
        qps = [0, 1, 2, 3]
        a = assign_threads(first, qps, rng=random.Random(0))
        b = assign_threads(second, qps, rng=random.Random(0))
        assert a == b

    def test_churn_is_low_under_steady_load(self):
        """End to end: after convergence, consecutive scheduler rounds
        barely move threads."""
        sim = Simulator()
        servers, clients, fabric = build_cluster(
            sim, ClusterConfig(n_clients=2))
        cfg = FlockConfig(qps_per_handle=8,
                          sched_interval_ns=100_000.0,
                          thread_sched_interval_ns=100_000.0)
        server = FlockNode(sim, servers[0], fabric, cfg)
        server.fl_reg_handler(1, lambda req: (64, None, 100.0))
        client = FlockNode(sim, clients[0], fabric, cfg, seed=1)
        handle = client.fl_connect(server, n_qps=8)

        def worker(tid):
            while True:
                yield from client.fl_call(handle, tid, 1, 64)

        for tid in range(16):
            for _ in range(4):
                sim.spawn(worker(tid))
        sim.run(until=500_000)
        before = dict(handle.thread_qp_map)
        sim.run(until=1_000_000)
        after = dict(handle.thread_qp_map)
        moved = sum(1 for t in after if before.get(t) != after[t])
        assert moved <= 4  # a quarter of the threads at most
