"""ConnectionHandle bookkeeping: assignments, pending, drain events."""

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import ConnectionHandle, FlockNode
from repro.net import build_cluster
from repro.sim import Simulator


def make_handle(n_qps=4):
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=1))
    cfg = FlockConfig(qps_per_handle=n_qps)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, None, 100.0))
    client = FlockNode(sim, clients[0], fabric, cfg, seed=1)
    handle = client.fl_connect(server, n_qps=n_qps)
    return sim, handle


class TestAssignment:
    def test_unmapped_threads_stripe_across_active(self):
        sim, handle = make_handle(4)
        qps = [handle.qp_for_thread(t).index for t in range(8)]
        assert qps == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_assignment_is_sticky(self):
        sim, handle = make_handle(4)
        first = handle.qp_for_thread(5).index
        assert handle.qp_for_thread(5).index == first

    def test_apply_assignment_overrides(self):
        sim, handle = make_handle(4)
        handle.qp_for_thread(0)
        handle.apply_assignment({0: 3})
        assert handle.qp_for_thread(0).index == 3

    def test_stale_assignment_to_inactive_qp_repaired(self):
        sim, handle = make_handle(4)
        handle.apply_assignment({0: 2})
        handle.apply_active_set([0, 1], credit_batch=32)
        assert handle.qp_for_thread(0).index in (0, 1)

    def test_all_deactivated_falls_back_to_qp0(self):
        sim, handle = make_handle(2)
        stranded = handle.apply_active_set([], credit_batch=32)
        assert stranded == []
        channel = handle.qp_for_thread(0)
        assert channel.index == 0
        assert channel.active and channel.credits.active


class TestPendingAccounting:
    def test_register_and_complete(self):
        sim, handle = make_handle(2)
        ev = handle.register_pending(thread_id=1, seq_id=0, qp_index=0)
        state = handle.thread(1)
        assert state.outstanding_per_qp == {0: 1}
        assert handle.complete_pending(1, 0, payload="resp")
        assert state.outstanding_per_qp == {}
        assert ev.triggered and ev.value == "resp"
        assert handle.rpcs_completed == 1

    def test_duplicate_completion_ignored(self):
        sim, handle = make_handle(2)
        handle.register_pending(1, 0, 0)
        assert handle.complete_pending(1, 0, "a")
        assert not handle.complete_pending(1, 0, "b")

    def test_drain_event_fires_at_zero_outstanding(self):
        sim, handle = make_handle(2)
        state = handle.thread(3)
        handle.register_pending(3, 0, 1)
        handle.register_pending(3, 1, 1)
        drain = sim.event()
        state.drain_events[1] = drain
        handle.complete_pending(3, 0, None)
        assert not drain.triggered
        handle.complete_pending(3, 1, None)
        assert drain.triggered

    def test_active_set_stranded_slots_returned(self):
        from repro.flock import PendingSend, RpcRequest

        sim, handle = make_handle(3)
        slot = PendingSend(RpcRequest(thread_id=0, seq_id=0, rpc_id=1,
                                      size=64), 0.0)
        handle.channels[2].tcq.enqueue(slot)
        stranded = handle.apply_active_set([0, 1], credit_batch=32)
        assert stranded == [slot]
        assert not handle.channels[2].active
        assert not handle.channels[2].credits.active

    def test_mean_degree_of_idle_handle(self):
        sim, handle = make_handle(2)
        assert handle.mean_coalescing_degree() == 1.0
