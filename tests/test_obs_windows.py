"""Windowed SLO timelines: unit behaviour and runner integration.

The unit half drives a :class:`SloTimeline` by hand — window routing,
counter-source delta attribution, threshold violation events, report
shape.  The integration half runs a tiny FLock microbench and asserts
the timeline rides on :class:`RunResult` without perturbing the run
(attaching a timeline schedules no events and draws no randomness, so
two identical runs report identical timelines).
"""

import json

import pytest

from repro.harness import MicrobenchConfig, run_flock
from repro.obs.windows import (
    DEFAULT_WINDOWS,
    MIN_MOPS_ENV,
    P99_ENV,
    WINDOWS_ENV,
    SloThresholds,
    SloTimeline,
    attach_switch_sources,
    slo_timeline,
    windows_per_run,
)

SMOKE = "0.05"


class TestWindowRouting:
    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            SloTimeline(100.0, 100.0)

    def test_window_width(self):
        tl = SloTimeline(0.0, 800.0, n_windows=8)
        assert tl.window_ns == 100.0
        assert len(tl.report()["windows"]) == 8

    def test_ops_land_in_their_windows(self):
        tl = SloTimeline(0.0, 400.0, n_windows=4)
        tl.observe(10.0, 1_000.0)       # window 0
        tl.observe(150.0, 2_000.0)      # window 1
        tl.observe(199.0, 2_000.0)      # window 1
        tl.observe(399.9, 8_000.0)      # window 3
        rows = tl.report()["windows"]
        assert [r["ops"] for r in rows] == [1, 2, 0, 1]
        assert rows[0]["p50_us"] == pytest.approx(1.0, rel=0.02)
        assert rows[1]["p99_us"] == pytest.approx(2.0, rel=0.02)
        assert rows[2]["p50_us"] is None
        assert rows[3]["p999_us"] == pytest.approx(8.0, rel=0.02)

    def test_out_of_range_observations_ignored(self):
        tl = SloTimeline(100.0, 200.0, n_windows=2)
        tl.observe(99.9, 1_000.0)    # before t0
        tl.observe(200.0, 1_000.0)   # at t1 (half-open interval)
        tl.observe(500.0, 1_000.0)   # way past
        assert all(r["ops"] == 0 for r in tl.report()["windows"])

    def test_goodput_is_ops_over_window(self):
        tl = SloTimeline(0.0, 2_000.0, n_windows=2)
        for _ in range(10):
            tl.observe(10.0, 1_000.0)
        row = tl.report()["windows"][0]
        # 10 ops in a 1000 ns window = 1e7 ops/s = 10 Mops.
        assert row["goodput_mops"] == pytest.approx(10.0)

    def test_observe_after_finish_ignored(self):
        tl = SloTimeline(0.0, 100.0, n_windows=1)
        tl.finish()
        tl.observe(50.0, 1_000.0)
        assert tl.report()["windows"][0]["ops"] == 0

    def test_report_is_json_serializable(self):
        tl = SloTimeline(0.0, 100.0, n_windows=2,
                         thresholds=SloThresholds(p99_us=0.5))
        tl.observe(10.0, 1_000.0)
        parsed = json.loads(json.dumps(tl.report()))
        assert parsed["t0_ns"] == 0.0
        assert parsed["violations"]


class TestCounterSources:
    def test_deltas_attributed_at_rollover(self):
        box = {"v": 100.0}
        tl = SloTimeline(0.0, 300.0, n_windows=3)
        tl.add_source("marks", lambda: box["v"])   # baseline = 100
        tl.observe(10.0, 1_000.0)                  # window 0
        box["v"] = 130.0
        tl.observe(110.0, 1_000.0)                 # rollover -> window 0
        box["v"] = 135.0
        tl.observe(250.0, 1_000.0)                 # rollover -> window 1
        box["v"] = 136.0
        rows = tl.report()["windows"]              # finish -> window 2
        assert rows[0]["counters"] == {"marks": 30.0}
        assert rows[1]["counters"] == {"marks": 5.0}
        assert rows[2]["counters"] == {"marks": 1.0}

    def test_silent_windows_delta_lands_in_last_closed(self):
        box = {"v": 0.0}
        tl = SloTimeline(0.0, 400.0, n_windows=4)
        tl.add_source("drops", lambda: box["v"])
        tl.observe(10.0, 1_000.0)     # window 0
        box["v"] = 7.0
        tl.observe(390.0, 1_000.0)    # jumps to window 3
        rows = tl.report()["windows"]
        assert rows[2]["counters"] == {"drops": 7.0}

    def test_finish_is_idempotent(self):
        box = {"v": 0.0}
        tl = SloTimeline(0.0, 100.0, n_windows=1)
        tl.add_source("c", lambda: box["v"])
        box["v"] = 4.0
        tl.finish()
        box["v"] = 9.0
        tl.finish()
        assert tl.report()["windows"][0]["counters"] == {"c": 4.0}

    def test_switch_sources_noop_without_switch(self):
        class Fabric:
            switch = None
        tl = attach_switch_sources(SloTimeline(0.0, 1.0), Fabric())
        assert tl._sources == {}

    def test_switch_sources_wired(self):
        class Switch:
            total_ecn_marks = 3
            total_pause_events = 1
            total_drops = 2

        class Fabric:
            switch = Switch()
        tl = attach_switch_sources(SloTimeline(0.0, 1.0), Fabric())
        assert sorted(tl._sources) == \
            ["ecn_marks", "pfc_pauses", "switch_drops"]


class TestThresholds:
    def test_disarmed_by_default(self, monkeypatch):
        for var in (P99_ENV, MIN_MOPS_ENV):
            monkeypatch.delenv(var, raising=False)
        assert not SloThresholds.from_env().armed

    def test_env_arms(self, monkeypatch):
        monkeypatch.setenv(P99_ENV, "50")
        th = SloThresholds.from_env()
        assert th.armed
        assert th.p99_us == 50.0

    def test_latency_violation_events(self):
        tl = SloTimeline(0.0, 200.0, n_windows=2,
                         thresholds=SloThresholds(p99_us=5.0))
        tl.observe(10.0, 1_000.0)     # 1 us: fine
        tl.observe(150.0, 9_000.0)    # 9 us: violates p99<=5us
        report = tl.report()
        assert report["thresholds"]["p99_us"] == 5.0
        [event] = report["violations"]
        assert event["window"] == 1
        assert event["metric"] == "p99_us"
        assert event["value"] > 5.0
        assert event["threshold"] == 5.0

    def test_goodput_floor_violations(self):
        tl = SloTimeline(0.0, 2_000.0, n_windows=2,
                         thresholds=SloThresholds(min_goodput_mops=1.0))
        tl.observe(10.0, 1_000.0)  # window 0 busy; window 1 empty
        metrics = {(v["window"], v["metric"])
                   for v in tl.report()["violations"]}
        assert (1, "goodput_mops") in metrics

    def test_unarmed_report_has_no_thresholds_block(self):
        report = SloTimeline(0.0, 1.0, n_windows=1,
                             thresholds=SloThresholds()).report()
        assert "thresholds" not in report
        assert report["violations"] == []


class TestEnvConfig:
    def test_default_window_count(self, monkeypatch):
        monkeypatch.delenv(WINDOWS_ENV, raising=False)
        assert windows_per_run() == DEFAULT_WINDOWS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WINDOWS_ENV, "12")
        assert windows_per_run() == 12
        assert slo_timeline(0.0, 1_200.0).n_windows == 12

    def test_bad_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(WINDOWS_ENV, "lots")
        assert windows_per_run() == DEFAULT_WINDOWS


class TestRunnerIntegration:
    @pytest.fixture(autouse=True)
    def _smoke(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", SMOKE)

    def _run(self):
        return run_flock(MicrobenchConfig(n_clients=2, threads_per_client=2,
                                          outstanding=1))

    def test_result_carries_slo_report(self):
        result = self._run()
        assert result.slo is not None
        rows = result.slo["windows"]
        assert len(rows) == DEFAULT_WINDOWS
        assert sum(r["ops"] for r in rows) == result.ops
        json.dumps(result.slo)  # plain data, survives pickling too

    def test_attaching_timeline_is_passive(self):
        """Two identical runs, identical timelines — observing cannot
        perturb the simulation."""
        a, b = self._run(), self._run()
        assert json.dumps(a.slo, sort_keys=True) == \
            json.dumps(b.slo, sort_keys=True)
        assert a.ops == b.ops
        assert a.duration_ns == b.duration_ns
