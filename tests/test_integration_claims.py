"""End-to-end checks of the paper's qualitative claims.

These are small-scale versions of the headline behaviours the benchmarks
reproduce at full scale — kept cheap enough for the unit-test suite, but
asserting the *direction* of every major effect.
"""

import pytest

from repro.config import ClusterConfig, NicConfig
from repro.harness import (
    MicrobenchConfig,
    run_erpc,
    run_flock,
    run_raw_reads,
    run_rc,
)


class TestMotivationClaims:
    def test_rc_reads_collapse_beyond_nic_cache(self):
        """Fig. 2a: throughput drops sharply once QPs exceed the cache."""
        nic = NicConfig(qp_cache_entries=48)
        cluster = ClusterConfig(nic=nic)
        few = run_raw_reads(32, n_clients=4, cluster=cluster)
        many = run_raw_reads(512, n_clients=4, cluster=cluster)
        assert few.mops > many.mops * 1.5
        assert many.extras["qp_cache_miss"] > few.extras["qp_cache_miss"]

    def test_rc_reads_scale_while_cached(self):
        """Fig. 2a left half: more QPs help while they fit the cache."""
        tiny = run_raw_reads(4, n_clients=4, outstanding_per_qp=1)
        mid = run_raw_reads(64, n_clients=4, outstanding_per_qp=1)
        assert mid.mops > tiny.mops


HIGH_LOAD = MicrobenchConfig(n_clients=6, threads_per_client=16,
                             outstanding=2, warmup_ns=400_000,
                             measure_ns=400_000)


class TestFlockVsErpc:
    def test_flock_beats_erpc_at_high_thread_count(self):
        """Figs. 6-8: at high fan-in FLock wins on throughput and tail."""
        flock = run_flock(HIGH_LOAD)
        erpc = run_erpc(HIGH_LOAD)
        assert flock.mops > erpc.mops
        assert flock.p99_us < erpc.p99_us

    def test_erpc_is_server_cpu_bound(self):
        erpc = run_erpc(HIGH_LOAD)
        assert erpc.extras["server_cpu"] > 0.9
        assert erpc.extras["server_net_frac"] > 0.8


class TestSharingClaims:
    def test_coalescing_beats_no_coalescing_under_sharing(self):
        """Fig. 10: coalescing is a throughput win at high contention."""
        cfg = MicrobenchConfig(n_clients=6, threads_per_client=16,
                               outstanding=4, warmup_ns=400_000,
                               measure_ns=400_000)
        with_c = run_flock(cfg, qps_per_process=4)
        without_c = run_flock(cfg, qps_per_process=4, coalescing=False)
        assert with_c.extras["mean_coalescing_degree"] > 1.2
        assert with_c.mops > without_c.mops

    def test_flock_beats_spinlock_sharing(self):
        """Fig. 9: FLock synchronization beats FaRM-style spinlock."""
        cfg = MicrobenchConfig(n_clients=6, threads_per_client=16,
                               outstanding=8, warmup_ns=400_000,
                               measure_ns=400_000)
        flock = run_flock(cfg, qps_per_process=4)
        farm = run_rc(cfg, threads_per_qp=4)
        assert flock.mops > farm.mops
