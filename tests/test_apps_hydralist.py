"""HydraList: ordered index correctness + asynchronous search layer."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.hydralist import HydraList


class TestBasicOps:
    def test_insert_get(self):
        index = HydraList(node_capacity=4)
        index.insert(10, "a")
        index.insert(5, "b")
        assert index.get(10) == "a"
        assert index.get(5) == "b"
        assert index.get(7) is None
        assert index.size == 2

    def test_update_in_place(self):
        index = HydraList(node_capacity=4)
        index.insert(1, "old")
        index.insert(1, "new")
        assert index.get(1) == "new"
        assert index.size == 1

    def test_remove(self):
        index = HydraList(node_capacity=4)
        index.insert(1, "x")
        assert index.remove(1)
        assert not index.remove(1)
        assert index.get(1) is None
        assert index.size == 0

    def test_scan_ordered(self):
        index = HydraList(node_capacity=4)
        for key in [9, 3, 7, 1, 5]:
            index.insert(key, key * 10)
        assert index.scan(3, 3) == [(3, 30), (5, 50), (7, 70)]

    def test_scan_from_missing_start(self):
        index = HydraList(node_capacity=4)
        for key in [2, 4, 6]:
            index.insert(key, key)
        assert index.scan(3, 10) == [(4, 4), (6, 6)]

    def test_scan_spans_nodes(self):
        index = HydraList(node_capacity=2)
        for key in range(20):
            index.insert(key, key)
        result = index.scan(5, 8)
        assert result == [(k, k) for k in range(5, 13)]

    def test_scan_negative_count_rejected(self):
        index = HydraList()
        with pytest.raises(ValueError):
            index.scan(0, -1)

    def test_items_sorted(self):
        index = HydraList(node_capacity=3)
        keys = random.Random(1).sample(range(1000), 100)
        for key in keys:
            index.insert(key, key)
        out = [k for k, _v in index.items()]
        assert out == sorted(keys)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            HydraList(node_capacity=1)


class TestAsyncSearchLayer:
    def test_splits_queue_structural_updates(self):
        index = HydraList(node_capacity=2)
        for key in range(6):
            index.insert(key, key)
        assert index.pending_structural_updates > 0
        # Lookups remain correct before the merge, via next-link chasing.
        for key in range(6):
            assert index.get(key) == key
        assert index.stale_traversals > 0

    def test_merge_clears_pending(self):
        index = HydraList(node_capacity=2)
        for key in range(10):
            index.insert(key, key)
        merged = index.merge_search_layer()
        assert merged > 0
        assert index.pending_structural_updates == 0
        before = index.stale_traversals
        for key in range(10):
            assert index.get(key) == key
        assert index.stale_traversals == before  # layer is fresh

    def test_automatic_merge_bounds_staleness(self):
        index = HydraList(node_capacity=2)
        for key in range(600):
            index.insert(key, key)
        # The background-updater bound keeps the pending queue short.
        assert index.pending_structural_updates < 128

    def test_bulk_load(self):
        index = HydraList(node_capacity=8)
        index.bulk_load((k, k * 2) for k in range(500))
        assert index.size == 500
        assert index.get(250) == 500
        assert index.scan(0, 3) == [(0, 0), (1, 2), (2, 4)]
        assert index.pending_structural_updates == 0


class TestCostModel:
    def test_scan_costs_more_than_get(self):
        index = HydraList()
        index.bulk_load((k, k) for k in range(1000))
        assert index.scan_cost_ns(64) > index.get_cost_ns()

    def test_scan_cost_grows_with_range(self):
        index = HydraList()
        assert index.scan_cost_ns(128) > index.scan_cost_ns(16)

    def test_get_cost_grows_with_size(self):
        small = HydraList()
        small.bulk_load((k, k) for k in range(100))
        big = HydraList()
        big.bulk_load((k, k) for k in range(100_000))
        assert big.get_cost_ns() > small.get_cost_ns()


class TestAgainstReference:
    @given(st.lists(st.tuples(st.sampled_from(["ins", "del", "get"]),
                              st.integers(min_value=0, max_value=50)),
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_reference(self, ops):
        index = HydraList(node_capacity=3)
        reference = {}
        for op, key in ops:
            if op == "ins":
                index.insert(key, key * 7)
                reference[key] = key * 7
            elif op == "del":
                assert index.remove(key) == (key in reference)
                reference.pop(key, None)
            else:
                assert index.get(key) == reference.get(key)
        assert index.size == len(reference)
        assert list(index.items()) == sorted(reference.items())

    @given(st.sets(st.integers(min_value=0, max_value=10_000),
                   min_size=1, max_size=300),
           st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_scan_matches_sorted_reference(self, keys, start, count):
        index = HydraList(node_capacity=4)
        for key in keys:
            index.insert(key, key)
        expected = [(k, k) for k in sorted(keys) if k >= start][:count]
        assert index.scan(start, count) == expected
