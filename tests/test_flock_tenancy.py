"""Multi-tenant QP allocation (the §9 extension)."""

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode, TenantManager
from repro.net import build_cluster
from repro.sim import Simulator


class TestTenantManagerMath:
    def test_register_and_assign(self):
        mgr = TenantManager()
        mgr.register_tenant("analytics", weight=2.0)
        mgr.assign_client(7, "analytics")
        assert mgr.tenant_of(7) == "analytics"
        assert mgr.tenant_of(99) == "default"

    def test_reassign_moves_client(self):
        mgr = TenantManager()
        mgr.register_tenant("a")
        mgr.register_tenant("b")
        mgr.assign_client(1, "a")
        mgr.assign_client(1, "b")
        assert mgr.tenant_of(1) == "b"
        assert 1 not in mgr.tenants["a"].client_ids

    def test_unknown_tenant_rejected(self):
        mgr = TenantManager()
        with pytest.raises(KeyError):
            mgr.assign_client(1, "nope")

    def test_bad_weight_rejected(self):
        mgr = TenantManager()
        with pytest.raises(ValueError):
            mgr.register_tenant("x", weight=0)

    def test_weighted_split_under_saturation(self):
        """Both tenants saturated: budgets follow the 3:1 weights."""
        mgr = TenantManager()
        mgr.register_tenant("gold", weight=3.0)
        mgr.register_tenant("bronze", weight=1.0)
        for cid in (0, 1):
            mgr.assign_client(cid, "gold")
        for cid in (2, 3):
            mgr.assign_client(cid, "bronze")
        utilization = {cid: 100.0 for cid in range(4)}
        caps = {cid: 64 for cid in range(4)}
        alloc = mgr.split(utilization, max_aqp=40, qps_per_client=caps)
        gold = alloc[0] + alloc[1]
        bronze = alloc[2] + alloc[3]
        assert gold + bronze <= 40
        assert gold == pytest.approx(3 * bronze, rel=0.25)

    def test_idle_tenant_share_spills_over(self):
        """Water-filling: an idle tenant's entitlement goes to busy ones."""
        mgr = TenantManager()
        mgr.register_tenant("busy", weight=1.0)
        mgr.register_tenant("idle", weight=1.0)
        mgr.assign_client(0, "busy")
        mgr.assign_client(1, "idle")
        alloc = mgr.split({0: 50.0, 1: 0.0}, max_aqp=16,
                          qps_per_client={0: 16, 1: 16})
        assert alloc[0] >= 12     # far beyond the 8 it is "entitled" to
        assert alloc[1] == 1      # dormant floor

    def test_total_never_exceeds_budget(self):
        mgr = TenantManager()
        mgr.register_tenant("a", weight=1.0)
        mgr.register_tenant("b", weight=5.0)
        for cid in range(6):
            mgr.assign_client(cid, "a" if cid < 3 else "b")
        alloc = mgr.split({cid: float(cid + 1) for cid in range(6)},
                          max_aqp=10,
                          qps_per_client={cid: 8 for cid in range(6)})
        # Per-client minimum of one QP may exceed a tiny budget, but the
        # tenant-level split itself must respect it.
        assert sum(mgr.last_budgets.values()) <= 10

    def test_unassigned_clients_use_default_tenant(self):
        mgr = TenantManager()
        alloc = mgr.split({0: 10.0, 1: 10.0}, max_aqp=8,
                          qps_per_client={0: 8, 1: 8})
        assert alloc[0] + alloc[1] <= 8
        assert alloc[0] == alloc[1]


class TestEndToEndIsolation:
    def test_weighted_tenant_keeps_its_qps_under_pressure(self):
        """Two applications share a server; the heavier-weighted tenant
        ends up with proportionally more active QPs despite identical
        offered load — the Snap-style isolation of §9."""
        sim = Simulator()
        servers, clients, fabric = build_cluster(sim,
                                                 ClusterConfig(n_clients=2))
        cfg = FlockConfig(qps_per_handle=12, max_aqp=12,
                          sched_interval_ns=100_000.0,
                          thread_sched_interval_ns=100_000.0)
        server = FlockNode(sim, servers[0], fabric, cfg)
        server.fl_reg_handler(1, lambda req: (64, None, 100.0))
        tenancy = TenantManager()
        tenancy.register_tenant("gold", weight=3.0)
        tenancy.register_tenant("bronze", weight=1.0)
        server.server.tenancy = tenancy

        nodes = [FlockNode(sim, node, fabric, cfg, seed=i)
                 for i, node in enumerate(clients)]
        handles = [n.fl_connect(server, n_qps=12) for n in nodes]
        tenancy.assign_client(handles[0].client_id, "gold")
        tenancy.assign_client(handles[1].client_id, "bronze")

        def worker(idx, tid):
            while True:
                yield from nodes[idx].fl_call(handles[idx], tid, 1, 64)

        for idx in (0, 1):
            for tid in range(12):
                sim.spawn(worker(idx, tid))
        sim.run(until=1_200_000)

        gold_qps = len(server.server.clients[handles[0].client_id].active_set)
        bronze_qps = len(server.server.clients[handles[1].client_id].active_set)
        assert gold_qps + bronze_qps <= cfg.max_aqp + 1
        assert gold_qps >= 2 * bronze_qps
        # Both tenants still make progress (no starvation).
        assert handles[0].rpcs_completed > 0
        assert handles[1].rpcs_completed > 0
